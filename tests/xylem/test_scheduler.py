"""Tests for the Xylem cluster scheduler."""

import pytest

from repro.errors import SimulationError
from repro.xylem.scheduler import ClusterScheduler, Task, TaskState


def task(name="t", clusters=2, seconds=10.0):
    return Task(name=name, clusters_wanted=clusters, seconds=seconds)


class TestValidation:
    def test_task_validation(self):
        with pytest.raises(ValueError):
            Task(name="x", clusters_wanted=0, seconds=1.0)
        with pytest.raises(ValueError):
            Task(name="x", clusters_wanted=1, seconds=0.0)

    def test_oversized_task_rejected(self):
        scheduler = ClusterScheduler(num_clusters=4)
        with pytest.raises(SimulationError):
            scheduler.submit(task(clusters=5))


class TestGangAllocation:
    def test_all_or_nothing(self):
        scheduler = ClusterScheduler(num_clusters=4)
        big = scheduler.submit(task("big", clusters=3))
        other = scheduler.submit(task("other", clusters=2))
        assert big.state is TaskState.RUNNING
        assert other.state is TaskState.WAITING  # only 1 cluster free

    def test_small_tasks_share_the_machine(self):
        scheduler = ClusterScheduler(num_clusters=4)
        a = scheduler.submit(task("a", clusters=2))
        b = scheduler.submit(task("b", clusters=2))
        assert a.state is TaskState.RUNNING
        assert b.state is TaskState.RUNNING
        assert a.clusters_held.isdisjoint(b.clusters_held)

    def test_clusters_released_on_completion(self):
        scheduler = ClusterScheduler(num_clusters=4)
        scheduler.submit(task("a", clusters=4, seconds=5.0))
        waiting = scheduler.submit(task("b", clusters=4, seconds=5.0))
        assert waiting.state is TaskState.WAITING
        scheduler.run_to_completion()
        assert waiting.state is TaskState.COMPLETE
        assert scheduler.makespan() == pytest.approx(10.0)


class TestSingleUserMode:
    def test_serializes_everything(self):
        scheduler = ClusterScheduler(num_clusters=4, single_user=True)
        scheduler.submit(task("a", clusters=1, seconds=3.0))
        b = scheduler.submit(task("b", clusters=1, seconds=3.0))
        assert b.state is TaskState.WAITING  # despite free clusters
        scheduler.run_to_completion()
        assert scheduler.makespan() == pytest.approx(6.0)

    def test_multiprogramming_overlaps(self):
        scheduler = ClusterScheduler(num_clusters=4, single_user=False)
        scheduler.submit(task("a", clusters=1, seconds=3.0))
        scheduler.submit(task("b", clusters=1, seconds=3.0))
        scheduler.run_to_completion()
        assert scheduler.makespan() == pytest.approx(3.0)


class TestMetrics:
    def test_utilization(self):
        scheduler = ClusterScheduler(num_clusters=4)
        scheduler.submit(task("a", clusters=4, seconds=10.0))
        scheduler.run_to_completion()
        assert scheduler.utilization() == pytest.approx(1.0)

    def test_utilization_with_idle_clusters(self):
        scheduler = ClusterScheduler(num_clusters=4)
        scheduler.submit(task("a", clusters=2, seconds=10.0))
        scheduler.run_to_completion()
        assert scheduler.utilization() == pytest.approx(0.5)

    def test_no_elapsed_time_errors(self):
        scheduler = ClusterScheduler()
        with pytest.raises(SimulationError):
            scheduler.utilization()

    def test_fcfs_order(self):
        scheduler = ClusterScheduler(num_clusters=4)
        first = scheduler.submit(task("first", clusters=4, seconds=1.0))
        second = scheduler.submit(task("second", clusters=1, seconds=1.0))
        scheduler.run_to_completion()
        assert first.finished_at <= second.finished_at
