"""Tests for the Xylem file system, memory manager, and kernel facade."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.errors import SimulationError
from repro.lang.placement import Placement
from repro.xylem import FileSystem, IORequest, MemoryManager, XylemKernel


class TestFileSystem:
    def test_formatted_is_much_slower(self):
        fs = FileSystem()
        fast = fs.seconds_for(1e7, formatted=False)
        slow = fs.seconds_for(1e7, formatted=True)
        assert slow / fast > 10.0

    def test_bdna_style_savings(self):
        fs = FileSystem()
        savings = fs.reformat_savings(11.5e6)
        # The hand BDNA saved ~50s by unformatting its trajectory output.
        assert savings == pytest.approx(49.0, rel=0.1)

    def test_transfer_accounting(self):
        fs = FileSystem()
        fs.transfer(IORequest(1e6))
        fs.transfer(IORequest(2e6, formatted=True))
        assert fs.total_bytes == pytest.approx(3e6)
        assert len(fs.requests) == 2
        assert fs.total_seconds > 0

    def test_negative_volume_rejected(self):
        with pytest.raises(ValueError):
            IORequest(-1.0)

    def test_model_layer_shares_constants(self):
        from repro.model.costs import FORMATTED_IO_PENALTY, IO_BYTES_PER_SECOND
        from repro.xylem.filesystem import (
            FORMATTED_PENALTY,
            UNFORMATTED_BYTES_PER_SECOND,
        )
        assert FORMATTED_IO_PENALTY == FORMATTED_PENALTY
        assert IO_BYTES_PER_SECOND == UNFORMATTED_BYTES_PER_SECOND


class TestMemoryManager:
    def test_global_segments_in_upper_half(self):
        manager = MemoryManager()
        cluster_seg = manager.allocate("local", 1000, Placement.CLUSTER)
        global_seg = manager.allocate("shared", 1000, Placement.GLOBAL)
        assert not manager.is_global_address(cluster_seg.start_word)
        assert manager.is_global_address(global_seg.start_word)

    def test_duplicate_name_rejected(self):
        manager = MemoryManager()
        manager.allocate("a", 10)
        with pytest.raises(SimulationError):
            manager.allocate("a", 10)

    def test_touch_unknown_segment(self):
        manager = MemoryManager()
        with pytest.raises(SimulationError):
            manager.touch(0, "ghost")

    def test_trfd_fault_ratio_is_cluster_count(self):
        manager = MemoryManager()
        page_words = manager.vm.page_words
        manager.allocate("arrays", 50 * page_words, Placement.GLOBAL)
        ratio = manager.multicluster_fault_ratio("arrays")
        # "almost four times the number of page faults relative to the
        # one-cluster version".
        assert ratio == pytest.approx(DEFAULT_CONFIG.num_clusters, rel=0.05)

    def test_fault_seconds_accumulate(self):
        manager = MemoryManager()
        manager.allocate("seg", 10 * manager.vm.page_words)
        manager.touch(0, "seg")
        assert manager.fault_seconds(0) > 0
        assert manager.fault_seconds(1) == 0


class TestKernelFacade:
    def test_job_accounting(self):
        kernel = XylemKernel()
        kernel.memory.allocate(
            "arrays", 20 * kernel.memory.vm.page_words, Placement.GLOBAL
        )
        report = kernel.run_job(
            "trfd",
            compute_seconds=10.0,
            clusters=4,
            io_requests=[IORequest(1e6)],
            touched_segments=["arrays"],
        )
        assert report.task.state.value == "complete"
        assert report.io_seconds > 0
        assert report.vm_seconds > 0
        assert report.total_seconds > 10.0

    def test_single_user_default(self):
        kernel = XylemKernel()
        assert kernel.scheduler.single_user
