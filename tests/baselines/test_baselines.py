"""Tests for the Cray Y-MP/8, Cray 1 and CM-5 baseline models."""

import pytest

from repro.baselines import CM5Model, CRAY_1, CRAY_YMP8
from repro.core.bands import Band, census
from repro.core.stability import instability, minimal_exclusions_for_stability
from repro.kernels.banded_matvec import BandedMatvec


class TestCrayYmp:
    def test_thirteen_codes(self):
        assert len(CRAY_YMP8.measurements) == 13
        assert CRAY_YMP8.processors == 8

    def test_clock_ratio_quoted_by_paper(self):
        assert 170.0 / CRAY_YMP8.clock_ns == pytest.approx(28.33, abs=0.01)

    def test_table5_instabilities(self):
        rates = CRAY_YMP8.mflops_ensemble()
        assert instability(rates, 0) == pytest.approx(75.3, abs=0.2)
        assert instability(rates, 2) == pytest.approx(29.0, abs=0.2)
        assert instability(rates, 6) == pytest.approx(5.3, abs=0.2)

    def test_needs_six_exclusions(self):
        assert minimal_exclusions_for_stability(CRAY_YMP8.mflops_ensemble()) == 6

    def test_table6_compiled_census(self):
        tally = census(CRAY_YMP8.efficiencies(), 8)
        assert (tally.high, tally.intermediate, tally.unacceptable) == (0, 6, 7)

    def test_figure3_manual_census(self):
        tally = census(CRAY_YMP8.efficiencies(manual=True), 8)
        assert tally.high == 6
        assert tally.intermediate == 6
        assert tally.unacceptable == 1

    def test_ensemble_view(self):
        ensemble = CRAY_YMP8.ensemble()
        assert ensemble.processors == 8
        assert len(ensemble) == 13


class TestCray1:
    def test_uniprocessor(self):
        assert CRAY_1.processors == 1
        assert all(m.compiled_speedup == 1.0
                   for m in CRAY_1.measurements.values())

    def test_table5_instabilities(self):
        rates = CRAY_1.mflops_ensemble()
        assert instability(rates, 0) == pytest.approx(10.9, abs=0.2)
        assert instability(rates, 2) == pytest.approx(4.6, abs=0.2)

    def test_two_exclusions_for_stability(self):
        assert minimal_exclusions_for_stability(CRAY_1.mflops_ensemble()) == 2

    def test_far_more_stable_than_parallel_machines(self):
        assert instability(CRAY_1.mflops_ensemble(), 0) < instability(
            CRAY_YMP8.mflops_ensemble(), 0
        ) / 5


class TestCM5:
    def test_paper_rate_ranges_at_32(self):
        model = CM5Model(processors=32)
        for n in (16_384, 65_536, 262_144):
            bw3 = model.mflops(BandedMatvec(n, 3))
            bw11 = model.mflops(BandedMatvec(n, 11))
            assert 27.0 <= bw3 <= 33.0, n
            assert 57.0 <= bw11 <= 68.0, n

    def test_never_high_band(self):
        for partition in (32, 256, 512):
            model = CM5Model(processors=partition)
            for bandwidth in (3, 11):
                for point in model.scalability_points(
                    bandwidth, [16_384, 65_536, 262_144]
                ):
                    assert point.band is Band.INTERMEDIATE, (
                        partition, bandwidth, point
                    )

    def test_rate_grows_with_problem_size(self):
        model = CM5Model(processors=256)
        small = model.mflops(BandedMatvec(16_384, 11))
        large = model.mflops(BandedMatvec(262_144, 11))
        assert large > small

    def test_wider_band_means_higher_rate(self):
        model = CM5Model(processors=32)
        assert model.mflops(BandedMatvec(65_536, 11)) > model.mflops(
            BandedMatvec(65_536, 3)
        )

    def test_per_processor_rate_roughly_cedar_equivalent(self):
        """Paper: 'the per-processor MFLOPS of the two systems on these
        problems are roughly equivalent' (~1-2 MFLOPS per processor)."""
        model = CM5Model(processors=32)
        per_processor = model.mflops(BandedMatvec(65_536, 11)) / 32
        assert 1.0 <= per_processor <= 3.0
