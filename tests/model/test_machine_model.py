"""Tests for the analytic Cedar machine model."""

import pytest

from repro.errors import ProgramError
from repro.lang import (
    Barrier,
    Doall,
    IOSection,
    LoopKind,
    Placement,
    Program,
    Reduction,
    RuntimeOptions,
    SerialSection,
    VirtualMemoryActivity,
    Work,
)
from repro.model.machine_model import CedarMachineModel


@pytest.fixture
def model():
    return CedarMachineModel()


def parallel_program(trip=128, flops=1e6, instances=1, **doall_kwargs):
    body = Work(flops=flops / (trip * instances),
                memory_words=flops / (trip * instances) / 2.0)
    return Program(
        name="p",
        body=[Doall(LoopKind.XDOALL, trip_count=trip, body=body,
                    instances=instances, **doall_kwargs)],
    )


class TestSerialVsParallel:
    def test_parallel_is_faster_for_big_loops(self, model):
        program = parallel_program(flops=1e9)
        serial = model.execute_serial(program)
        parallel = model.execute(program)
        assert parallel.seconds < serial.seconds
        assert serial.seconds / parallel.seconds > 4.0

    def test_tiny_loop_dominated_by_startup(self, model):
        program = parallel_program(trip=2, flops=100.0)
        serial = model.execute_serial(program)
        parallel = model.execute(program)
        assert parallel.seconds > serial.seconds  # 90us startup dwarfs work

    def test_serial_section_runs_at_one_ce(self, model):
        program = Program(
            name="s", body=[SerialSection(Work(flops=1e6, memory_words=1e5))]
        )
        serial = model.execute_serial(program)
        parallel = model.execute(program)
        # Vectorization helps a little, parallelism not at all.
        assert parallel.seconds > serial.seconds / 8


class TestConstructCosts:
    def test_instances_scale_time(self, model):
        once = model.execute(parallel_program(instances=1, flops=1e6))
        many = model.execute(parallel_program(instances=100, flops=1e6))
        assert many.seconds > once.seconds  # same work, 100x loop startups

    def test_barriers_add_time(self, model):
        base = parallel_program()
        with_barriers = Program(
            name="b", body=list(base.body) + [Barrier(count=1000)]
        )
        assert model.execute(with_barriers).seconds > model.execute(base).seconds

    def test_multicluster_barrier_free_in_serial(self, model):
        program = Program(
            name="b",
            body=[SerialSection(Work(flops=1e5, memory_words=1e4)),
                  Barrier(count=1000)],
        )
        with_b = model.execute_serial(program)
        without = model.execute_serial(
            Program(name="nb", body=[program.body[0]])
        )
        assert with_b.seconds == pytest.approx(without.seconds)

    def test_paging_charged_only_multicluster(self, model):
        program = Program(
            name="vm",
            body=[SerialSection(Work(flops=1e5, memory_words=1e4)),
                  VirtualMemoryActivity(seconds=5.0)],
        )
        full = model.execute(program)
        confined = model.execute(
            program, RuntimeOptions(single_cluster=True)
        )
        assert full.seconds - confined.seconds == pytest.approx(5.0, abs=0.1)

    def test_io_identical_serial_and_parallel(self, model):
        program = Program(name="io", body=[IOSection(4e6, formatted=True)])
        assert model.execute(program).seconds == pytest.approx(
            model.execute_serial(program).seconds
        )

    def test_reduction_construct_timed(self, model):
        program = Program(
            name="r",
            body=[SerialSection(Work(flops=1e4, memory_words=1e3)),
                  Reduction(elements=32)],
        )
        assert model.execute(program).seconds > 0


class TestOptions:
    def test_no_sync_slows_self_scheduled_loops(self, model):
        program = parallel_program(trip=32, flops=1e6, instances=1000)
        base = model.execute(program)
        no_sync = model.execute(program, RuntimeOptions(use_cedar_sync=False))
        assert no_sync.seconds > base.seconds

    def test_static_schedule_avoids_fetch_cost(self, model):
        from repro.lang.runtime import Schedule
        program = parallel_program(trip=32, flops=1e6, instances=1000)
        dynamic = model.execute(program)
        static = model.execute(program, RuntimeOptions(schedule=Schedule.STATIC))
        assert static.seconds < dynamic.seconds

    def test_no_prefetch_slows_global_loops(self, model):
        program = parallel_program(
            placement=Placement.GLOBAL, prefetchable_fraction=0.9, flops=1e8
        )
        base = model.execute(program)
        slow = model.execute(program, RuntimeOptions(use_prefetch=False))
        assert slow.seconds > base.seconds

    def test_single_cluster_uses_8_processors(self, model):
        report = model.execute(
            parallel_program(), RuntimeOptions(single_cluster=True)
        )
        assert report.processors == 8


class TestSdoallNesting:
    def test_sdoall_cdoall_nest_executes(self, model):
        inner = Doall(LoopKind.CDOALL, trip_count=64,
                      body=Work(flops=1e4, memory_words=5e3))
        program = Program(
            name="nest",
            body=[Doall(LoopKind.SDOALL, trip_count=4, body=[inner])],
        )
        report = model.execute(program)
        assert report.seconds > 0

    def test_non_cdoall_nesting_rejected(self, model):
        inner = Doall(LoopKind.XDOALL, trip_count=64,
                      body=Work(flops=1e4, memory_words=5e3))
        program = Program(
            name="bad",
            body=[Doall(LoopKind.SDOALL, trip_count=4, body=[inner])],
        )
        with pytest.raises(ProgramError):
            model.execute(program)

    def test_hierarchical_cheaper_than_xdoall_for_fine_grain(self, model):
        body = Work(flops=500.0, memory_words=250.0)
        flat = Program(
            name="flat",
            body=[Doall(LoopKind.XDOALL, trip_count=256, body=body,
                        instances=200)],
        )
        inner = Doall(LoopKind.CDOALL, trip_count=64, body=body)
        nested = Program(
            name="nested",
            body=[Doall(LoopKind.SDOALL, trip_count=4, body=[inner],
                        instances=200)],
        )
        assert model.execute(nested).seconds < model.execute(flat).seconds


class TestReport:
    def test_breakdown_sums_to_total(self, model):
        program = Program(
            name="mix",
            body=[
                IOSection(1e6),
                Doall(LoopKind.XDOALL, trip_count=64,
                      body=Work(flops=1e5, memory_words=5e4), label="loop"),
                SerialSection(Work(flops=1e4, memory_words=1e3), label="tail"),
            ],
        )
        report = model.execute(program)
        assert sum(report.breakdown.values()) == pytest.approx(report.seconds)
        assert {"iosection", "loop", "tail"} <= set(report.breakdown)

    def test_mflops(self, model):
        program = parallel_program(flops=1e9)
        report = model.execute(program)
        assert report.mflops == pytest.approx(
            1e9 / report.seconds / 1e6, rel=1e-6
        )
