"""Property-based tests: invariants of the analytic machine model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang import Doall, LoopKind, Placement, Program, RuntimeOptions, Work
from repro.model.machine_model import CedarMachineModel

MODEL = CedarMachineModel()


def program(coverage_flops, trip, instances=1, placement=Placement.GLOBAL,
            prefetchable=0.8, vector_fraction=0.9, scalar=0.1):
    body = Work(
        flops=coverage_flops / (trip * instances),
        memory_words=coverage_flops / (trip * instances) / 1.5,
        vector_fraction=vector_fraction,
        scalar_memory_fraction=scalar,
    )
    return Program(
        name="p",
        body=[Doall(LoopKind.XDOALL, trip_count=trip, body=body,
                    placement=placement, prefetchable_fraction=prefetchable,
                    instances=instances)],
    )


class TestMonotonicity:
    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(1e5, 1e10),
        st.integers(8, 512),
        st.integers(1, 500),
    )
    def test_removing_sync_never_speeds_up(self, flops, trip, instances):
        p = program(flops, trip, instances)
        base = MODEL.execute(p).seconds
        no_sync = MODEL.execute(p, RuntimeOptions(use_cedar_sync=False)).seconds
        assert no_sync >= base - 1e-12

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(1e5, 1e10),
        st.integers(8, 512),
        st.floats(0.1, 1.0),
    )
    def test_removing_prefetch_never_speeds_up(self, flops, trip, prefetchable):
        p = program(flops, trip, prefetchable=prefetchable)
        base = MODEL.execute(p).seconds
        slow = MODEL.execute(p, RuntimeOptions(use_prefetch=False)).seconds
        assert slow >= base - 1e-12

    @settings(max_examples=30, deadline=None)
    @given(st.floats(1e6, 1e10), st.integers(32, 2048))
    def test_more_work_takes_longer(self, flops, trip):
        small = MODEL.execute(program(flops, trip)).seconds
        large = MODEL.execute(program(flops * 2, trip)).seconds
        assert large > small

    @settings(max_examples=30, deadline=None)
    @given(st.floats(1e6, 1e10), st.integers(32, 2048))
    def test_serial_time_scales_linearly_with_flops(self, flops, trip):
        one = MODEL.execute_serial(program(flops, trip)).seconds
        two = MODEL.execute_serial(program(flops * 2, trip)).seconds
        assert two == pytest.approx(2 * one, rel=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(st.floats(1e6, 1e10))
    def test_single_cluster_never_faster_for_wide_loops(self, flops):
        p = program(flops, trip=256)
        full = MODEL.execute(p).seconds
        confined = MODEL.execute(p, RuntimeOptions(single_cluster=True)).seconds
        assert confined >= full - 1e-12

    @settings(max_examples=25, deadline=None)
    @given(st.floats(1e6, 1e9), st.integers(8, 256), st.integers(1, 100))
    def test_times_are_positive_and_finite(self, flops, trip, instances):
        import math
        p = program(flops, trip, instances)
        seconds = MODEL.execute(p).seconds
        assert seconds > 0
        assert math.isfinite(seconds)


class TestCrossLayerConsistency:
    @settings(max_examples=20, deadline=None)
    @given(st.floats(1e7, 1e10), st.integers(64, 4096))
    def test_speedup_bounded_by_processors_times_vector_gain(self, flops, trip):
        """Parallel speedup cannot exceed P x (vector rate / scalar rate)."""
        p = program(flops, trip)
        serial = MODEL.execute_serial(p).seconds
        parallel = MODEL.execute(p).seconds
        max_gain = 32 * (2.0 / 0.2)  # P x chained-vector over scalar
        assert serial / parallel <= max_gain + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(st.floats(0.0, 1.0))
    def test_prefetchable_fraction_monotone(self, fraction):
        fast = MODEL.execute(program(1e9, 512, prefetchable=1.0)).seconds
        varied = MODEL.execute(program(1e9, 512, prefetchable=fraction)).seconds
        assert varied >= fast - 1e-12
