"""Tests for simulator-to-model calibration."""

import pytest

from repro.model.calibration import calibrate_prefetch_curve, calibrated_cost_model
from repro.model.costs import DEFAULT_PREFETCH_RATE_CURVE


class TestCalibration:
    @pytest.fixture(scope="class")
    def curve(self):
        # Small CE set and short windows: this is a smoke-level calibration.
        return calibrate_prefetch_curve(ce_counts=(1, 8, 16), blocks=8)

    def test_rates_are_physical(self, curve):
        for count, rate in curve.items():
            assert 0.0 < rate <= 1.0, count

    def test_contention_lowers_the_rate(self, curve):
        assert curve[16] < curve[1]

    def test_matches_default_curve_shape(self, curve):
        """The shipped default curve was produced by this procedure; a
        fresh calibration should land in the same neighbourhood."""
        for count in (1, 8, 16):
            assert curve[count] == pytest.approx(
                DEFAULT_PREFETCH_RATE_CURVE[count], abs=0.15
            )

    def test_calibrated_cost_model_usable(self, curve):
        model = calibrated_cost_model(ce_counts=(1, 8))
        assert model.prefetch_words_per_cycle(4) > 0
