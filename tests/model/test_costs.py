"""Tests for the analytic cost model."""

import pytest

from repro.config import CE_CYCLE_SECONDS, DEFAULT_CONFIG
from repro.lang.loops import LoopKind
from repro.lang.placement import Placement
from repro.lang.runtime import RuntimeOptions
from repro.model.costs import CostModel


@pytest.fixture
def costs():
    return CostModel(DEFAULT_CONFIG)


OPTIONS = RuntimeOptions()


class TestScheduling:
    def test_xdoall_startup_is_90us(self, costs):
        cycles = costs.loop_startup_cycles(LoopKind.XDOALL)
        assert cycles * CE_CYCLE_SECONDS == pytest.approx(90e-6)

    def test_cdoall_starts_in_microseconds(self, costs):
        cycles = costs.loop_startup_cycles(LoopKind.CDOALL)
        assert cycles * CE_CYCLE_SECONDS < 5e-6

    def test_xdoall_fetch_is_30us_with_cedar_sync(self, costs):
        cycles = costs.iteration_fetch_cycles(LoopKind.XDOALL, OPTIONS)
        assert cycles * CE_CYCLE_SECONDS == pytest.approx(30e-6)

    def test_fetch_without_cedar_sync_is_multiplied(self, costs):
        with_sync = costs.iteration_fetch_cycles(LoopKind.XDOALL, OPTIONS)
        without = costs.iteration_fetch_cycles(
            LoopKind.XDOALL, OPTIONS.without_cedar_sync()
        )
        assert without == pytest.approx(
            with_sync * DEFAULT_CONFIG.sync.no_cedar_sync_fetch_multiplier
        )

    def test_cdoall_fetch_unaffected_by_sync_option(self, costs):
        a = costs.iteration_fetch_cycles(LoopKind.CDOALL, OPTIONS)
        b = costs.iteration_fetch_cycles(
            LoopKind.CDOALL, OPTIONS.without_cedar_sync()
        )
        assert a == b  # the CCB, not global memory, schedules CDOALLs


class TestPrefetchCurve:
    def test_interpolation_between_points(self, costs):
        r8 = costs.prefetch_words_per_cycle(8)
        r16 = costs.prefetch_words_per_cycle(16)
        r12 = costs.prefetch_words_per_cycle(12)
        assert min(r8, r16) <= r12 <= max(r8, r16)

    def test_clamps_at_ends(self, costs):
        assert costs.prefetch_words_per_cycle(1) == costs.curve[1]
        assert costs.prefetch_words_per_cycle(1000) == costs.curve[32]

    def test_monotone_decreasing(self, costs):
        rates = [costs.prefetch_words_per_cycle(n) for n in (1, 8, 16, 24, 32)]
        assert rates == sorted(rates, reverse=True)

    def test_rejects_zero_ces(self, costs):
        with pytest.raises(ValueError):
            costs.prefetch_words_per_cycle(0)

    def test_empty_curve_rejected(self):
        with pytest.raises(ValueError):
            CostModel(DEFAULT_CONFIG, {})


class TestMemoryRates:
    def test_no_prefetch_rate_is_two_over_latency(self, costs):
        rates = costs.memory_rates(8)
        assert rates.global_vector_no_prefetch == pytest.approx(2.0 / 13.0)

    def test_prefetched_beats_unprefetched(self, costs):
        rates = costs.memory_rates(8)
        assert rates.global_prefetched > rates.global_vector_no_prefetch

    def test_blended_rate_between_components(self, costs):
        rate = costs.words_per_cycle(
            Placement.GLOBAL, 8, OPTIONS,
            prefetchable_fraction=0.8, scalar_fraction=0.1,
        )
        rates = costs.memory_rates(8)
        assert rates.global_scalar < rate < rates.global_prefetched

    def test_disabling_prefetch_lowers_rate(self, costs):
        fast = costs.words_per_cycle(Placement.GLOBAL, 8, OPTIONS, 0.8, 0.1)
        slow = costs.words_per_cycle(
            Placement.GLOBAL, 8, OPTIONS.without_prefetch(), 0.8, 0.1
        )
        assert slow < fast

    def test_cluster_rate_ignores_prefetch(self, costs):
        a = costs.words_per_cycle(Placement.CLUSTER, 8, OPTIONS, 0.8, 0.1)
        b = costs.words_per_cycle(
            Placement.CLUSTER, 8, OPTIONS.without_prefetch(), 0.8, 0.1
        )
        assert a == b


class TestComputeAndOther:
    def test_vector_rate_amortizes_with_length(self, costs):
        assert costs.flops_per_cycle(1.0, 64) > costs.flops_per_cycle(1.0, 8)

    def test_scalar_only(self, costs):
        assert costs.flops_per_cycle(0.9, 32, scalar_only=True) == 0.2

    def test_multicluster_barrier_costlier(self, costs):
        assert costs.barrier_cycles(True, 4) > costs.barrier_cycles(False, 4)

    def test_formatted_io_penalty(self, costs):
        assert costs.io_seconds(1e6, True) == pytest.approx(
            costs.io_seconds(1e6, False) * 18.0
        )

    def test_reduction_cheaper_with_cedar_sync(self, costs):
        fast = costs.reduction_cycles(32, OPTIONS)
        slow = costs.reduction_cycles(32, OPTIONS.without_cedar_sync())
        assert slow > fast
