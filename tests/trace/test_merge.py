"""Tests for cross-worker trace merging (repro.trace.merge)."""

import json

from repro.trace import TraceMerger, Tracer, chrome_trace_json


class FakeClock:
    def __init__(self, cycle: int = 0) -> None:
        self.cycle = cycle

    def __call__(self) -> int:
        return self.cycle


def _worker_tracer(base: int, component: str) -> Tracer:
    """One worker's buffer: a span, an instant, a sample, counters."""
    tracer = Tracer(columnar=True)
    tracer.set_clock(FakeClock())
    tracer.complete(component, "work", base, base + 10, tag=base)
    tracer.instant(component, "posted", cycle=base + 1, value=base)
    tracer.sample(component, "occupancy", float(base), cycle=base + 2)
    tracer.count(component, "packets", 3)
    return tracer


class TestMergeSemantics:
    def test_epochs_renumber_cumulatively_in_add_order(self):
        first = Tracer(columnar=True)
        first.set_clock(FakeClock())
        first.complete("m", "run", 0, 10)
        first.set_clock(FakeClock())  # second machine run -> epoch 1
        first.complete("m", "run", 0, 20)
        second = _worker_tracer(0, "m")
        merger = TraceMerger()
        merger.add(first.snapshot())
        merger.add(second.snapshot().to_bytes())  # wire bytes also accepted
        merged = merger.merge()
        assert len(merger) == 2
        # first contributed epochs 0..1, so second's epoch 0 becomes 2.
        assert merged.record_epochs() == [0, 1, 2]
        assert merged.epochs == 3
        assert merged.elapsed_by_epoch == {0: 10, 1: 20, 2: 10}

    def test_aggregates_sum_like_one_shared_tracer(self):
        merger = TraceMerger()
        merger.add(_worker_tracer(0, "m").snapshot())
        merger.add(_worker_tracer(100, "m").snapshot())
        merged = merger.merge()
        assert merged.counter_totals["m"]["packets"] == 6
        # occupancy samples also land in exact counter totals (latest wins
        # per tracer, summed across workers).
        assert merged.busy_cycles == {"m": 20}
        assert merged.span_counts == {"m": 2}
        assert merged.num_records == 6
        assert merged.records_seen == 6

    def test_records_sort_by_epoch_then_time_with_seq_tiebreak(self):
        late = _worker_tracer(100, "b")
        early = _worker_tracer(0, "a")
        merger = TraceMerger()
        merger.add(late.snapshot())
        merger.add(early.snapshot())
        merged = merger.merge()
        # Add order assigns epochs (late=0, early=1); within the merged
        # timeline each epoch's records stay time-ordered.
        assert merged.column("spans", "epoch") == [0, 1]
        assert merged.column("spans", "start") == [100, 0]
        seqs = merged.column("instants", "seq")
        assert seqs == sorted(seqs)

    def test_merged_output_exports_like_any_snapshot(self):
        merger = TraceMerger()
        merger.add(_worker_tracer(0, "a").snapshot())
        merger.add(_worker_tracer(50, "b").snapshot())
        doc = json.loads(chrome_trace_json(merger.merge()))
        names = {e["name"] for e in doc["traceEvents"]}
        assert "work" in names and "posted" in names

    def test_empty_merge_is_a_valid_empty_snapshot(self):
        merged = TraceMerger().merge()
        assert merged.num_records == 0
        assert merged.epochs == 1
        json.loads(chrome_trace_json(merged))  # renders cleanly


class TestMergeDeterminism:
    """One process vs. N workers must produce identical merges."""

    def test_merge_of_wire_bytes_equals_merge_of_snapshots(self):
        def build(via_wire: bool) -> bytes:
            merger = TraceMerger()
            for base, comp in ((0, "a"), (100, "b")):
                snap = _worker_tracer(base, comp).snapshot()
                merger.add(snap.to_bytes() if via_wire else snap)
            return merger.merge().to_bytes()

        assert build(via_wire=True) == build(via_wire=False)

    def test_same_inputs_same_bytes(self):
        def build() -> str:
            merger = TraceMerger()
            merger.add(_worker_tracer(0, "a").snapshot().to_bytes())
            merger.add(_worker_tracer(100, "b").snapshot().to_bytes())
            return chrome_trace_json(merger.merge())

        assert build() == build()
