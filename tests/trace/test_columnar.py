"""Tests for the columnar record backbone (repro.trace.columnar)."""

import json

import pytest

from repro.errors import TraceError
from repro.trace import (
    ColumnarStore,
    StringTable,
    TraceSnapshot,
    Tracer,
    chrome_trace_json,
    columnar_enabled,
    utilization_report,
)
from repro.trace.columnar import INITIAL_CAPACITY, render_value


class FakeClock:
    def __init__(self, cycle: int = 0) -> None:
        self.cycle = cycle

    def __call__(self) -> int:
        return self.cycle


def _record_mixed(tracer: Tracer, n: int = 10) -> None:
    """A deterministic mix of all three record kinds plus counters."""
    for i in range(n):
        tracer.complete("memory.m00", "read", i * 10, i * 10 + 4, address=i)
        tracer.sample("fwd", "occupancy", float(i), cycle=i * 10 + 1)
        tracer.instant("ce00", "posted", cycle=i * 10 + 2, value=i)
    tracer.count("fwd", "packets", n)


class TestStringTable:
    def test_dense_ids_in_first_use_order(self):
        table = StringTable()
        assert table.intern("memory") == 0
        assert table.intern("fwd") == 1
        assert table.intern("memory") == 0
        assert table.strings == ["memory", "fwd"]
        assert len(table) == 2

    def test_seeded_table_resumes_numbering(self):
        table = StringTable(["a", "b"])
        assert table.intern("b") == 1
        assert table.intern("c") == 2


class TestRenderValue:
    def test_scalars_keep_repr(self):
        assert render_value(5) == "5"
        assert render_value(2.5) == "2.5"
        assert render_value("x") == "'x'"
        assert render_value(None) == "None"
        assert render_value(True) == "True"

    def test_objects_render_without_memory_address(self):
        class Probe:
            pass

        rendered = render_value(Probe())
        assert "0x" not in rendered  # default repr embeds the address
        assert rendered == render_value(Probe())
        assert "Probe" in rendered


class TestRingWraparound:
    def test_oldest_evicted_at_max_records(self):
        store = ColumnarStore(max_records=4)
        for i in range(10):
            store.add_instant("ce00", "tick", 0, i, i)
        assert store.num_records == 4
        assert store.dropped == 6
        assert store.total_appended == 10
        snap = store.snapshot()
        # The retained window is the most recent records, oldest first.
        assert snap.column("instants", "cycle") == [6, 7, 8, 9]
        assert snap.column("instants", "seq") == [6, 7, 8, 9]

    def test_eviction_is_globally_oldest_across_kinds(self):
        store = ColumnarStore(max_records=3)
        store.add_span("m", "read", 0, 0, 4, 0, None)  # seq 0: the oldest
        store.add_instant("c", "posted", 0, 5, 1)  # seq 1
        store.add_sample("f", "occ", 0, 6, 2.0)  # seq 2
        store.add_instant("c", "posted", 0, 7, 3)  # seq 3 -> evicts the span
        counts = store.counts()
        assert counts == {"spans": 0, "instants": 2, "samples": 1}
        assert store.dropped == 1
        store.add_sample("f", "occ", 0, 8, 4.0)  # seq 4 -> evicts instant seq 1
        assert store.counts() == {"spans": 0, "instants": 1, "samples": 2}

    def test_wrapped_snapshot_reads_two_segments_in_order(self):
        store = ColumnarStore(max_records=8)
        for i in range(13):  # wraps the 8-slot ring
            store.add_instant("ce00", "tick", 0, i, i)
        snap = store.snapshot()
        assert snap.column("instants", "cycle") == list(range(5, 13))
        # The object column wraps identically.
        assert snap.column("instants", "value") == list(range(5, 13))

    def test_capacity_doubles_then_caps_at_max_records(self):
        store = ColumnarStore(max_records=INITIAL_CAPACITY * 4)
        bytes_small = store.buffer_bytes
        for i in range(INITIAL_CAPACITY + 1):
            store.add_sample("f", "occ", 0, i, float(i))
        assert store.buffer_bytes > bytes_small  # the sample ring doubled
        assert store.dropped == 0

    def test_tracer_wraparound_keeps_exporters_consistent(self):
        tracer = Tracer(clock=FakeClock(), max_records=8, columnar=True)
        _record_mixed(tracer, n=10)  # 30 records into an 8-slot budget
        assert tracer.num_records == 8
        assert tracer.dropped == 22
        assert tracer.records_seen == 30
        # Aggregates are exact regardless of drops ...
        assert tracer.busy_cycles() == {"memory.m00": 40}
        assert tracer.span_counts() == {"memory.m00": 10}
        # ... and both exporters run cleanly over the wrapped window.
        doc = json.loads(chrome_trace_json(tracer))
        timeline = [e for e in doc["traceEvents"] if e["ph"] in "XCi"]
        assert len(timeline) == 8
        assert doc["otherData"]["dropped_records"] == 22
        assert "Component utilization" in utilization_report(tracer)

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(TraceError):
            ColumnarStore(max_records=0)


class TestLegacyParity:
    """CEDAR_COLUMNAR=0 (object store) must export byte-identically."""

    def _traced(self, columnar: bool) -> Tracer:
        tracer = Tracer(clock=FakeClock(), columnar=columnar)
        _record_mixed(tracer)
        tracer.instant("bus", "signal", cycle=99, value="text")
        return tracer

    def test_chrome_json_byte_identical(self):
        legacy = chrome_trace_json(self._traced(columnar=False))
        columnar = chrome_trace_json(self._traced(columnar=True))
        assert legacy == columnar

    def test_utilization_report_identical(self):
        assert utilization_report(self._traced(False)) == utilization_report(
            self._traced(True)
        )

    def test_wire_round_trips_export_identically(self):
        # The string-table *order* may differ (the object store interns at
        # snapshot time, per kind; the columnar store in record order), but
        # everything id-resolved must match through the wire format too.
        legacy = TraceSnapshot.from_bytes(self._traced(False).snapshot().to_bytes())
        columnar = TraceSnapshot.from_bytes(self._traced(True).snapshot().to_bytes())
        assert chrome_trace_json(legacy) == chrome_trace_json(columnar)
        assert legacy.counter_totals == columnar.counter_totals
        assert legacy.records_seen == columnar.records_seen

    def test_drop_accounting_differs_only_in_window(self):
        # Same drop *count*; the legacy store drops newest, the ring
        # evicts oldest -- both retain max_records.
        legacy = Tracer(clock=FakeClock(), max_records=5, columnar=False)
        columnar = Tracer(clock=FakeClock(), max_records=5, columnar=True)
        for tracer in (legacy, columnar):
            for i in range(9):
                tracer.instant("c", "tick", cycle=i, value=i)
        assert legacy.dropped == columnar.dropped == 4
        assert legacy.num_records == columnar.num_records == 5
        assert [i.value for i in legacy.instants] == [0, 1, 2, 3, 4]
        assert [i.value for i in columnar.instants] == [4, 5, 6, 7, 8]

    def test_env_gate(self):
        assert columnar_enabled({}) is True
        assert columnar_enabled({"CEDAR_COLUMNAR": "0"}) is False
        assert columnar_enabled({"CEDAR_COLUMNAR": "1"}) is True


class TestWireFormat:
    def _snapshot(self) -> TraceSnapshot:
        tracer = Tracer(clock=FakeClock(), columnar=True)
        _record_mixed(tracer)
        return tracer.snapshot()

    def test_round_trip_preserves_records_and_aggregates(self):
        snap = self._snapshot()
        back = TraceSnapshot.from_bytes(snap.to_bytes())
        assert back.counts == snap.counts
        assert back.strings == snap.strings
        for kind, column in (
            ("spans", "start"),
            ("instants", "cycle"),
            ("samples", "value"),
        ):
            assert back.column(kind, column) == snap.column(kind, column)
        assert back.counter_totals == snap.counter_totals
        assert back.busy_cycles == snap.busy_cycles
        assert back.records_seen == snap.records_seen
        assert back.values_rendered is True

    def test_round_trip_is_a_fixed_point(self):
        payload = self._snapshot().to_bytes()
        assert TraceSnapshot.from_bytes(payload).to_bytes() == payload

    def test_export_identical_before_and_after_wire(self):
        snap = self._snapshot()
        direct = chrome_trace_json(snap)
        assert chrome_trace_json(TraceSnapshot.from_bytes(snap.to_bytes())) == direct

    def test_bad_magic_raises(self):
        with pytest.raises(TraceError):
            TraceSnapshot.from_bytes(b"NOTATRACE" + b"\0" * 16)

    def test_corrupt_header_raises(self):
        payload = bytearray(self._snapshot().to_bytes())
        payload[12] ^= 0xFF  # garble the JSON header
        with pytest.raises(TraceError):
            TraceSnapshot.from_bytes(bytes(payload))


class TestZeroCopySnapshot:
    def test_snapshot_views_track_the_live_buffer(self):
        store = ColumnarStore(max_records=64)
        store.add_sample("f", "occ", 0, 1, 1.0)
        snap = store.snapshot()
        segments = snap.float_columns["samples"]["value"]
        assert all(isinstance(seg, memoryview) for seg in segments)

    def test_to_bytes_freezes_a_copy(self):
        store = ColumnarStore(max_records=64)
        store.add_sample("f", "occ", 0, 1, 1.0)
        frozen = store.snapshot().to_bytes()
        store.add_sample("f", "occ", 0, 2, 2.0)
        back = TraceSnapshot.from_bytes(frozen)
        assert back.counts["samples"] == 1
        assert back.column("samples", "value") == [1.0]


class TestOverheadEstimate:
    def test_reports_per_record_cost_and_ratio(self):
        tracer = Tracer(clock=FakeClock(), columnar=True)
        _record_mixed(tracer)
        estimate = tracer.overhead_estimate(wall_seconds=1.0)
        assert estimate["records"] == tracer.records_seen
        assert estimate["per_record_ns"] > 0
        assert 0 < estimate["overhead_seconds"] < 1.0
        assert estimate["ratio"] == pytest.approx(
            estimate["overhead_seconds"] / 1.0
        )

    def test_zero_wall_clock_does_not_divide(self):
        tracer = Tracer(clock=FakeClock(), columnar=True)
        tracer.instant("c", "tick", cycle=0)
        estimate = tracer.overhead_estimate(wall_seconds=0.0)
        assert estimate["ratio"] == 0.0
