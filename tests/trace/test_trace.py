"""Tests for the machine-wide instrumentation bus (repro.trace)."""

import json

import pytest

from repro.config import DEFAULT_CONFIG
from repro.errors import TraceError
from repro.trace import (
    Tracer,
    chrome_trace_events,
    chrome_trace_json,
    current_tracer,
    tracing,
    utilization_report,
)


class FakeClock:
    def __init__(self, cycle: int = 0) -> None:
        self.cycle = cycle

    def __call__(self) -> int:
        return self.cycle


class TestDisabledFastPath:
    def test_recording_is_a_no_op(self):
        tracer = Tracer(enabled=False, clock=FakeClock())
        tracer.count("memory", "requests")
        tracer.sample("fwd", "occupancy", 12.0, cycle=5)
        tracer.begin("machine", "run")
        tracer.end("machine")
        tracer.complete("memory", "read", 0, 4)
        tracer.instant("ce00", "posted")
        assert tracer.num_records == 0
        assert tracer.counter_totals() == {}
        assert tracer.busy_cycles() == {}

    def test_if_enabled_is_none(self):
        assert Tracer(enabled=False).if_enabled() is None
        tracer = Tracer(enabled=True)
        assert tracer.if_enabled() is tracer

    def test_bus_still_delivers_when_disabled(self):
        """Table 2 correctness must not depend on timeline recording."""
        tracer = Tracer(enabled=False)
        seen = []
        tracer.subscribe("prefetch.first_word_latency", seen.append)
        tracer.publish("prefetch.first_word_latency", 93)
        assert seen == [93]
        assert tracer.num_records == 0

    def test_end_without_begin_is_silent_when_disabled(self):
        # The stack never opened, so nothing can be unbalanced.
        Tracer(enabled=False).end("machine")


class TestSpans:
    def test_nesting_depths(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        tracer.begin("machine", "outer")
        clock.cycle = 10
        tracer.begin("machine", "inner")
        clock.cycle = 30
        tracer.end("machine")
        clock.cycle = 50
        tracer.end("machine")
        inner, outer = tracer.spans
        assert (inner.name, inner.depth, inner.cycles) == ("inner", 1, 20)
        assert (outer.name, outer.depth, outer.cycles) == ("outer", 0, 50)
        assert tracer.open_spans("machine") == 0

    def test_span_context_manager_closes_on_error(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("machine", "run"):
                raise RuntimeError("kernel died")
        assert tracer.open_spans("machine") == 0
        assert tracer.spans[0].name == "run"

    def test_end_without_begin_raises(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(TraceError):
            tracer.end("machine")

    def test_complete_rejects_negative_interval(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(TraceError):
            tracer.complete("memory", "read", 10, 4)

    def test_busy_cycles_survive_record_drops(self):
        tracer = Tracer(clock=FakeClock(), max_records=2)
        for start in range(5):
            tracer.complete("memory.m00", "read", start, start + 4)
        assert tracer.dropped == 3
        assert len(tracer.spans) == 2
        assert tracer.busy_cycles() == {"memory.m00": 20}
        assert tracer.span_counts() == {"memory.m00": 5}

    def test_begin_needs_a_clock(self):
        with pytest.raises(TraceError):
            Tracer().begin("machine", "run")


class TestEpochs:
    def test_set_clock_opens_new_epochs(self):
        tracer = Tracer()
        tracer.set_clock(FakeClock(0))
        assert tracer.epoch == 0
        tracer.complete("machine", "run", 0, 100)
        tracer.set_clock(FakeClock(0))
        assert tracer.epoch == 1
        tracer.complete("machine", "run", 0, 60)
        assert [s.epoch for s in tracer.spans] == [0, 1]
        assert tracer.elapsed_by_epoch() == {0: 100, 1: 60}


class TestCounters:
    def test_totals_accumulate(self):
        tracer = Tracer(clock=FakeClock())
        tracer.count("fwd", "packets", 3)
        tracer.count("fwd", "packets")
        assert tracer.counter_totals() == {"fwd": {"packets": 4}}

    def test_samples_are_bounded_records(self):
        tracer = Tracer(clock=FakeClock(), max_records=1)
        tracer.sample("fwd", "occupancy", 7.0, cycle=3)
        tracer.sample("fwd", "occupancy", 9.0, cycle=6)
        assert len(tracer.samples) == 1
        assert tracer.dropped == 1
        # The latest sampled value still lands in the exact totals.
        assert tracer.counters("fwd").get("occupancy") == 9.0


class TestChromeExport:
    def _traced(self) -> Tracer:
        clock = FakeClock()
        tracer = Tracer()
        tracer.set_clock(clock)
        with tracer.span("machine", "run_kernel[2 ces]"):
            clock.cycle = 100
        tracer.complete("memory.m00", "read", 5, 9, address=160)
        tracer.sample("fwd", "occupancy_words", 12.0, cycle=40)
        tracer.instant("ce00", "loop_done", cycle=90, value=1)
        return tracer

    def test_document_schema(self):
        doc = json.loads(chrome_trace_json(self._traced()))
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["otherData"]["cycle_ns"] == pytest.approx(170.0)
        phases = {event["ph"] for event in doc["traceEvents"]}
        assert {"M", "X", "C", "i"} <= phases
        for event in doc["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(event)

    def test_complete_events_carry_duration_in_us(self):
        events = chrome_trace_events(self._traced())
        read = next(e for e in events if e["ph"] == "X" and e["name"] == "read")
        assert read["ts"] == pytest.approx(5 * 0.17)
        assert read["dur"] == pytest.approx(4 * 0.17)
        assert read["args"]["address"] == 160
        assert read["args"]["cycles"] == 4

    def test_counter_and_metadata_events(self):
        events = chrome_trace_events(self._traced())
        counter = next(e for e in events if e["ph"] == "C")
        assert counter["args"] == {"occupancy_words": 12.0}
        thread_names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"machine", "memory.m00", "fwd", "ce00"} <= thread_names


class TestAmbientTracer:
    def test_tracing_installs_and_restores(self):
        assert current_tracer() is None
        tracer = Tracer()
        with tracing(tracer) as installed:
            assert installed is tracer
            assert current_tracer() is tracer
            inner = Tracer()
            with tracing(inner):
                assert current_tracer() is inner
            assert current_tracer() is tracer
        assert current_tracer() is None


class TestMachineIntegration:
    def _run_machine(self, tracer: Tracer) -> None:
        from repro.hardware.ce import ArmFirePrefetch, Compute, ConsumePrefetch
        from repro.hardware.machine import CedarMachine

        machine = CedarMachine(DEFAULT_CONFIG, tracer=tracer)

        def kernel(ce):
            handle = yield ArmFirePrefetch(
                length=32, stride=1, start_address=ce.global_port * 512
            )
            yield ConsumePrefetch(handle)
            yield Compute(10, flops=5.0)

        machine.run_kernel(kernel, num_ces=8)

    def test_machine_run_covers_five_plus_components(self):
        tracer = Tracer(enabled=True)
        self._run_machine(tracer)
        groups = {c.split(".", 1)[0] for c in tracer.counter_totals()}
        groups |= {c.split(".", 1)[0] for c in tracer.busy_cycles()}
        assert {"machine", "memory", "prefetch", "fwd", "rev", "engine"} <= groups
        report = utilization_report(tracer)
        assert "Component utilization" in report
        assert "memory" in report and "prefetch" in report

    def test_disabled_tracer_records_nothing_on_machine_run(self):
        quiet = Tracer(enabled=False)
        self._run_machine(quiet)
        assert quiet.num_records == 0
        assert quiet.counter_totals() == {}


class TestUtilizationRanking:
    """The report ranks groups hottest-first with a %run share column."""

    def make_tracer(self):
        tracer = Tracer(enabled=True)
        tracer.complete("fwd", "packet", 0, 30)
        tracer.complete("memory.m00", "service", 0, 40)
        tracer.complete("memory.m01", "service", 0, 20)
        tracer.complete("engine", "event", 0, 10)
        return tracer

    def test_sorted_by_busy_cycles_descending(self):
        report = utilization_report(self.make_tracer())
        lines = [l for l in report.splitlines() if "%" in l and "util" not in l]
        ranked = [line.split()[0] for line in lines]
        assert ranked == ["memory", "fwd", "engine"]

    def test_percent_of_run_column(self):
        # busy: memory 60, fwd 30, engine 10 -> shares 60/30/10 of 100
        report = utilization_report(self.make_tracer())
        assert "hottest first" in report
        rows = {
            line.split()[0]: line.split()
            for line in report.splitlines()
            if "%" in line and "util" not in line
        }
        assert rows["memory"][4] == "60.0%"
        assert rows["fwd"][4] == "30.0%"
        assert rows["engine"][4] == "10.0%"
        # util divides by wall * subunits: memory = 60 / (40 * 2)
        assert rows["memory"][5] == "75.0%"

    def test_equal_busy_breaks_ties_alphabetically(self):
        tracer = Tracer(enabled=True)
        tracer.complete("zeta", "work", 0, 10)
        tracer.complete("alpha", "work", 0, 10)
        report = utilization_report(tracer)
        assert report.index("alpha") < report.index("zeta")


class TestDegenerateReports:
    """Zero-span and overlapping-span traces must render, not crash."""

    def test_empty_tracer_reports_no_spans(self):
        report = utilization_report(Tracer(enabled=True))
        assert "No spans recorded." in report
        assert "0 records" in report
        assert "%" not in report  # no utilization table, no division

    def test_counters_without_spans_still_report(self):
        tracer = Tracer(enabled=True)
        tracer.count("fwd", "packets", 7)
        report = utilization_report(tracer)
        assert "No spans recorded." in report
        assert "fwd.packets" in report

    def test_zero_wall_clock_does_not_divide(self):
        tracer = Tracer(enabled=True)
        tracer.complete("m", "blip", 0, 0)  # zero-cycle span, zero wall
        report = utilization_report(tracer)
        assert "0.0%" in report  # util falls back to 0, no ZeroDivisionError

    def test_overlapping_spans_are_flagged_past_100_percent(self):
        tracer = Tracer(enabled=True)
        # Two overlapping cost terms on one timeline: busy 40 of wall 20.
        tracer.complete("model", "compute", 0, 20)
        tracer.complete("model", "memory", 0, 20)
        report = utilization_report(tracer)
        assert "200.0%" in report
        assert "util > 100%" in report

    def test_disabled_tracer_report_is_empty_shaped(self):
        report = utilization_report(Tracer(enabled=False))
        assert "No spans recorded." in report
