"""Tests for the Perfect code profiles and version construction."""

import pytest

from repro.lang.loops import Doall, IOSection, SerialSection, VirtualMemoryActivity
from repro.lang.placement import Placement
from repro.lang.runtime import Schedule
from repro.perfect.codes import ALL_PROFILES
from repro.perfect.profiles import CodeProfile, HandOptimization
from repro.perfect.suite import PERFECT_CODES, code_names, get_profile
from repro.perfect.versions import Version, build_program, options_for


class TestRegistry:
    def test_thirteen_codes(self):
        assert len(PERFECT_CODES) == 13
        assert code_names() == sorted(
            ["ADM", "ARC3D", "BDNA", "DYFESM", "FLO52", "MDG", "MG3D",
             "OCEAN", "QCD", "SPEC77", "SPICE", "TRACK", "TRFD"]
        )

    def test_unknown_code_raises(self):
        with pytest.raises(KeyError):
            get_profile("NOPE")

    def test_every_profile_has_a_hand_recipe(self):
        for profile in ALL_PROFILES:
            assert profile.hand is not None, profile.name


class TestProfileValidation:
    def _kwargs(self, **overrides):
        base = dict(
            name="X", description="", total_flops=1e8, flops_per_word=1.0,
            kap_coverage=0.1, auto_coverage=0.8, trip_count=32,
            parallel_loop_instances=100, loop_vector_fraction=0.9,
            serial_vector_fraction=0.1, vector_length=32,
            global_data_fraction=0.5, prefetchable_fraction=0.8,
            scalar_memory_fraction=0.1,
        )
        base.update(overrides)
        return base

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            CodeProfile(**self._kwargs(auto_coverage=1.5))

    def test_kap_cannot_exceed_auto(self):
        with pytest.raises(ValueError):
            CodeProfile(**self._kwargs(kap_coverage=0.9, auto_coverage=0.5))

    def test_positive_volumes(self):
        with pytest.raises(ValueError):
            CodeProfile(**self._kwargs(total_flops=0.0))

    def test_monitor_flops(self):
        profile = CodeProfile(**self._kwargs(monitor_flop_fraction=0.5))
        assert profile.monitor_flops == pytest.approx(5e7)


class TestHandOptimization:
    def test_no_hand_recipe_raises(self):
        profile = CodeProfile(
            name="X", description="", total_flops=1e8, flops_per_word=1.0,
            kap_coverage=0.1, auto_coverage=0.8, trip_count=32,
            parallel_loop_instances=100, loop_vector_fraction=0.9,
            serial_vector_fraction=0.1, vector_length=32,
            global_data_fraction=0.5, prefetchable_fraction=0.8,
            scalar_memory_fraction=0.1,
        )
        with pytest.raises(ValueError):
            profile.with_hand_optimization()

    def test_bdna_hand_drops_formatted_io(self):
        hand = get_profile("BDNA").with_hand_optimization()
        assert not hand.io_formatted

    def test_arc3d_hand_removes_computation(self):
        base = get_profile("ARC3D")
        hand = base.with_hand_optimization()
        assert hand.total_flops < base.total_flops

    def test_trfd_hand_fixes_paging(self):
        base = get_profile("TRFD")
        assert base.paging_seconds > 0
        assert base.with_hand_optimization().paging_seconds == 0

    def test_qcd_hand_parallelizes_the_rng(self):
        base = get_profile("QCD")
        hand = base.with_hand_optimization()
        assert hand.auto_coverage > 0.95

    def test_flo52_hand_collapses_barriers(self):
        base = get_profile("FLO52")
        hand = base.with_hand_optimization()
        assert hand.multicluster_barriers < base.multicluster_barriers / 2

    def test_spice_hand_shrinks_serial_work(self):
        base = get_profile("SPICE")
        hand = base.with_hand_optimization()
        assert hand.total_flops < base.total_flops


class TestProgramConstruction:
    def test_automatable_program_structure(self):
        program = build_program(get_profile("ADM"), Version.AUTOMATABLE)
        kinds = [type(c).__name__ for c in program.body]
        assert "Doall" in kinds
        assert "SerialSection" in kinds

    def test_bdna_has_io_section(self):
        program = build_program(get_profile("BDNA"), Version.AUTOMATABLE)
        io = [c for c in program.body if isinstance(c, IOSection)]
        assert io and io[0].formatted

    def test_trfd_has_paging_section(self):
        program = build_program(get_profile("TRFD"), Version.AUTOMATABLE)
        assert any(isinstance(c, VirtualMemoryActivity) for c in program.body)

    def test_kap_keeps_data_global(self):
        program = build_program(get_profile("MDG"), Version.KAP)
        loops = [c for c in program.body if isinstance(c, Doall)]
        global_loops = [l for l in loops if l.placement is Placement.GLOBAL]
        assert global_loops

    def test_loop_flops_sum_to_coverage(self):
        profile = get_profile("ADM")
        program = build_program(profile, Version.AUTOMATABLE)
        loop_flops = sum(
            c.instances * c.trip_count * c.body.flops
            for c in program.body
            if isinstance(c, Doall)
        )
        assert loop_flops == pytest.approx(
            profile.auto_coverage * profile.total_flops, rel=0.01
        )

    def test_dyfesm_hand_uses_hierarchy(self):
        program = build_program(get_profile("DYFESM"), Version.HAND)
        nested = [c for c in program.body
                  if isinstance(c, Doall) and c.nested]
        assert nested


class TestOptions:
    def test_version_option_ladder(self):
        profile = get_profile("ADM")
        auto = options_for(Version.AUTOMATABLE, profile)
        assert auto.use_cedar_sync and auto.use_prefetch
        nosync = options_for(Version.AUTOMATABLE_NO_SYNC, profile)
        assert not nosync.use_cedar_sync and nosync.use_prefetch
        nopref = options_for(Version.AUTOMATABLE_NO_PREFETCH, profile)
        assert not nopref.use_cedar_sync and not nopref.use_prefetch

    def test_hand_options_static_without_sync(self):
        options = options_for(Version.HAND, get_profile("TRFD"))
        assert options.schedule is Schedule.STATIC
        assert not options.use_cedar_sync
        assert options.use_prefetch

    def test_kap_single_cluster_flag(self):
        options = options_for(Version.KAP, get_profile("DYFESM"))
        assert options.single_cluster
