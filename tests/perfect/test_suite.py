"""Calibration tests: the Perfect suite against the reconstructed targets.

Tolerances: paper-quoted figures (QCD's 1.8x/20.8x/11.4x, the Table 4
times, Table 5's instabilities, Table 6's band census) are held tightly;
reconstructed cells get wider bands (see targets.py on provenance).
"""

import pytest

from repro.core.bands import Band, census, classify_speedup
from repro.core.stability import instability
from repro.perfect.suite import code_names, run_code, run_suite
from repro.perfect.targets import TARGETS
from repro.perfect.versions import Version


@pytest.fixture(scope="module")
def grid():
    return run_suite()


class TestSerialTimes:
    def test_serial_times_match_targets(self, grid):
        for code in code_names():
            measured = grid[code][Version.SERIAL].seconds
            assert measured == pytest.approx(
                TARGETS[code].serial_seconds, rel=0.05
            ), code


class TestImprovements:
    def test_automatable_improvements(self, grid):
        for code in code_names():
            measured = grid[code][Version.AUTOMATABLE].improvement
            assert measured == pytest.approx(
                TARGETS[code].auto_improvement, rel=0.25
            ), code

    def test_kap_improvements(self, grid):
        for code in code_names():
            measured = grid[code][Version.KAP].improvement
            assert measured == pytest.approx(
                TARGETS[code].kap_improvement, rel=0.30
            ), code

    def test_kap_never_beats_automatable(self, grid):
        for code in code_names():
            assert (
                grid[code][Version.KAP].improvement
                <= grid[code][Version.AUTOMATABLE].improvement + 1e-9
            ), code

    def test_qcd_paper_quote(self, grid):
        """QCD: 1.8x automatable (verbatim from the paper)."""
        assert grid["QCD"][Version.AUTOMATABLE].improvement == pytest.approx(
            1.8, rel=0.1
        )


class TestVersionLadder:
    def test_no_sync_slowdowns(self, grid):
        for code in code_names():
            slowdown = (
                grid[code][Version.AUTOMATABLE_NO_SYNC].seconds
                / grid[code][Version.AUTOMATABLE].seconds
            )
            assert slowdown >= 0.999, code
            assert slowdown == pytest.approx(
                TARGETS[code].no_sync_slowdown, abs=0.15
            ), code

    def test_sync_matters_most_for_fine_grained_codes(self, grid):
        def slowdown(code):
            return (
                grid[code][Version.AUTOMATABLE_NO_SYNC].seconds
                / grid[code][Version.AUTOMATABLE].seconds
            )

        for fine in ("DYFESM", "OCEAN"):
            for coarse in ("BDNA", "QCD", "SPICE"):
                assert slowdown(fine) > slowdown(coarse), (fine, coarse)

    def test_no_prefetch_slowdowns(self, grid):
        for code in code_names():
            slowdown = (
                grid[code][Version.AUTOMATABLE_NO_PREFETCH].seconds
                / grid[code][Version.AUTOMATABLE_NO_SYNC].seconds
            )
            assert slowdown >= 0.999, code
            assert slowdown == pytest.approx(
                TARGETS[code].no_prefetch_slowdown, abs=0.15
            ), code

    def test_prefetch_matters_most_for_global_vector_codes(self, grid):
        def slowdown(code):
            return (
                grid[code][Version.AUTOMATABLE_NO_PREFETCH].seconds
                / grid[code][Version.AUTOMATABLE_NO_SYNC].seconds
            )

        assert slowdown("DYFESM") > slowdown("TRACK")
        assert slowdown("DYFESM") > slowdown("SPICE")


class TestHandVersions:
    @pytest.mark.parametrize(
        "code", ["ARC3D", "BDNA", "DYFESM", "FLO52", "QCD", "SPICE", "TRFD"]
    )
    def test_table4_times(self, grid, code):
        measured = grid[code][Version.HAND].seconds
        assert measured == pytest.approx(TARGETS[code].hand_seconds, rel=0.20), code

    def test_qcd_hand_speed_improvement_20_8(self, grid):
        """'a speed improvement of 20.8 rather than the 1.8 reported'."""
        assert grid["QCD"][Version.HAND].improvement == pytest.approx(
            20.8, rel=0.15
        )

    def test_table4_improvement_basis(self, grid):
        """Improvements over automatable w/ prefetch w/o Cedar sync."""
        for code, quoted in (("ARC3D", 2.1), ("BDNA", 1.7), ("TRFD", 2.8),
                             ("QCD", 11.4)):
            measured = (
                grid[code][Version.AUTOMATABLE_NO_SYNC].seconds
                / grid[code][Version.HAND].seconds
            )
            assert measured == pytest.approx(quoted, rel=0.20), code

    def test_hand_never_slower_than_automatable(self, grid):
        for code in code_names():
            if Version.HAND in grid[code]:
                assert (
                    grid[code][Version.HAND].seconds
                    <= grid[code][Version.AUTOMATABLE].seconds * 1.05
                ), code


class TestMethodologyInputs:
    def test_mflops_targets(self, grid):
        for code in code_names():
            measured = grid[code][Version.AUTOMATABLE].mflops
            assert measured == pytest.approx(
                TARGETS[code].auto_mflops, rel=0.25
            ), code

    def test_cedar_instability_table5(self, grid):
        rates = {c: grid[c][Version.AUTOMATABLE].mflops for c in code_names()}
        assert instability(rates, 0) == pytest.approx(63.4, rel=0.10)
        assert instability(rates, 2) == pytest.approx(5.8, rel=0.10)

    def test_cedar_band_census_table6(self, grid):
        efficiencies = {
            c: grid[c][Version.AUTOMATABLE].efficiency for c in code_names()
        }
        tally = census(efficiencies, 32)
        assert (tally.high, tally.intermediate, tally.unacceptable) == (1, 9, 3)

    def test_figure3_hand_census(self, grid):
        bands = [
            classify_speedup(grid[c][Version.HAND].improvement, 32)
            for c in code_names()
        ]
        assert bands.count(Band.UNACCEPTABLE) == 0
        assert 3 <= bands.count(Band.HIGH) <= 5  # "about one-quarter"
