"""Tests for the ASCII report helpers."""

import pytest

from repro.core.bands import Band
from repro.core.report import (
    band_summary,
    efficiency_scatter,
    format_table,
    fraction_description,
    format_ratio_rows,
)


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(("a", "bb"), [("x", 1.25), ("yyy", 2)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "---" in lines[2]
        assert "1.2" in text  # floats to one decimal
        assert "yyy" in text

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(("a",), [("x", "y")])

    def test_none_renders_as_dash(self):
        assert "-" in format_table(("a",), [(None,)])

    def test_empty_rows_ok(self):
        text = format_table(("alpha", "beta"), [])
        assert "alpha" in text


class TestScatter:
    def test_contains_band_letters_and_legend(self):
        x = {"A": 0.6, "B": 0.2, "C": 0.05}
        y = {"A": 0.7, "B": 0.3, "C": 0.02}
        plot = efficiency_scatter(x, y, 8, 32)
        assert "H" in plot
        assert "I" in plot
        assert "U" in plot
        assert "legend" in plot

    def test_requires_shared_codes(self):
        with pytest.raises(ValueError):
            efficiency_scatter({"A": 0.5}, {"B": 0.5}, 8, 32)

    def test_out_of_range_efficiency_is_clamped(self):
        plot = efficiency_scatter({"A": 1.4}, {"A": 1.2}, 8, 32)
        assert "H" in plot


class TestDescriptions:
    def test_band_summary_groups(self):
        groups = band_summary({"A": Band.HIGH, "B": Band.HIGH,
                               "C": Band.UNACCEPTABLE})
        assert groups[Band.HIGH] == ["A", "B"]
        assert groups[Band.INTERMEDIATE] == []

    def test_fraction_description(self):
        text = fraction_description(
            {"A": Band.HIGH, "B": Band.INTERMEDIATE, "C": Band.INTERMEDIATE,
             "D": Band.UNACCEPTABLE}
        )
        assert "1/4 high" in text
        assert "2/4 intermediate" in text
        assert "1/4 unacceptable" in text

    def test_fraction_description_rejects_empty(self):
        with pytest.raises(ValueError):
            fraction_description({})

    def test_ratio_rows(self):
        text = format_ratio_rows([("QCD", 2.4, 1.8)], "YMP", "Cedar")
        assert "QCD" in text
        assert "1.3" in text  # 2.4 / 1.8
