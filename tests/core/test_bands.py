"""Tests for the high/intermediate/unacceptable performance bands."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.bands import (
    Band,
    BandCensus,
    band_thresholds,
    census,
    classify_efficiency,
    classify_speedup,
)


class TestThresholds:
    def test_paper_levels_at_32(self):
        high, acceptable = band_thresholds(32)
        assert high == 16.0
        assert acceptable == pytest.approx(32 / (2 * 5))  # log2(32) = 5

    def test_paper_levels_at_8(self):
        high, acceptable = band_thresholds(8)
        assert high == 4.0
        assert acceptable == pytest.approx(8 / 6)

    def test_below_eight_rejected(self):
        with pytest.raises(ValueError):
            band_thresholds(4)

    @given(st.integers(8, 4096))
    def test_high_always_above_acceptable(self, processors):
        high, acceptable = band_thresholds(processors)
        assert high > acceptable > 0


class TestClassification:
    def test_high(self):
        assert classify_speedup(20.0, 32) is Band.HIGH

    def test_exact_threshold_is_high(self):
        assert classify_speedup(16.0, 32) is Band.HIGH

    def test_intermediate(self):
        assert classify_speedup(5.0, 32) is Band.INTERMEDIATE

    def test_unacceptable(self):
        assert classify_speedup(2.0, 32) is Band.UNACCEPTABLE

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            classify_speedup(-1.0, 32)

    def test_efficiency_equivalent_to_speedup(self):
        assert classify_efficiency(0.5, 32) is classify_speedup(16.0, 32)
        assert classify_efficiency(0.2, 32) is classify_speedup(6.4, 32)

    @given(st.floats(0.0, 2.0), st.integers(8, 1024))
    def test_consistency(self, efficiency, processors):
        by_eff = classify_efficiency(efficiency, processors)
        by_speedup = classify_speedup(efficiency * processors, processors)
        assert by_eff is by_speedup


class TestCensus:
    def test_paper_table6_cedar_shape(self):
        efficiencies = {
            "FLO52": 0.56,
            **{f"mid{i}": 0.2 for i in range(9)},
            "QCD": 0.05, "SPICE": 0.04, "TRACK": 0.07,
        }
        tally = census(efficiencies, 32)
        assert (tally.high, tally.intermediate, tally.unacceptable) == (1, 9, 3)

    def test_total(self):
        tally = BandCensus(high=1, intermediate=2, unacceptable=3)
        assert tally.total == 6
        assert tally.as_dict() == {
            "high": 1, "intermediate": 2, "unacceptable": 3
        }

    def test_empty_census(self):
        tally = census({}, 32)
        assert tally.total == 0
