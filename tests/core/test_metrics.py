"""Tests for repro.core.metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.core.metrics import (
    CodeResult,
    Ensemble,
    efficiency,
    ensemble_from_results,
    harmonic_mean,
    mflops,
    speedup,
)


class TestSpeedup:
    def test_basic_ratio(self):
        assert speedup(100.0, 25.0) == 4.0

    def test_slowdown_is_below_one(self):
        assert speedup(10.0, 20.0) == 0.5

    def test_rejects_zero_serial(self):
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)

    def test_rejects_negative_parallel(self):
        with pytest.raises(ValueError):
            speedup(1.0, -1.0)

    @given(st.floats(0.001, 1e6), st.floats(0.001, 1e6))
    def test_speedup_times_parallel_recovers_serial(self, serial, parallel):
        assert speedup(serial, parallel) * parallel == pytest.approx(serial)


class TestEfficiency:
    def test_perfect_efficiency(self):
        assert efficiency(32.0, 32) == 1.0

    def test_half_efficiency(self):
        assert efficiency(16.0, 32) == 0.5

    def test_rejects_zero_processors(self):
        with pytest.raises(ValueError):
            efficiency(1.0, 0)

    def test_rejects_negative_speedup(self):
        with pytest.raises(ValueError):
            efficiency(-1.0, 8)


class TestMflops:
    def test_rate(self):
        assert mflops(2e8, 2.0) == 100.0

    def test_rejects_zero_time(self):
        with pytest.raises(ValueError):
            mflops(1e6, 0.0)

    def test_zero_flops_is_zero_rate(self):
        assert mflops(0.0, 1.0) == 0.0


class TestHarmonicMean:
    def test_equal_values(self):
        assert harmonic_mean([5.0, 5.0, 5.0]) == pytest.approx(5.0)

    def test_known_value(self):
        # HM of 1 and 3 is 1.5
        assert harmonic_mean([1.0, 3.0]) == pytest.approx(1.5)

    def test_dominated_by_minimum(self):
        assert harmonic_mean([0.1, 100.0, 100.0]) < 0.31

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            harmonic_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])

    @given(st.lists(st.floats(0.01, 1e4), min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        hm = harmonic_mean(values)
        assert min(values) - 1e-9 <= hm <= max(values) + 1e-9


def _result(code="TRFD", serial=220.0, parallel=21.0, flops=1.7e9,
            machine="cedar", processors=32):
    return CodeResult(
        code=code, machine=machine, processors=processors,
        serial_seconds=serial, parallel_seconds=parallel, flop_count=flops,
    )


class TestCodeResult:
    def test_speedup_property(self):
        assert _result().speedup == pytest.approx(220.0 / 21.0)

    def test_efficiency_property(self):
        assert _result().efficiency == pytest.approx(220.0 / 21.0 / 32)

    def test_mflops_property(self):
        assert _result().mflops == pytest.approx(1.7e9 / 21.0 / 1e6)


class TestEnsemble:
    def test_add_and_views(self):
        ensemble = Ensemble(machine="cedar", processors=32)
        ensemble.add(_result("A"))
        ensemble.add(_result("B", parallel=42.0))
        assert ensemble.codes == ["A", "B"]
        assert len(ensemble) == 2
        assert ensemble.rates()["B"] == pytest.approx(1.7e9 / 42.0 / 1e6)
        assert ensemble.speedups()["A"] == pytest.approx(220.0 / 21.0)

    def test_rejects_wrong_machine(self):
        ensemble = Ensemble(machine="cedar", processors=32)
        with pytest.raises(ValueError):
            ensemble.add(_result(machine="cray"))

    def test_rejects_wrong_processor_count(self):
        ensemble = Ensemble(machine="cedar", processors=32)
        with pytest.raises(ValueError):
            ensemble.add(_result(processors=8))

    def test_harmonic_mean_mflops(self):
        ensemble = ensemble_from_results([_result("A"), _result("B")])
        assert ensemble.harmonic_mean_mflops() == pytest.approx(
            _result().mflops
        )

    def test_from_results_rejects_empty(self):
        with pytest.raises(ValueError):
            ensemble_from_results([])


class TestEdgeCases:
    """Degenerate inputs: zero/negative times, empty sequences."""

    def test_speedup_rejects_negative_serial(self):
        with pytest.raises(ValueError, match="serial"):
            speedup(-100.0, 25.0)

    def test_speedup_rejects_zero_parallel(self):
        with pytest.raises(ValueError, match="parallel"):
            speedup(100.0, 0.0)

    def test_mflops_rejects_negative_time(self):
        with pytest.raises(ValueError, match="time"):
            mflops(1e6, -2.0)

    def test_mflops_rejects_negative_flops(self):
        with pytest.raises(ValueError, match="flop"):
            mflops(-1.0, 2.0)

    def test_efficiency_of_zero_speedup(self):
        assert efficiency(0.0, 8) == 0.0

    def test_efficiency_rejects_negative_processors(self):
        with pytest.raises(ValueError, match="processor"):
            efficiency(1.0, -8)

    def test_harmonic_mean_single_value(self):
        assert harmonic_mean([7.0]) == pytest.approx(7.0)

    def test_harmonic_mean_rejects_negative(self):
        with pytest.raises(ValueError, match="positive"):
            harmonic_mean([1.0, -3.0])

    def test_harmonic_mean_accepts_tuple(self):
        assert harmonic_mean((1.0, 3.0)) == pytest.approx(1.5)

    @given(st.lists(st.floats(0.01, 1e4), min_size=1, max_size=20))
    def test_harmonic_at_most_arithmetic(self, values):
        assert harmonic_mean(values) <= sum(values) / len(values) + 1e-9

    def test_code_result_zero_parallel_raises_on_access(self):
        broken = CodeResult(
            code="X", machine="cedar", processors=32,
            serial_seconds=100.0, parallel_seconds=0.0,
        )
        with pytest.raises(ValueError):
            broken.speedup
        with pytest.raises(ValueError):
            broken.mflops

    def test_empty_ensemble_views(self):
        ensemble = Ensemble(machine="cedar", processors=32)
        assert len(ensemble) == 0
        assert ensemble.codes == []
        assert ensemble.rates() == {}
        with pytest.raises(ValueError):
            ensemble.harmonic_mean_mflops()
