"""Tests for the stability/instability measure St(P, N, K, e)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.stability import (
    STABILITY_THRESHOLD,
    exhaustive_stability,
    instability,
    instability_profile,
    minimal_exclusions_for_stability,
    stability,
)


RATES = {"A": 1.0, "B": 2.0, "C": 4.0, "D": 8.0, "E": 64.0}


class TestStability:
    def test_no_exclusions_is_min_over_max(self):
        result = stability(RATES)
        assert result.stability == pytest.approx(1.0 / 64.0)
        assert result.excluded == frozenset()
        assert result.retained_min == ("A", 1.0)
        assert result.retained_max == ("E", 64.0)

    def test_single_code_is_perfectly_stable(self):
        assert stability({"only": 7.0}).stability == 1.0

    def test_one_exclusion_drops_the_worst_extreme(self):
        # Dropping E (the high outlier) gives 1/8; dropping A gives 2/64.
        result = stability(RATES, exclusions=1)
        assert result.stability == pytest.approx(1.0 / 8.0)
        assert result.excluded == frozenset({"E"})

    def test_two_exclusions_can_split_between_extremes(self):
        result = stability(RATES, exclusions=2)
        # Two optima tie at 0.25: drop {A, E} (2/8) or {D, E} (1/4).
        assert result.stability == pytest.approx(0.25)
        assert result.excluded in (frozenset({"A", "E"}), frozenset({"D", "E"}))

    def test_rejects_excluding_everything(self):
        with pytest.raises(ValueError):
            stability(RATES, exclusions=5)

    def test_rejects_negative_exclusions(self):
        with pytest.raises(ValueError):
            stability(RATES, exclusions=-1)

    def test_rejects_nonpositive_rates(self):
        with pytest.raises(ValueError):
            stability({"A": 0.0})

    def test_rejects_empty_ensemble(self):
        with pytest.raises(ValueError):
            stability({})


class TestInstability:
    def test_is_inverse_of_stability(self):
        assert instability(RATES) == pytest.approx(64.0)

    def test_paper_style_profile(self):
        profile = instability_profile(RATES, (0, 1, 2))
        assert profile[0] == pytest.approx(64.0)
        assert profile[2] == pytest.approx(4.0)

    def test_profile_skips_infeasible_exclusions(self):
        profile = instability_profile({"A": 1.0, "B": 2.0}, (0, 5))
        assert 5 not in profile


class TestMinimalExclusions:
    def test_already_stable(self):
        assert minimal_exclusions_for_stability({"A": 1.0, "B": 5.0}) == 0

    def test_needs_two(self):
        rates = {"low": 0.1, "mid1": 3.0, "mid2": 6.0, "high": 100.0}
        # e=0: 1000; e=1: best is 60 or 30; e=2: drop low+high -> 2.
        assert minimal_exclusions_for_stability(rates) == 2

    def test_threshold_parameter(self):
        rates = {"A": 1.0, "B": 3.0}
        assert minimal_exclusions_for_stability(rates, threshold=2.0) == 1

    def test_unreachable_raises(self):
        # Any remaining pair is unstable; a single code is stable, but the
        # search stops before excluding K-1... e = K-1 leaves one code.
        rates = {"A": 1.0, "B": 1e9}
        assert minimal_exclusions_for_stability(rates) == 1


class TestEndExclusionOptimality:
    """The O(e) end-of-order search must match brute force."""

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.floats(0.1, 1000.0), min_size=3, max_size=8, unique=True),
        st.integers(0, 3),
    )
    def test_matches_exhaustive(self, values, exclusions):
        rates = {f"c{i}": v for i, v in enumerate(values)}
        if exclusions >= len(rates):
            return
        fast = stability(rates, exclusions)
        brute = exhaustive_stability(rates, exclusions)
        assert fast.stability == pytest.approx(brute.stability)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(0.1, 1000.0), min_size=2, max_size=10))
    def test_stability_monotone_in_exclusions(self, values):
        rates = {f"c{i}": v for i, v in enumerate(values)}
        best = 0.0
        for e in range(len(rates)):
            current = stability(rates, e).stability
            assert current >= best - 1e-12
            best = current
