"""Tests for the five Practical Parallelism Tests."""

import pytest

from repro.core.bands import Band
from repro.core.metrics import CodeResult, Ensemble
from repro.core.ppt import (
    PPT5Checklist,
    PracticalParallelismReport,
    ScalabilityPoint,
    evaluate_ppt1,
    evaluate_ppt2,
    evaluate_ppt3,
    evaluate_ppt4,
)


def make_ensemble(speedups, mflops=None, processors=32):
    ensemble = Ensemble(machine="test", processors=processors)
    mflops = mflops or {}
    for code, speedup in speedups.items():
        parallel = 100.0 / speedup
        rate = mflops.get(code, 5.0)
        ensemble.add(
            CodeResult(
                code=code, machine="test", processors=processors,
                serial_seconds=100.0, parallel_seconds=parallel,
                flop_count=rate * parallel * 1e6,
            )
        )
    return ensemble


class TestPPT1:
    def test_passes_with_intermediate_codes(self):
        ensemble = make_ensemble({"A": 10.0, "B": 8.0, "C": 20.0})
        result = evaluate_ppt1(ensemble)
        assert result.passed
        assert result.bands["C"] is Band.HIGH

    def test_fails_with_many_unacceptable(self):
        ensemble = make_ensemble({"A": 1.0, "B": 1.5, "C": 20.0})
        result = evaluate_ppt1(ensemble)
        assert result.unacceptable_codes == ["A", "B"]
        assert not result.passed

    def test_tolerates_one_by_default(self):
        ensemble = make_ensemble({"A": 1.0, "B": 8.0, "C": 20.0})
        assert evaluate_ppt1(ensemble).passed


class TestPPT2:
    def test_stable_suite_passes(self):
        ensemble = make_ensemble(
            {"A": 5.0, "B": 6.0, "C": 7.0},
            mflops={"A": 4.0, "B": 5.0, "C": 6.0},
        )
        result = evaluate_ppt2(ensemble)
        assert result.exclusions_needed == 0
        assert result.passed

    def test_two_outliers_still_pass(self):
        mflops = {"LOW": 0.1, "HIGH": 100.0, "A": 4.0, "B": 5.0, "C": 6.0}
        ensemble = make_ensemble({c: 5.0 for c in mflops}, mflops=mflops)
        result = evaluate_ppt2(ensemble)
        assert result.exclusions_needed == 2
        assert result.passed

    def test_ymp_style_failure(self):
        mflops = {f"c{i}": rate for i, rate in enumerate(
            [0.5, 1.0, 2.0, 13.0, 27.0, 55.0, 111.0]
        )}
        ensemble = make_ensemble({c: 2.0 for c in mflops}, mflops=mflops)
        result = evaluate_ppt2(ensemble)
        assert result.exclusions_needed > 2
        assert not result.passed

    def test_profile_contains_requested_points(self):
        ensemble = make_ensemble(
            {c: 5.0 for c in "ABCDEFG"},
            mflops={c: float(i + 1) for i, c in enumerate("ABCDEFG")},
        )
        result = evaluate_ppt2(ensemble, exclusion_counts=(0, 2))
        assert set(result.instability_by_exclusions) == {0, 2}


class TestPPT3:
    def test_census_and_verdict(self):
        ensemble = make_ensemble({"A": 17.0, "B": 5.0, "C": 1.0, "D": 6.0})
        result = evaluate_ppt3(ensemble)
        assert (result.high, result.intermediate, result.unacceptable) == (1, 2, 1)
        assert result.acceptable_fraction == pytest.approx(0.75)
        assert result.passed

    def test_fails_when_mostly_unacceptable(self):
        ensemble = make_ensemble({"A": 1.0, "B": 1.2, "C": 1.1, "D": 8.0})
        assert not evaluate_ppt3(ensemble).passed


def point(processors, size, mflops, efficiency):
    return ScalabilityPoint(
        processors=processors, problem_size=size,
        mflops=mflops, efficiency=efficiency,
    )


class TestPPT4:
    def test_scalable_machine(self):
        points = [
            point(32, 10_000, 34.0, 0.55),
            point(32, 172_000, 48.0, 0.65),
        ]
        result = evaluate_ppt4("cedar", points)
        assert result.scalable_processor_counts() == [32]
        assert result.passed

    def test_unstable_rates_fail(self):
        points = [
            point(32, 1_000, 5.0, 0.55),
            point(32, 172_000, 48.0, 0.65),
        ]
        result = evaluate_ppt4("wobbly", points)
        assert result.instability_over_sizes(32) > 2.0
        assert not result.passed

    def test_unacceptable_band_fails(self):
        points = [
            point(32, 10_000, 30.0, 0.05),
            point(32, 172_000, 40.0, 0.08),
        ]
        assert not evaluate_ppt4("slow", points).passed

    def test_needs_two_sizes_per_count(self):
        result = evaluate_ppt4("single", [point(32, 10_000, 30.0, 0.6)])
        with pytest.raises(ValueError):
            result.instability_over_sizes(32)
        assert result.scalable_processor_counts() == []

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            evaluate_ppt4("none", [])

    def test_worst_band_reported(self):
        points = [
            point(32, 10_000, 30.0, 0.6),
            point(32, 20_000, 32.0, 0.2),
        ]
        result = evaluate_ppt4("mixed", points)
        assert result.band_at(32) is Band.INTERMEDIATE


class TestReport:
    def test_verdict_dictionary(self):
        report = PracticalParallelismReport(machine="cedar")
        report.ppt5 = PPT5Checklist(
            machine="cedar", larger_processor_counts=True, new_technology=False
        )
        verdicts = report.verdicts()
        assert verdicts["PPT1"] is None
        assert verdicts["PPT5"] is False
