"""Tests for draining tracers and monitors into the registry."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.hardware.monitor import PerformanceMonitor
from repro.metrics import (
    MetricsRegistry,
    MonitorCatcher,
    collect_monitor,
    collect_tracer,
)
from repro.trace import Tracer


class TestCollectTracer:
    def test_counters_spans_and_run_accounting(self):
        tracer = Tracer(enabled=True)
        tracer.set_clock(lambda: 0)
        tracer.count("memory.m00", "requests_served", 10)
        tracer.count("memory.m01", "requests_served", 5)
        tracer.complete("memory.m00", "service", 0, 40)
        tracer.complete("fwd", "packet", 10, 12)
        registry = MetricsRegistry()
        collect_tracer(registry, tracer)
        flat = registry.as_flat_dict()
        assert flat[
            "sim_counter_total{component=memory.m00,counter=requests_served}"
        ] == 10
        assert flat["sim_busy_cycles{component=memory.m00}"] == 40
        assert flat["sim_span_count{component=fwd}"] == 1
        assert flat["sim_wall_cycles"] == 40
        assert flat["sim_machine_runs"] == 1
        assert flat["sim_trace_records"] == 2

    def test_disabled_tracer_contributes_nothing(self):
        """The registry must not require a recording tracer."""
        tracer = Tracer(enabled=False)
        tracer.count("memory", "requests")
        tracer.complete("memory", "service", 0, 10)
        registry = MetricsRegistry()
        registry.gauge("fidelity_metric").set(42.0)  # driver-side value
        collect_tracer(registry, tracer)
        assert registry.as_flat_dict() == {"fidelity_metric": 42.0}


class TestCollectMonitor:
    def make_monitor(self) -> PerformanceMonitor:
        monitor = PerformanceMonitor(DEFAULT_CONFIG.monitor)
        histogram = monitor.histogram("first_word_latency")
        for value in (8, 8, 9, 13):
            histogram.record(value)
        monitor.histogram("interarrival")  # empty: count only
        tracer = monitor.tracer("software")
        tracer.start()
        tracer.post(5, "loop_start")
        return monitor

    def test_histogram_and_tracer_summaries(self):
        registry = MetricsRegistry()
        collect_monitor(registry, self.make_monitor())
        flat = registry.as_flat_dict()
        assert flat["monitor_histogram_count{histogram=first_word_latency}"] == 4
        assert flat["monitor_histogram_mean{histogram=first_word_latency}"] == 9.5
        assert flat["monitor_histogram_p90{histogram=first_word_latency}"] == 13
        assert flat["monitor_histogram_max{histogram=first_word_latency}"] == 13
        assert flat["monitor_histogram_count{histogram=interarrival}"] == 0
        assert "monitor_histogram_mean{histogram=interarrival}" not in flat
        assert flat["monitor_tracer_events{tracer=software}"] == 1
        assert flat["monitor_tracer_dropped{tracer=software}"] == 0

    def test_extra_labels_are_applied(self):
        registry = MetricsRegistry()
        collect_monitor(registry, self.make_monitor(), {"monitor": "0"})
        flat = registry.as_flat_dict()
        assert (
            "monitor_histogram_count"
            "{histogram=first_word_latency,monitor=0}" in flat
        )


class TestMonitorCatcher:
    def test_catches_connects_even_when_recording_disabled(self):
        bus = Tracer(enabled=False)
        catcher = MonitorCatcher(bus)
        monitor = PerformanceMonitor(DEFAULT_CONFIG.monitor)
        monitor.connect(bus)
        assert catcher.monitors == [monitor]

    def test_collects_each_caught_monitor_with_index_label(self):
        bus = Tracer(enabled=False)
        catcher = MonitorCatcher(bus)
        for _ in range(2):
            monitor = PerformanceMonitor(DEFAULT_CONFIG.monitor)
            monitor.connect(bus)
            monitor.histogram("first_word_latency").record(8)
        registry = MetricsRegistry()
        assert catcher.collect_into(registry) == 2
        flat = registry.as_flat_dict()
        assert (
            flat["monitor_histogram_count{histogram=first_word_latency,monitor=0}"]
            == 1
        )
        assert (
            flat["monitor_histogram_count{histogram=first_word_latency,monitor=1}"]
            == 1
        )

    def test_ignores_non_monitor_payloads(self):
        bus = Tracer(enabled=False)
        catcher = MonitorCatcher(bus)
        bus.publish(PerformanceMonitor.CONNECTED_SIGNAL, "not a monitor")
        assert catcher.monitors == []

    def test_table2_signals_still_reach_histograms(self):
        """Connecting through the catcher's bus must not disturb Table 2."""
        bus = Tracer(enabled=False)
        MonitorCatcher(bus)
        monitor = PerformanceMonitor(DEFAULT_CONFIG.monitor)
        monitor.connect(bus)
        bus.publish(PerformanceMonitor.FIRST_WORD_SIGNAL, 8)
        assert monitor.histogram("first_word_latency").total == 1
