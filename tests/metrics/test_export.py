"""Tests for the Prometheus/JSONL exporters (repro.metrics.export)."""

import json

import pytest

from repro.errors import MetricsError
from repro.metrics import (
    MetricsRegistry,
    jsonl_lines,
    parse_prometheus,
    prometheus_text,
    write_jsonl,
)


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter(
        "sim_counter_total",
        {"component": "memory.m00", "counter": "requests_served"},
        help="trace-bus counter totals",
    ).inc(684656)
    registry.gauge("mflops", {"version": "GM/cache"}).set(208.2)
    registry.gauge("mflops", {"version": "GM/pref"}).set(92.2)
    histogram = registry.histogram("first_word_latency", help="Table 2")
    for value in (8, 8, 9, 13, 27):
        histogram.observe(value)
    return registry


class TestPrometheusRoundTrip:
    def test_every_series_round_trips(self):
        registry = populated_registry()
        samples = parse_prometheus(prometheus_text(registry))
        assert (
            samples[
                "sim_counter_total{component=memory.m00,counter=requests_served}"
            ]
            == 684656
        )
        assert samples["mflops{version=GM/cache}"] == 208.2
        assert samples["mflops{version=GM/pref}"] == 92.2
        # histogram: cumulative buckets, sum, count
        assert samples["first_word_latency_count"] == 5
        assert samples["first_word_latency_sum"] == 65
        assert samples["first_word_latency_bucket{le=+Inf}"] == 5
        # 8, 8, 9, 13 in [8, 16); 27 in [16, 32)
        assert samples["first_word_latency_bucket{le=16}"] == 4
        assert samples["first_word_latency_bucket{le=32}"] == 5

    def test_help_and_type_lines_present(self):
        text = prometheus_text(populated_registry())
        assert "# HELP sim_counter_total trace-bus counter totals" in text
        assert "# TYPE sim_counter_total counter" in text
        assert "# TYPE mflops gauge" in text
        assert "# TYPE first_word_latency histogram" in text

    def test_counter_total_suffix_not_doubled(self):
        registry = MetricsRegistry()
        registry.counter("events_total").inc(3)
        text = prometheus_text(registry)
        assert "events_total 3" in text
        assert "events_total_total" not in text

    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        registry.gauge("g", {"path": 'a"b\\c'}).set(1)
        samples = parse_prometheus(prometheus_text(registry))
        assert samples == {'g{path=a"b\\c}': 1.0}

    def test_empty_registry(self):
        assert prometheus_text(MetricsRegistry()) == ""
        assert parse_prometheus("") == {}

    def test_parser_rejects_garbage(self):
        with pytest.raises(MetricsError, match="unparseable"):
            parse_prometheus("not a metric line at all!")
        with pytest.raises(MetricsError, match="value"):
            parse_prometheus("metric_name not_a_number")


class TestHostileLabelValues:
    """Round trips for label values an external submitter controls.

    `GET /metrics` on the serve tier exposes request-supplied strings as
    label values, so the exporter/parser pair must survive anything a
    client can put in a JSON string -- not just the polite values the
    simulator generates itself.
    """

    HOSTILE = [
        "line1\nline2",            # embedded newline
        "\n",                      # newline only
        "back\\slash",             # lone backslash
        "\\n",                     # backslash followed by n (not a newline!)
        "\\\\n",                   # two backslashes then n
        'quote"inside',            # double quote
        '"',                       # quote only
        "",                        # empty value
        "trailing\\",              # trailing backslash
        'mix"\\\n"end',            # everything at once
        "a}b{c",                   # braces (never escaped by the format)
        "comma,equals=x",          # label-syntax lookalikes
        "café ☃",        # non-ASCII survives utf-8 round trip
    ]

    def test_each_hostile_value_round_trips(self):
        for value in self.HOSTILE:
            registry = MetricsRegistry()
            registry.gauge("g", {"v": value}).set(1.5)
            samples = parse_prometheus(prometheus_text(registry))
            assert samples == {"g{v=" + value + "}": 1.5}, repr(value)

    def test_all_hostile_values_in_one_exposition(self):
        registry = MetricsRegistry()
        for index, value in enumerate(self.HOSTILE):
            registry.counter(
                "hostile_total", {"v": value, "i": str(index)}
            ).inc(index + 1)
        samples = parse_prometheus(prometheus_text(registry))
        assert len(samples) == len(self.HOSTILE)
        assert sum(samples.values()) == sum(
            index + 1 for index in range(len(self.HOSTILE))
        )

    def test_backslash_n_distinct_from_newline(self):
        # The literal two-character sequence and a real newline must not
        # collapse to the same series after a round trip.
        registry = MetricsRegistry()
        registry.gauge("g", {"v": "\\n"}).set(1)
        registry.gauge("g", {"v": "\n"}).set(2)
        samples = parse_prometheus(prometheus_text(registry))
        assert samples["g{v=\\n}"] == 1
        assert samples["g{v=\n}"] == 2

    def test_hostile_values_in_histogram_labels(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", {"cfg": 'a"\\\nz'})
        for value in (1, 2, 4):
            histogram.observe(value)
        samples = parse_prometheus(prometheus_text(registry))
        assert samples['lat_count{cfg=a"\\\nz}'] == 3
        assert samples['lat_sum{cfg=a"\\\nz}'] == 7


class TestJsonl:
    def test_lines_are_self_describing_json(self):
        registry = populated_registry()
        records = [json.loads(line) for line in jsonl_lines(registry)]
        kinds = {(r["kind"], r["name"]) for r in records}
        assert ("counter", "sim_counter_total") in kinds
        assert ("gauge", "mflops") in kinds
        assert ("histogram", "first_word_latency") in kinds
        histogram = next(r for r in records if r["kind"] == "histogram")
        assert histogram["count"] == 5
        assert histogram["buckets"] == {"16": 4, "32": 1}

    def test_write_jsonl(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        count = write_jsonl(populated_registry(), str(path))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == count == 4
        for line in lines:
            json.loads(line)
