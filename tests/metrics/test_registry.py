"""Tests for the metrics registry (repro.metrics.registry)."""

import math

import pytest

from repro.errors import MetricsError
from repro.metrics import MetricsRegistry, flat_series_name
from repro.metrics.registry import canonical_labels


class TestNamesAndLabels:
    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        for bad in ("", "9lives", "has space", "dash-ed", "perc%"):
            with pytest.raises(MetricsError):
                registry.counter(bad)

    def test_valid_names_accepted(self):
        registry = MetricsRegistry()
        for good in ("a", "_lead", "ns:sub", "x9", "sim_busy_cycles"):
            registry.gauge(good)
        assert len(registry) == 5

    def test_labels_are_canonicalized(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", {"b": 2, "a": 1})
        b = registry.counter("hits", {"a": "1", "b": "2"})
        assert a is b
        assert a.labels == (("a", "1"), ("b", "2"))

    def test_distinct_labels_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("hits", {"ce": 0}).inc()
        registry.counter("hits", {"ce": 1}).inc(5)
        assert registry.counter("hits", {"ce": 0}).value == 1
        assert registry.counter("hits", {"ce": 1}).value == 5
        assert len(registry.series("hits")) == 2

    def test_kind_clash_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricsError, match="already registered"):
            registry.gauge("x")

    def test_canonical_labels_empty(self):
        assert canonical_labels(None) == ()
        assert canonical_labels({}) == ()

    def test_flat_series_name(self):
        assert flat_series_name("m", ()) == "m"
        assert flat_series_name("m", (("a", "1"),)) == "m{a=1}"


class TestCounter:
    def test_accumulates(self):
        counter = MetricsRegistry().counter("events")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_decrease(self):
        counter = MetricsRegistry().counter("events")
        with pytest.raises(MetricsError, match="cannot decrease"):
            counter.inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        gauge = MetricsRegistry().gauge("mflops")
        gauge.set(10)
        gauge.set(7.5)
        assert gauge.value == 7.5

    def test_add(self):
        gauge = MetricsRegistry().gauge("level")
        gauge.add(3)
        gauge.add(-1)
        assert gauge.value == 2

    def test_rejects_non_finite(self):
        gauge = MetricsRegistry().gauge("bad")
        for value in (math.nan, math.inf, -math.inf):
            with pytest.raises(MetricsError, match="non-finite"):
                gauge.set(value)


class TestHistogram:
    def test_log_bucket_edges(self):
        histogram = MetricsRegistry().histogram("latency")
        # base 2: bucket i covers [2**i, 2**(i+1))
        assert histogram.bucket_index(1) == 0
        assert histogram.bucket_index(2) == 1
        assert histogram.bucket_index(3) == 1
        assert histogram.bucket_index(4) == 2
        assert histogram.bucket_index(1023) == 9
        assert histogram.bucket_index(1024) == 10

    def test_underflow_bucket(self):
        histogram = MetricsRegistry().histogram("latency")
        histogram.observe(0)
        histogram.observe(0.5)
        assert histogram.buckets == {-1: 2}
        assert histogram.bucket_upper_bound(-1) == 1.0

    def test_exact_aggregates(self):
        histogram = MetricsRegistry().histogram("latency")
        for value in (8, 9, 27, 0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == 44
        assert histogram.min == 0
        assert histogram.max == 27
        assert histogram.mean() == 11.0

    def test_negative_rejected(self):
        histogram = MetricsRegistry().histogram("latency")
        with pytest.raises(MetricsError, match="negative"):
            histogram.observe(-1)

    def test_empty_mean_and_quantile_raise(self):
        histogram = MetricsRegistry().histogram("latency")
        with pytest.raises(MetricsError, match="empty"):
            histogram.mean()
        with pytest.raises(MetricsError, match="empty"):
            histogram.quantile(0.5)

    def test_quantile_is_bucket_upper_bound(self):
        histogram = MetricsRegistry().histogram("latency")
        for value in (1, 1, 1, 1, 1, 1, 1, 1, 1, 100):
            histogram.observe(value)
        assert histogram.quantile(0.9) == 2.0  # nine of ten in [1, 2)
        assert histogram.quantile(1.0) == 128.0  # 100 in [64, 128)

    def test_bad_base_and_fraction(self):
        with pytest.raises(MetricsError, match="base"):
            from repro.metrics.registry import Histogram

            Histogram("h", base=1.0)
        histogram = MetricsRegistry().histogram("ok")
        histogram.observe(1)
        for fraction in (0, -0.1, 1.1):
            with pytest.raises(MetricsError, match="fraction"):
                histogram.quantile(fraction)


class TestFlatDict:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.counter("events", {"ce": 3}).inc(7)
        registry.gauge("mflops").set(52.2)
        histogram = registry.histogram("lat")
        histogram.observe(8)
        histogram.observe(16)
        flat = registry.as_flat_dict()
        assert flat["events{ce=3}"] == 7
        assert flat["mflops"] == 52.2
        assert flat["lat_count"] == 2
        assert flat["lat_sum"] == 24
        assert flat["lat_min"] == 8
        assert flat["lat_max"] == 16
        assert flat["lat_mean"] == 12

    def test_empty_histogram_has_no_min_max(self):
        registry = MetricsRegistry()
        registry.histogram("lat")
        flat = registry.as_flat_dict()
        assert flat == {"lat_count": 0, "lat_sum": 0.0}

    def test_iteration_is_deterministic(self):
        registry = MetricsRegistry()
        registry.gauge("z")
        registry.gauge("a", {"k": 2})
        registry.gauge("a", {"k": 1})
        assert [
            (i.name, i.labels) for i in registry
        ] == [
            ("a", (("k", "1"),)),
            ("a", (("k", "2"),)),
            ("z", ()),
        ]
