"""Tests for bench snapshots and regression detection (repro.metrics.bench)."""

import json

import pytest

from repro.cli import main
from repro.errors import BenchError
from repro.metrics import bench


def make_snapshot(index, fidelity=None, machine=None, profile=None, key="table6"):
    """Hand-build a minimal schema-valid snapshot for comparison tests."""
    return {
        "schema": bench.SCHEMA,
        "schema_version": bench.SCHEMA_VERSION,
        "snapshot": index,
        "traced": True,
        "experiments": {
            key: {
                "description": "test experiment",
                "fidelity": [
                    {"name": name, "value": value, "unit": "", "target": None}
                    for name, value in (fidelity or {}).items()
                ],
                "machine": dict(machine or {}),
                "self_profile": dict(profile or {}),
            }
        },
    }


class TestCompare:
    def test_identical_snapshots_clean(self):
        snapshot = make_snapshot(
            0,
            fidelity={"speedup": 1.8},
            machine={"sim_wall_cycles": 12345},
            profile={"wall_seconds": 2.0, "events_per_sec": 1e6},
        )
        report = bench.compare_snapshots(snapshot, make_snapshot(1, **{
            "fidelity": {"speedup": 1.8},
            "machine": {"sim_wall_cycles": 12345},
            "profile": {"wall_seconds": 2.0, "events_per_sec": 1e6},
        }))
        assert report.compared == 4
        assert report.findings == []
        assert report.ok
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 0
        assert "no drift beyond tolerance" in report.render()

    def test_exact_boundary_passes_just_above_fails(self):
        # tolerance is inclusive: |rel change| == tol is OK
        base = make_snapshot(0, fidelity={"m": 100.0})
        at_boundary = make_snapshot(1, fidelity={"m": 110.0})
        report = bench.compare_snapshots(
            base, at_boundary, tolerances={"fidelity": 0.1}
        )
        assert report.findings == []
        above = make_snapshot(1, fidelity={"m": 110.0 + 1e-6})
        report = bench.compare_snapshots(base, above, tolerances={"fidelity": 0.1})
        assert [f.severity for f in report.findings] == ["fail"]

    def test_fidelity_drift_hard_fails(self):
        base = make_snapshot(0, fidelity={"speedup": 1.8})
        drifted = make_snapshot(1, fidelity={"speedup": 1.7})
        report = bench.compare_snapshots(base, drifted)
        assert len(report.failures) == 1
        finding = report.failures[0]
        assert finding.metric_class == "fidelity"
        assert finding.experiment == "table6"
        assert finding.rel_change == pytest.approx(-1 / 18)
        assert not report.ok
        assert report.exit_code() == 1
        assert "FAIL" in report.render()

    def test_machine_drift_fails(self):
        base = make_snapshot(0, machine={"sim_busy_cycles{component=sp}": 1000})
        drifted = make_snapshot(1, machine={"sim_busy_cycles{component=sp}": 1001})
        report = bench.compare_snapshots(base, drifted)
        assert [f.metric_class for f in report.failures] == ["machine"]
        assert report.exit_code() == 1

    def test_slowdown_warns_and_strict_exits_3(self):
        base = make_snapshot(0, profile={"wall_seconds": 1.0})
        slower = make_snapshot(1, profile={"wall_seconds": 2.0})  # 100% > 50%
        report = bench.compare_snapshots(base, slower)
        assert report.failures == []
        assert [f.severity for f in report.findings] == ["warn"]
        assert report.ok  # warnings alone do not fail ...
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 3  # ... unless strict

    def test_speedup_is_informational(self):
        # direction-aware: less wall time / more events per second is fine
        base = make_snapshot(
            0, profile={"wall_seconds": 2.0, "events_per_sec": 1e6}
        )
        faster = make_snapshot(
            1, profile={"wall_seconds": 0.5, "events_per_sec": 4e6}
        )
        report = bench.compare_snapshots(base, faster)
        assert report.warnings == []
        assert {f.severity for f in report.findings} == {"info"}
        assert report.exit_code(strict=True) == 0

    def test_uncompared_profile_series_are_ignored(self):
        # component_busy_share etc. are not in the direction map: no findings
        base = make_snapshot(0, profile={"events_processed": 100})
        current = make_snapshot(1, profile={"events_processed": 900})
        report = bench.compare_snapshots(base, current)
        assert report.compared == 0
        assert report.findings == []

    def test_one_sided_metric_is_informational(self):
        base = make_snapshot(0, fidelity={"old_metric": 1.0})
        current = make_snapshot(1, fidelity={"new_metric": 2.0})
        report = bench.compare_snapshots(base, current)
        assert report.failures == []
        severities = {f.metric: f.severity for f in report.findings}
        assert severities == {"old_metric": "info", "new_metric": "info"}
        rendered = report.render()
        assert "metric disappeared" in rendered
        assert "new metric" in rendered

    def test_only_common_experiments_compared(self):
        # a --quick run diffs cleanly against a full baseline
        base = make_snapshot(0, fidelity={"m": 1.0}, key="table1")
        current = make_snapshot(1, fidelity={"m": 999.0}, key="table6")
        report = bench.compare_snapshots(base, current)
        assert report.compared == 0
        assert report.findings == []

    def test_tolerance_override(self):
        base = make_snapshot(0, machine={"m": 100.0})
        current = make_snapshot(1, machine={"m": 101.0})
        relaxed = bench.compare_snapshots(
            base, current, tolerances={"machine": 0.05}
        )
        assert relaxed.findings == []
        strict = bench.compare_snapshots(base, current)
        assert len(strict.failures) == 1


class TestSnapshotFiles:
    def test_numbering_and_latest(self, tmp_path):
        assert bench.existing_snapshots(str(tmp_path)) == []
        assert bench.latest_snapshot_path(str(tmp_path)) is None
        assert bench.next_snapshot_index(str(tmp_path)) == 0
        for index in (0, 2, 10):
            bench.save_snapshot(make_snapshot(index), str(tmp_path / f"BENCH_{index}.json"))
        (tmp_path / "BENCH_x.json").write_text("{}")  # not a snapshot name
        snapshots = bench.existing_snapshots(str(tmp_path))
        assert [index for index, _ in snapshots] == [0, 2, 10]
        assert bench.latest_snapshot_path(str(tmp_path)).endswith("BENCH_10.json")
        assert bench.next_snapshot_index(str(tmp_path)) == 11

    def test_missing_directory(self, tmp_path):
        with pytest.raises(BenchError, match="does not exist"):
            bench.existing_snapshots(str(tmp_path / "nope"))

    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "BENCH_0.json")
        snapshot = make_snapshot(0, fidelity={"m": 1.5})
        bench.save_snapshot(snapshot, path)
        assert bench.load_snapshot(path) == snapshot

    def test_load_rejects_bad_files(self, tmp_path):
        garbage = tmp_path / "garbage.json"
        garbage.write_text("not json")
        with pytest.raises(BenchError, match="cannot load"):
            bench.load_snapshot(str(garbage))
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"schema": "something-else"}))
        with pytest.raises(BenchError, match="not a cedar-repro-bench"):
            bench.load_snapshot(str(wrong))
        future = tmp_path / "future.json"
        future.write_text(
            json.dumps({"schema": bench.SCHEMA, "schema_version": 999})
        )
        with pytest.raises(BenchError, match="schema version"):
            bench.load_snapshot(str(future))


class TestBenchExperiment:
    def test_sections_present(self):
        section = bench.bench_experiment("table6")
        assert section["description"]
        assert section["fidelity"], "experiment must declare headline metrics"
        for metric in section["fidelity"]:
            assert set(metric) >= {"name", "value", "unit", "target"}
        assert section["machine"], "traced run must drain machine series"
        profile = section["self_profile"]
        assert profile["wall_seconds"] > 0

    def test_untraced_run_still_has_fidelity(self):
        # the registry must not require a recording tracer
        section = bench.bench_experiment("table6", trace=False)
        assert section["fidelity"]
        assert section["machine"] == {}
        assert list(section["self_profile"]) == ["wall_seconds"]

    def test_deterministic_fidelity_and_machine(self):
        first = bench.bench_experiment("table6")
        second = bench.bench_experiment("table6")
        assert first["fidelity"] == second["fidelity"]
        assert first["machine"] == second["machine"]

    def test_build_snapshot_document(self):
        seen = []
        snapshot = bench.build_snapshot(
            ["table6"], 7, trace=False, progress=seen.append
        )
        assert seen == ["table6"]
        assert snapshot["schema"] == bench.SCHEMA
        assert snapshot["schema_version"] == bench.SCHEMA_VERSION
        assert snapshot["snapshot"] == 7
        assert snapshot["traced"] is False
        assert list(snapshot["experiments"]) == ["table6"]

    def test_parallel_build_snapshot_merges_in_key_order(self):
        seen = []
        keys = ["table6", "table5", "figure3"]  # deliberately unsorted
        snapshot = bench.build_snapshot(
            keys, 3, trace=False, progress=seen.append, jobs=3
        )
        assert sorted(seen) == sorted(keys)  # progress is completion-order
        assert list(snapshot["experiments"]) == keys  # sections are key-order
        sequential = bench.build_snapshot(keys, 3, trace=False, jobs=1)
        for doc in (snapshot, sequential):
            for section in doc["experiments"].values():
                section.pop("self_profile", None)
        assert snapshot == sequential

    def test_single_key_ignores_jobs(self):
        snapshot = bench.build_snapshot(["table6"], 0, trace=False, jobs=8)
        assert list(snapshot["experiments"]) == ["table6"]


class TestBenchCli:
    def run_bench(self, tmp_path, *extra):
        return main(["bench", "table6", "--dir", str(tmp_path), *extra])

    def test_first_run_records_then_second_is_clean(self, tmp_path, capsys):
        assert self.run_bench(tmp_path) == 0
        captured = capsys.readouterr()
        assert "no baseline snapshot" in captured.err
        assert (tmp_path / "BENCH_0.json").exists()

        assert self.run_bench(tmp_path) == 0
        captured = capsys.readouterr()
        assert "BENCH_0.json" in captured.err  # picked up as baseline
        assert (tmp_path / "BENCH_1.json").exists()
        assert "0 failure(s), 0 warning(s)" in captured.out

    def test_tampered_baseline_fails_with_exit_1(self, tmp_path, capsys):
        assert self.run_bench(tmp_path) == 0
        path = tmp_path / "BENCH_0.json"
        snapshot = json.loads(path.read_text())
        metric = snapshot["experiments"]["table6"]["fidelity"][0]
        metric["value"] = float(metric["value"]) * 1.5  # inject fidelity drift
        path.write_text(json.dumps(snapshot))
        capsys.readouterr()
        assert self.run_bench(tmp_path) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_keys_and_quick_conflict(self, tmp_path, capsys):
        assert self.run_bench(tmp_path, "--quick") == 2
        assert "not both" in capsys.readouterr().err

    def test_unknown_experiment(self, tmp_path, capsys):
        assert main(["bench", "table99", "--dir", str(tmp_path)]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_missing_dir_is_usage_error(self, tmp_path, capsys):
        missing = str(tmp_path / "nope")
        assert main(["bench", "table6", "--dir", missing]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_baseline_none_skips_comparison(self, tmp_path, capsys):
        assert self.run_bench(tmp_path) == 0
        capsys.readouterr()
        assert self.run_bench(tmp_path, "--baseline", "none") == 0
        captured = capsys.readouterr()
        assert "baseline" not in captured.err
        assert "Regression report" not in captured.out

    def test_explicit_out_path(self, tmp_path, capsys):
        out = tmp_path / "custom.json"
        assert self.run_bench(tmp_path, "--out", str(out)) == 0
        assert out.exists()
        loaded = bench.load_snapshot(str(out))
        assert list(loaded["experiments"]) == ["table6"]
