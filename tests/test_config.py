"""Tests for the machine configuration."""

import pytest

from repro.config import (
    CE_CYCLE_SECONDS,
    CE_PEAK_MFLOPS,
    CedarConfig,
    DEFAULT_CONFIG,
)


class TestPaperParameters:
    """Every Section 2 number the configuration encodes."""

    def test_machine_shape(self):
        assert DEFAULT_CONFIG.num_clusters == 4
        assert DEFAULT_CONFIG.ces_per_cluster == 8
        assert DEFAULT_CONFIG.num_ces == 32

    def test_cycle_time_170ns(self):
        assert CE_CYCLE_SECONDS == pytest.approx(170e-9)

    def test_peak_mflops(self):
        assert CE_PEAK_MFLOPS == 11.8
        assert DEFAULT_CONFIG.peak_mflops == pytest.approx(377.6)

    def test_effective_peak_274(self):
        assert DEFAULT_CONFIG.effective_peak_mflops == pytest.approx(274.6, abs=1.0)

    def test_cluster_memory_32mb_cache_512kb(self):
        assert DEFAULT_CONFIG.cluster_memory.size_bytes == 32 * 2**20
        assert DEFAULT_CONFIG.cache.size_bytes == 512 * 2**10
        assert DEFAULT_CONFIG.cache.line_bytes == 32

    def test_global_memory_64mb_double_word_interleaved(self):
        assert DEFAULT_CONFIG.global_memory.size_bytes == 64 * 2**20
        assert DEFAULT_CONFIG.global_memory.interleave_bytes == 8

    def test_vector_registers_eight_by_32(self):
        assert DEFAULT_CONFIG.vector.num_registers == 8
        assert DEFAULT_CONFIG.vector.register_length == 32

    def test_prefetch_buffer_512_words(self):
        assert DEFAULT_CONFIG.prefetch.buffer_words == 512
        assert DEFAULT_CONFIG.prefetch.max_outstanding == 512
        assert DEFAULT_CONFIG.prefetch.compiler_block_words == 32

    def test_page_size_4kb(self):
        assert DEFAULT_CONFIG.vm.page_bytes == 4096
        assert DEFAULT_CONFIG.prefetch.page_bytes == 4096

    def test_loop_costs(self):
        assert DEFAULT_CONFIG.sync.xdoall_startup_seconds == pytest.approx(90e-6)
        assert DEFAULT_CONFIG.sync.xdoall_iteration_fetch_seconds == pytest.approx(30e-6)

    def test_monitor_capacities(self):
        assert DEFAULT_CONFIG.monitor.tracer_capacity_events == 1_000_000
        assert DEFAULT_CONFIG.monitor.histogrammer_counters == 64 * 1024

    def test_network_two_stages_for_32_ports(self):
        assert DEFAULT_CONFIG.network_stages == 2
        assert DEFAULT_CONFIG.network.switch_radix == 8
        assert DEFAULT_CONFIG.network.port_queue_words == 2


class TestDerivedHelpers:
    def test_with_clusters(self):
        one = DEFAULT_CONFIG.with_clusters(1)
        assert one.num_ces == 8
        assert DEFAULT_CONFIG.num_clusters == 4  # original frozen

    def test_with_clusters_validation(self):
        with pytest.raises(ValueError):
            DEFAULT_CONFIG.with_clusters(0)

    def test_time_conversions_roundtrip(self):
        cycles = 12345
        seconds = DEFAULT_CONFIG.cycles_to_seconds(cycles)
        assert DEFAULT_CONFIG.seconds_to_cycles(seconds) == pytest.approx(cycles)

    def test_three_stages_past_64_ports(self):
        import dataclasses
        big = dataclasses.replace(
            DEFAULT_CONFIG.with_clusters(16),
            global_memory=dataclasses.replace(
                DEFAULT_CONFIG.global_memory, num_modules=128
            ),
        )
        assert big.network_stages == 3
