"""Tests for the Fortran-subset front end."""

import pytest

from repro.compiler import CedarRestructurer, KapCompiler
from repro.compiler.frontend import parse_affine, parse_nest
from repro.compiler.ir import ArrayRef, ScalarRef
from repro.errors import CompilerError


class TestAffineParsing:
    def test_simple_variable(self):
        expr = parse_affine("I")
        assert expr.coefficient("I") == 1
        assert expr.constant == 0

    def test_full_expression(self):
        expr = parse_affine("2*I + J - 3")
        assert expr.coefficient("I") == 2
        assert expr.coefficient("J") == 1
        assert expr.constant == -3

    def test_coefficient_on_either_side(self):
        assert parse_affine("I*4").coefficient("I") == 4

    def test_constant_only(self):
        assert parse_affine("42").constant == 42

    def test_nonaffine_rejected(self):
        with pytest.raises(CompilerError):
            parse_affine("I*J")

    def test_garbage_rejected(self):
        with pytest.raises(CompilerError):
            parse_affine("I(")


class TestNestParsing:
    def test_labelled_continue_form(self):
        nest = parse_nest(
            """
            DO 10 I = 1, 100
               B(I) = A(I)
         10 CONTINUE
            """
        )
        assert nest.root.index == "I"
        assert nest.trip_count() == 100
        (statement,) = list(nest.root.statements())
        assert statement.lhs.array == "B"

    def test_end_do_form(self):
        nest = parse_nest(
            """
            DO I = 1, 64, 2
               B(I) = A(I)
            END DO
            """
        )
        assert nest.root.step == 2
        assert nest.trip_count() == 32

    def test_nested_loops(self):
        nest = parse_nest(
            """
            DO 20 J = 1, 8
               DO 10 I = 1, 16
                  U(I, J) = V(I, J)
         10    CONTINUE
         20 CONTINUE
            """
        )
        inner = list(nest.root.inner_loops())
        assert len(inner) == 1
        assert inner[0].trip_count() == 16

    def test_symbolic_bound(self):
        nest = parse_nest("DO I = 1, N\n  B(I) = A(I)\nEND DO",
                          symbols={"N": 77})
        assert nest.trip_count() == 77

    def test_reduction_detected(self):
        nest = parse_nest(
            "DO I = 1, 10\n  S = S + A(I)\nEND DO"
        )
        (statement,) = list(nest.root.statements())
        assert statement.reduction_op == "+"
        assert statement.increment is None

    def test_induction_increment_detected(self):
        nest = parse_nest(
            "DO I = 1, 10\n  K = K + 3\n  C(K) = A(I)\nEND DO"
        )
        update = next(iter(nest.root.statements()))
        assert update.increment == 3

    def test_comments_and_blanks_ignored(self):
        nest = parse_nest(
            """
            ! a comment
            DO I = 1, 4

               B(I) = A(I)   ! trailing comment
            END DO
            """
        )
        assert nest.trip_count() == 4

    def test_unterminated_loop_rejected(self):
        with pytest.raises(CompilerError):
            parse_nest("DO I = 1, 4\n  B(I) = A(I)")

    def test_unsupported_statement_rejected(self):
        with pytest.raises(CompilerError):
            parse_nest("DO I = 1, 4\n  GOTO 10\nEND DO")

    def test_multiple_top_level_nests_rejected(self):
        with pytest.raises(CompilerError):
            parse_nest(
                "DO I = 1, 4\n B(I) = A(I)\nEND DO\n"
                "DO J = 1, 4\n C(J) = A(J)\nEND DO"
            )


class TestEndToEnd:
    def test_source_through_both_compilers(self):
        source = """
        DO 10 I = 1, 1000
           T = A(I)
           S = S + T * T
           B(I) = T
     10 CONTINUE
        """
        nest = parse_nest(source, "pair-sum")
        assert not KapCompiler().compile(nest).parallelized
        report = CedarRestructurer().compile(nest)
        assert report.parallelized
        applied = " ".join(report.applied)
        assert "privatization(T)" in applied
        assert "reductions(S)" in applied

    def test_recurrence_from_source_stays_serial(self):
        nest = parse_nest(
            "DO I = 2, 100\n  X(I) = X(I-1)\nEND DO", "recurrence"
        )
        assert not CedarRestructurer().compile(nest).parallelized
