"""Tests for the dependence analysis (ZIV, SIV/GCD, Banerjee)."""

import pytest

from repro.compiler.dependence import (
    DependenceKind,
    find_dependences,
    loop_carried_dependences,
)
from repro.compiler.ir import (
    ArrayRef,
    Assignment,
    Loop,
    ScalarRef,
    const,
    var,
)

I = var("i")


def loop_with(*statements, lower=1, upper=100):
    return Loop("i", const(lower), const(upper), body=tuple(statements))


class TestIndependentLoops:
    def test_disjoint_arrays_have_no_dependence(self):
        loop = loop_with(
            Assignment(lhs=ArrayRef("a", (I,), True),
                       reads=(ArrayRef("b", (I,)),)),
        )
        assert loop_carried_dependences(loop) == []

    def test_same_index_read_write_is_loop_independent(self):
        loop = loop_with(
            Assignment(lhs=ArrayRef("a", (I,), True),
                       reads=(ArrayRef("a", (I,)),)),
        )
        carried = loop_carried_dependences(loop)
        assert carried == []
        all_deps = find_dependences(loop)
        assert any(d.distance == 0 for d in all_deps)


class TestCarriedDependences:
    def test_classic_recurrence_distance_one(self):
        loop = loop_with(
            Assignment(lhs=ArrayRef("x", (I,), True),
                       reads=(ArrayRef("x", (I - 1,)),)),
        )
        carried = loop_carried_dependences(loop)
        assert carried
        assert any(abs(d.distance) == 1 for d in carried if d.distance)

    def test_distance_beyond_trip_count_is_no_dependence(self):
        loop = loop_with(
            Assignment(lhs=ArrayRef("x", (I,), True),
                       reads=(ArrayRef("x", (I - 200,)),)),
            upper=100,
        )
        assert loop_carried_dependences(loop) == []

    def test_gcd_disproof(self):
        # x(2i) = x(2i' + 1): 2i - 2i' = 1 has no integer solution.
        loop = loop_with(
            Assignment(lhs=ArrayRef("x", (2 * I,), True),
                       reads=(ArrayRef("x", (2 * I + 1,)),)),
        )
        assert loop_carried_dependences(loop) == []

    def test_banerjee_range_disproof(self):
        # a(i) = a(i + 1000) within 1..100 never overlaps... handled by
        # strong SIV distance; use coupled coefficients for the bound test:
        # a(2i) vs a(i + 300): 2i - i' = 300 with i,i' in 1..100 -> max 2*100
        # - 1 = 199 < 300: impossible.
        loop = loop_with(
            Assignment(lhs=ArrayRef("a", (2 * I,), True),
                       reads=(ArrayRef("a", (I + 300,)),)),
        )
        assert loop_carried_dependences(loop) == []

    def test_coupled_coefficients_conservative_when_feasible(self):
        # a(2i) vs a(i): overlap possible (e.g. i=2, i'=4).
        loop = loop_with(
            Assignment(lhs=ArrayRef("a", (2 * I,), True),
                       reads=(ArrayRef("a", (I,)),)),
        )
        assert loop_carried_dependences(loop)


class TestScalarsAndSymbols:
    def test_scalar_write_blocks(self):
        loop = loop_with(
            Assignment(lhs=ScalarRef("t", True), reads=(ArrayRef("a", (I,)),)),
        )
        carried = loop_carried_dependences(loop)
        assert carried
        assert carried[0].variable == "t"

    def test_symbolic_subscript_assumed_dependent(self):
        m = var("m")
        loop = loop_with(
            Assignment(lhs=ArrayRef("x", (I + m,), True),
                       reads=(ArrayRef("x", (I,)),)),
        )
        carried = loop_carried_dependences(loop)
        assert carried
        assert all(d.distance is None for d in carried)

    def test_symbolic_resolved_by_symbols(self):
        m = var("m")
        loop = loop_with(
            Assignment(lhs=ArrayRef("x", (I + m,), True),
                       reads=(ArrayRef("x", (I,)),)),
            upper=50,
        )
        # With m = 1000 the references never overlap in 1..50.
        assert loop_carried_dependences(loop, {"m": 1000}) == []


class TestKinds:
    def test_output_dependence(self):
        loop = loop_with(
            Assignment(lhs=ArrayRef("a", (const(5),), True)),
        )
        # Single write to a loop-invariant location: output dep with itself.
        deps = find_dependences(loop)
        assert any(d.kind is DependenceKind.OUTPUT for d in deps)

    def test_multidimensional_inconsistent_distances(self):
        # b(i, i) = b(i-1, i-2): dim distances 1 and 2 conflict -> no dep.
        loop = loop_with(
            Assignment(lhs=ArrayRef("b", (I, I), True),
                       reads=(ArrayRef("b", (I - 1, I - 2)),)),
        )
        assert loop_carried_dependences(loop) == []

    def test_rank_mismatch_rejected(self):
        loop = loop_with(
            Assignment(lhs=ArrayRef("b", (I,), True),
                       reads=(ArrayRef("b", (I, I)),)),
        )
        with pytest.raises(ValueError):
            find_dependences(loop)
