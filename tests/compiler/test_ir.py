"""Tests for the affine loop-nest IR."""

import pytest
from hypothesis import given, strategies as st

from repro.compiler.ir import (
    AffineExpr,
    ArrayRef,
    Assignment,
    Loop,
    LoopNest,
    ScalarRef,
    const,
    var,
)
from repro.errors import CompilerError


class TestAffineAlgebra:
    def test_addition_merges_coefficients(self):
        expr = var("i") + var("i") + 3
        assert expr.coefficient("i") == 2
        assert expr.constant == 3

    def test_subtraction_cancels(self):
        expr = (var("i") + 5) - var("i")
        assert expr.is_constant
        assert expr.constant == 5

    def test_scalar_multiplication(self):
        expr = (var("i") + 2) * 3
        assert expr.coefficient("i") == 3
        assert expr.constant == 6

    def test_right_operators(self):
        assert (2 + var("i")).constant == 2
        assert (2 * var("i")).coefficient("i") == 2
        assert (10 - var("i")).coefficient("i") == -1

    def test_non_integer_scale_rejected(self):
        with pytest.raises(CompilerError):
            var("i") * 1.5  # type: ignore[operator]

    def test_substitute(self):
        expr = 2 * var("k") + var("i")
        result = expr.substitute("k", var("i") + 1)
        assert result.coefficient("i") == 3
        assert result.constant == 2
        assert result.coefficient("k") == 0

    def test_substitute_absent_variable_is_noop(self):
        expr = var("i") + 1
        assert expr.substitute("k", const(5)) == expr

    @given(
        st.integers(-50, 50), st.integers(-50, 50),
        st.integers(-50, 50), st.integers(-50, 50),
    )
    def test_evaluation_homomorphism(self, a, b, i, j):
        expr = a * var("i") + b * var("j") + 7

        def evaluate(e):
            return sum(c * {"i": i, "j": j}[n] for n, c in e.coefficients) + e.constant

        other = 3 * var("i") - 2
        assert evaluate(expr + other) == evaluate(expr) + evaluate(other)
        assert evaluate(expr * 4) == evaluate(expr) * 4


class TestLoop:
    def test_trip_count_constant_bounds(self):
        loop = Loop("i", const(1), const(100))
        assert loop.trip_count() == 100

    def test_trip_count_with_step(self):
        loop = Loop("i", const(0), const(9), step=2)
        assert loop.trip_count() == 5

    def test_trip_count_symbolic_needs_symbols(self):
        loop = Loop("i", const(1), var("n"))
        assert loop.trip_count() is None
        assert loop.trip_count({"n": 64}) == 64

    def test_empty_range(self):
        loop = Loop("i", const(10), const(5))
        assert loop.trip_count() == 0

    def test_step_validation(self):
        with pytest.raises(CompilerError):
            Loop("i", const(1), const(10), step=0)

    def test_statements_traverses_nesting(self):
        inner_stmt = Assignment(lhs=ArrayRef("a", (var("j"),), True))
        inner = Loop("j", const(1), const(4), body=(inner_stmt,))
        outer_stmt = Assignment(lhs=ScalarRef("s", True))
        outer = Loop("i", const(1), const(4), body=(outer_stmt, inner))
        assert list(outer.statements()) == [outer_stmt, inner_stmt]
        assert list(outer.inner_loops()) == [inner]


class TestAssignment:
    def test_lhs_forced_to_write(self):
        statement = Assignment(lhs=ScalarRef("x"))
        assert statement.lhs.is_write

    def test_statement_ids_unique(self):
        a = Assignment(lhs=ScalarRef("x", True))
        b = Assignment(lhs=ScalarRef("x", True))
        assert a.statement_id != b.statement_id


class TestLoopNest:
    def test_symbols_flow_to_trip_count(self):
        nest = LoopNest("n", Loop("i", const(1), var("n")), symbols={"n": 32})
        assert nest.trip_count() == 32
