"""Tests for the end-to-end compilers (KAP vs automatable)."""

import pytest

from repro.compiler import CedarRestructurer, KapCompiler
from repro.compiler.ir import (
    ArrayRef,
    Assignment,
    Loop,
    LoopNest,
    ScalarRef,
    const,
    var,
)
from repro.experiments.restructuring import gallery, run as run_gallery
from repro.lang.loops import Doall

I = var("i")


class TestGallery:
    def test_kap_only_handles_the_clean_loop(self):
        result = run_gallery()
        assert result.kap_count() == 1
        assert result.automatable_count() == 5

    def test_recurrence_resists_both(self):
        result = run_gallery()
        by_name = {name: (kap, auto) for name, kap, auto, _ in result.rows}
        assert by_name["recurrence"] == (False, False)

    def test_gallery_covers_every_transformation(self):
        result = run_gallery()
        transforms = " ".join(t for _, _, _, t in result.rows)
        for expected in ("privatization", "reductions", "induction",
                         "runtime-dependence-test", "balanced-stripmine",
                         "prefetch-insertion"):
            assert expected in transforms


class TestRestructurer:
    def _nest(self):
        return LoopNest("n", Loop("i", const(1), const(64), body=(
            Assignment(lhs=ArrayRef("b", (I,), True),
                       reads=(ArrayRef("a", (I,)),)),
        )))

    def test_strips_match_processor_count(self):
        report = CedarRestructurer(processors=8).compile(self._nest())
        assert len(report.strips) == 8
        assert sum(s.length for s in report.strips) == 64

    def test_processor_validation(self):
        with pytest.raises(ValueError):
            CedarRestructurer(processors=0)

    def test_lowering_produces_doall(self):
        restructurer = CedarRestructurer()
        report = restructurer.compile(self._nest())
        doall = restructurer.lower(report)
        assert isinstance(doall, Doall)
        assert doall.trip_count == 64
        assert doall.label == "n"

    def test_lowering_rejects_serial_nest(self):
        restructurer = CedarRestructurer()
        nest = LoopNest("serial", Loop("i", const(2), const(10), body=(
            Assignment(lhs=ArrayRef("x", (I,), True),
                       reads=(ArrayRef("x", (I - 1,)),)),
        )))
        report = restructurer.compile(nest)
        with pytest.raises(ValueError):
            restructurer.lower(report)

    def test_explicit_global_arrays_respected(self):
        restructurer = CedarRestructurer()
        report = restructurer.compile(self._nest(), global_arrays=set())
        assert report.prefetches == []

    def test_kap_compile_all(self):
        results = KapCompiler().compile_all(gallery())
        assert set(results) == {n.name for n in gallery()}
