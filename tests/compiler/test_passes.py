"""Tests for the individual restructuring passes."""

import pytest

from repro.compiler.ir import (
    ArrayRef,
    Assignment,
    Loop,
    ScalarRef,
    const,
    var,
)
from repro.compiler.passes.induction import substitute_induction_variables
from repro.compiler.passes.parallelize import parallelize
from repro.compiler.passes.prefetch_insert import (
    MAX_PREFETCH_WORDS,
    PrefetchDirective,
    insert_prefetches,
)
from repro.compiler.passes.privatization import privatize
from repro.compiler.passes.reductions import recognize_reductions
from repro.compiler.passes.runtime_test import insert_runtime_tests
from repro.compiler.passes.stripmine import balanced_strips, balanced_stripmine
from repro.errors import CompilerError

I = var("i")


class TestPrivatization:
    def test_write_before_read_scalar_is_private(self):
        loop = Loop("i", const(1), const(10), body=(
            Assignment(lhs=ScalarRef("t", True), reads=(ArrayRef("a", (I,)),)),
            Assignment(lhs=ArrayRef("b", (I,), True), reads=(ScalarRef("t"),)),
        ))
        assert privatize(loop).private == ("t",)

    def test_upward_exposed_read_not_private(self):
        loop = Loop("i", const(1), const(10), body=(
            Assignment(lhs=ArrayRef("b", (I,), True), reads=(ScalarRef("t"),)),
            Assignment(lhs=ScalarRef("t", True), reads=(ArrayRef("a", (I,)),)),
        ))
        assert privatize(loop).private == ()

    def test_work_array_privatized(self):
        j = var("j")
        loop = Loop("i", const(1), const(10), body=(
            Assignment(lhs=ArrayRef("w", (j,), True),
                       reads=(ArrayRef("a", (I,)),)),
            Assignment(lhs=ArrayRef("b", (I,), True),
                       reads=(ArrayRef("w", (j,)),)),
        ))
        assert "w" in privatize(loop).private

    def test_array_indexed_by_loop_not_privatized(self):
        loop = Loop("i", const(1), const(10), body=(
            Assignment(lhs=ArrayRef("b", (I,), True),
                       reads=(ArrayRef("a", (I,)),)),
        ))
        assert privatize(loop).private == ()


class TestReductions:
    def test_sum_reduction_recognized(self):
        loop = Loop("i", const(1), const(10), body=(
            Assignment(lhs=ScalarRef("s", True),
                       reads=(ScalarRef("s"), ArrayRef("a", (I,))),
                       reduction_op="+"),
        ))
        assert recognize_reductions(loop).reductions == ("s",)

    def test_mixed_operators_disqualify(self):
        loop = Loop("i", const(1), const(10), body=(
            Assignment(lhs=ScalarRef("s", True),
                       reads=(ScalarRef("s"),), reduction_op="+"),
            Assignment(lhs=ScalarRef("s", True),
                       reads=(ScalarRef("s"),), reduction_op="*"),
        ))
        assert recognize_reductions(loop).reductions == ()

    def test_mid_loop_read_disqualifies(self):
        loop = Loop("i", const(1), const(10), body=(
            Assignment(lhs=ScalarRef("s", True),
                       reads=(ScalarRef("s"),), reduction_op="+"),
            Assignment(lhs=ArrayRef("b", (I,), True), reads=(ScalarRef("s"),)),
        ))
        assert recognize_reductions(loop).reductions == ()

    def test_induction_updates_not_reductions(self):
        loop = Loop("i", const(1), const(10), body=(
            Assignment(lhs=ScalarRef("k", True), reads=(ScalarRef("k"),),
                       reduction_op="+", increment=1),
        ))
        assert recognize_reductions(loop).reductions == ()


class TestInduction:
    def _loop(self):
        k = var("k")
        return Loop("i", const(1), const(10), body=(
            Assignment(lhs=ScalarRef("k", True), reads=(ScalarRef("k"),),
                       reduction_op="+", increment=2),
            Assignment(lhs=ArrayRef("c", (k,), True),
                       reads=(ArrayRef("a", (I,)),)),
        ))

    def test_update_statement_removed(self):
        rewritten = substitute_induction_variables(self._loop())
        names = [s.lhs.array if isinstance(s.lhs, ArrayRef) else s.lhs.name
                 for s in rewritten.statements()]
        assert names == ["c"]

    def test_subscript_gets_closed_form(self):
        rewritten = substitute_induction_variables(self._loop())
        (statement,) = list(rewritten.statements())
        subscript = statement.lhs.subscripts[0]
        assert subscript.coefficient("i") == 2  # k grows by 2 per iteration
        assert subscript.coefficient("k") == 1  # symbolic initial value

    def test_no_induction_is_identity(self):
        loop = Loop("i", const(1), const(10), body=(
            Assignment(lhs=ArrayRef("b", (I,), True)),
        ))
        assert substitute_induction_variables(loop) is loop


class TestParallelize:
    def test_independent_loop_marked(self):
        loop = Loop("i", const(1), const(10), body=(
            Assignment(lhs=ArrayRef("b", (I,), True),
                       reads=(ArrayRef("a", (I,)),)),
        ))
        assert parallelize(loop).parallel

    def test_recurrence_blocked(self):
        loop = Loop("i", const(2), const(10), body=(
            Assignment(lhs=ArrayRef("x", (I,), True),
                       reads=(ArrayRef("x", (I - 1,)),)),
        ))
        assert not parallelize(loop).parallel

    def test_private_marker_neutralizes(self):
        loop = Loop("i", const(1), const(10), private=("t",), body=(
            Assignment(lhs=ScalarRef("t", True), reads=(ArrayRef("a", (I,)),)),
            Assignment(lhs=ArrayRef("b", (I,), True), reads=(ScalarRef("t"),)),
        ))
        assert parallelize(loop).parallel

    def test_runtime_test_defers_symbolic(self):
        m = var("m")
        loop = Loop("i", const(1), const(10), body=(
            Assignment(lhs=ArrayRef("x", (I + m,), True),
                       reads=(ArrayRef("x", (I,)),)),
        ))
        assert not parallelize(loop).parallel
        tested = insert_runtime_tests(loop)
        assert tested.parallel
        assert tested.needs_runtime_test

    def test_runtime_test_cannot_fix_proven_dependence(self):
        loop = Loop("i", const(2), const(10), body=(
            Assignment(lhs=ArrayRef("x", (I,), True),
                       reads=(ArrayRef("x", (I - 1,)),)),
        ))
        assert not insert_runtime_tests(loop).parallel


class TestStripmine:
    def test_balanced_partition(self):
        strips = balanced_strips(10, 4)
        assert [s.length for s in strips] == [3, 3, 2, 2]
        assert strips[0].start == 0
        assert strips[-1].stop == 10

    def test_lengths_differ_by_at_most_one(self):
        for n in (1, 7, 31, 100, 1000):
            for p in (1, 3, 8, 32):
                lengths = [s.length for s in balanced_strips(n, p)]
                assert sum(lengths) == n
                assert max(lengths) - min(lengths) <= 1

    def test_symbolic_trip_rejected(self):
        loop = Loop("i", const(1), var("n"))
        with pytest.raises(CompilerError):
            balanced_stripmine(loop, 8)

    def test_bad_arguments(self):
        with pytest.raises(CompilerError):
            balanced_strips(-1, 4)
        with pytest.raises(CompilerError):
            balanced_strips(10, 0)


class TestPrefetchInsertion:
    def test_global_stride_one_read_prefetched(self):
        loop = Loop("i", const(1), const(100), body=(
            Assignment(lhs=ArrayRef("b", (I,), True),
                       reads=(ArrayRef("a", (I,)),)),
        ))
        directives = insert_prefetches(loop, global_arrays={"a"})
        assert len(directives) == 1
        assert directives[0].array == "a"
        assert directives[0].stride == 1
        assert directives[0].length == MAX_PREFETCH_WORDS

    def test_non_global_operand_skipped(self):
        loop = Loop("i", const(1), const(100), body=(
            Assignment(lhs=ArrayRef("b", (I,), True),
                       reads=(ArrayRef("a", (I,)),)),
        ))
        assert insert_prefetches(loop, global_arrays=set()) == []

    def test_invariant_operand_not_prefetched(self):
        loop = Loop("i", const(1), const(100), body=(
            Assignment(lhs=ArrayRef("b", (I,), True),
                       reads=(ArrayRef("a", (const(3),)),)),
        ))
        assert insert_prefetches(loop, global_arrays={"a"}) == []

    def test_floating_requires_local_work(self):
        loop = Loop("i", const(1), const(100), body=(
            Assignment(lhs=ArrayRef("b", (I,), True),
                       reads=(ArrayRef("a", (I,)), ArrayRef("w", (I,)))),
        ))
        directives = insert_prefetches(loop, global_arrays={"a"})
        assert directives[0].floated  # w is local: prefetch can float

    def test_short_trip_shortens_prefetch(self):
        loop = Loop("i", const(1), const(8), body=(
            Assignment(lhs=ArrayRef("b", (I,), True),
                       reads=(ArrayRef("a", (I,)),)),
        ))
        directives = insert_prefetches(loop, global_arrays={"a"})
        assert directives[0].length == 8

    def test_directive_length_validated(self):
        with pytest.raises(ValueError):
            PrefetchDirective(array="a", statement_id=0, length=0, stride=1,
                              floated=False)
