"""Tests for the cedar-repro command-line interface."""

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in ("table1", "table2", "table6", "restructuring"):
            assert key in out


class TestUnknownExperiment:
    def test_near_miss_suggestion(self, capsys):
        assert main(["run", "tabel2"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment 'tabel2'" in err
        assert "did you mean" in err
        assert "table2" in err

    def test_no_match_points_at_list(self, capsys):
        assert main(["run", "zzzzzz"]) == 2
        err = capsys.readouterr().err
        assert "try 'cedar-repro list'" in err

    def test_trace_rejects_unknown_too(self, capsys):
        assert main(["trace", "restructering"]) == 2
        assert "restructuring" in capsys.readouterr().err


class TestRunJson:
    def test_json_output_is_machine_readable(self, capsys):
        assert main(["run", "table6", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and len(payload) == 1
        entry = payload[0]
        assert entry["experiment"] == "table6"
        assert entry["description"]
        assert "Ep" in entry["rendered"] or "band" in entry["rendered"].lower()
        # The structured result must survive a JSON round trip untouched.
        assert json.loads(json.dumps(entry["result"])) == entry["result"]

    def test_plain_run_still_renders(self, capsys):
        assert main(["run", "table6"]) == 0
        assert "High" in capsys.readouterr().out


class TestTrace:
    def test_trace_report_on_analytic_experiment(self, capsys):
        assert main(["trace", "table6", "--report"]) == 0
        out = capsys.readouterr().out
        assert "Trace report:" in out
        assert "model.constructs_timed" in out

    def test_trace_writes_chrome_json(self, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        assert main(["trace", "table6", "--out", str(out_file)]) == 0
        captured = capsys.readouterr()
        assert "wrote" in captured.err
        doc = json.loads(out_file.read_text())
        assert doc["traceEvents"]
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        # --out without --report skips the text report.
        assert "Trace report:" not in captured.out


class TestRunOut:
    def test_out_writes_single_json_document(self, tmp_path, capsys):
        out_file = tmp_path / "results.json"
        assert main(["run", "table6", "--out", str(out_file)]) == 0
        captured = capsys.readouterr()
        assert "running table6" in captured.err
        assert "wrote 1 result(s)" in captured.err
        assert captured.out == ""  # results go to the file, not stdout
        payload = json.loads(out_file.read_text())
        assert isinstance(payload, list)
        assert payload[0]["experiment"] == "table6"

    def test_unwritable_out_fails_before_running(self, tmp_path, capsys):
        bad = tmp_path / "missing-dir" / "results.json"
        assert main(["run", "table6", "--out", str(bad)]) == 2
        captured = capsys.readouterr()
        assert "cannot write" in captured.err
        assert "running" not in captured.err  # failed before any run


class TestRunProfile:
    def test_profile_prints_hottest_functions(self, capsys):
        assert main(["run", "table6", "--profile", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "hottest functions (table6)" in out
        assert "tottime" in out
        # at most --top rows below the header of the profile table
        table = out.split("tottime", 1)[1].splitlines()[1:]
        assert 0 < len([line for line in table if line.strip()]) <= 5

    def test_profile_wired_into_json(self, capsys):
        assert main(["run", "table6", "--profile", "--top", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        profile = payload[0]["profile"]
        assert 0 < len(profile) <= 3
        for row in profile:
            assert set(row) == {"function", "ncalls", "tottime", "cumtime"}
            assert row["tottime"] >= 0

    def test_profile_aggregates_across_jobs(self, monkeypatch, capsys):
        # Each worker profiles its own experiment; the parent merges the
        # raw stats dicts, so every record still carries a profile.
        import repro.cli as cli

        subset = {k: cli.EXPERIMENTS[k] for k in ("table6", "table5")}
        monkeypatch.setattr(cli, "EXPERIMENTS", subset)
        assert cli.main(
            ["run", "all", "--profile", "--jobs", "2", "--json"]
        ) == 0
        captured = capsys.readouterr()
        assert "--profile forces" not in captured.err
        payload = json.loads(captured.out)
        assert [e["experiment"] for e in payload] == ["table5", "table6"]
        for entry in payload:
            assert entry["profile"]
            for row in entry["profile"]:
                assert set(row) == {"function", "ncalls", "tottime", "cumtime"}


class TestRunJobs:
    def test_parallel_json_matches_sequential(self, monkeypatch, capsys):
        # Narrow "all" to two cheap experiments, then compare --jobs 2
        # against the sequential run: identical order, identical payload.
        import repro.cli as cli

        subset = {k: cli.EXPERIMENTS[k] for k in ("table6", "table5")}
        monkeypatch.setattr(cli, "EXPERIMENTS", subset)
        assert cli.main(["run", "all", "--jobs", "2", "--json"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        assert cli.main(["run", "all", "--json"]) == 0
        sequential = json.loads(capsys.readouterr().out)
        assert [e["experiment"] for e in parallel] == ["table5", "table6"]
        assert parallel == sequential

    def test_single_experiment_ignores_jobs(self, capsys):
        assert main(["run", "table6", "--jobs", "4"]) == 0
        assert "High" in capsys.readouterr().out


class TestRunMultiple:
    def test_several_experiments_in_given_order(self, capsys):
        assert main(["run", "table6", "table5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [e["experiment"] for e in payload] == ["table6", "table5"]

    def test_duplicates_are_collapsed(self, capsys):
        assert main(["run", "table6", "table6", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [e["experiment"] for e in payload] == ["table6"]

    def test_unknown_key_in_list_rejected(self, capsys):
        assert main(["run", "table6", "tabel5"]) == 2
        assert "unknown experiment 'tabel5'" in capsys.readouterr().err


class TestRunTraceOut:
    def test_writes_merged_chrome_trace(self, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        assert main(
            ["run", "table6", "table5", "--trace-out", str(out_file)]
        ) == 0
        captured = capsys.readouterr()
        assert "wrote merged trace" in captured.err
        assert "2 experiment(s)" in captured.err
        doc = json.loads(out_file.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        # Each experiment keeps its own epoch (Chrome-trace pid).
        assert len({e["pid"] for e in doc["traceEvents"]}) >= 2

    def test_json_records_gain_trace_telemetry(self, capsys, tmp_path):
        out_file = tmp_path / "trace.json"
        assert main(
            ["run", "table6", "--json", "--trace-out", str(out_file)]
        ) == 0
        entry = json.loads(capsys.readouterr().out)[0]
        trace = entry["trace"]
        assert trace["records_seen"] > 0
        assert trace["dropped"] == 0
        assert trace["overhead_ratio"] >= 0
        assert trace["overhead_per_record_ns"] > 0

    def test_jobs_n_merged_trace_is_byte_identical(
        self, monkeypatch, tmp_path
    ):
        """The merge-determinism acceptance: --jobs 2 == --jobs 1, exactly."""
        import repro.cli as cli

        subset = {k: cli.EXPERIMENTS[k] for k in ("table6", "table5")}
        monkeypatch.setattr(cli, "EXPERIMENTS", subset)
        sequential = tmp_path / "seq.json"
        parallel = tmp_path / "par.json"
        assert cli.main(["run", "all", "--trace-out", str(sequential)]) == 0
        assert cli.main(
            ["run", "all", "--jobs", "2", "--trace-out", str(parallel)]
        ) == 0
        assert sequential.read_bytes() == parallel.read_bytes()

    def test_unwritable_trace_out_fails_before_running(self, tmp_path, capsys):
        bad = tmp_path / "missing-dir" / "trace.json"
        assert main(["run", "table6", "--trace-out", str(bad)]) == 2
        assert "cannot write" in capsys.readouterr().err

    def test_rendered_output_unchanged_by_tracing(self, capsys, tmp_path):
        assert main(["run", "table6", "--json"]) == 0
        plain = json.loads(capsys.readouterr().out)[0]
        assert main(
            ["run", "table6", "--json",
             "--trace-out", str(tmp_path / "t.json")]
        ) == 0
        traced = json.loads(capsys.readouterr().out)[0]
        assert traced["rendered"] == plain["rendered"]
        assert traced["result"] == plain["result"]


class TestRunPartitions:
    def test_partitions_must_be_positive(self, capsys):
        assert main(["run", "table6", "--partitions", "0"]) == 2
        assert "--partitions must be >= 1" in capsys.readouterr().err

    def test_partitions_and_jobs_are_exclusive(self, capsys):
        assert main(
            ["run", "table6", "--partitions", "2", "--jobs", "2"]
        ) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_whole_unit_experiment_matches_plain_run(self, capsys):
        # table6 declares no unit decomposition: it runs whole in
        # partition 0 and the extra partition stays idle.
        assert main(["run", "table6", "--json"]) == 0
        plain = json.loads(capsys.readouterr().out)[0]
        assert main(["run", "table6", "--partitions", "2", "--json"]) == 0
        captured = capsys.readouterr()
        entry = json.loads(captured.out)[0]
        assert entry["rendered"] == plain["rendered"]
        assert entry["result"] == plain["result"]
        telemetry = entry["partition"]
        assert telemetry["partitions"] == 2
        assert telemetry["units"] == 1
        assert [s["units"] for s in telemetry["partition_stats"]] == [1, 0]
        assert "partition(s)" in captured.err  # stderr throughput lines

    def test_partitioned_sanitizer_summary_matches(self, capsys):
        assert main(["run", "table6", "--sanitize", "--json"]) == 0
        plain = json.loads(capsys.readouterr().out)[0]
        assert main(
            ["run", "table6", "--partitions", "2", "--sanitize", "--json"]
        ) == 0
        entry = json.loads(capsys.readouterr().out)[0]
        assert entry["sanitizer"] == plain["sanitizer"]

    def test_partitioned_trace_is_byte_identical(self, tmp_path, capsys):
        single = tmp_path / "p1.json"
        double = tmp_path / "p2.json"
        assert main(
            ["run", "table6", "--partitions", "1", "--trace-out", str(single)]
        ) == 0
        assert main(
            ["run", "table6", "--partitions", "2", "--trace-out", str(double)]
        ) == 0
        capsys.readouterr()
        assert single.read_bytes() == double.read_bytes()


class TestRunSanitize:
    def test_plain_run_prints_sanitizer_line(self, capsys):
        assert main(["run", "table6", "--sanitize"]) == 0
        out = capsys.readouterr().out
        assert "sanitizer:" in out
        assert "0 violation(s)" in out

    def test_json_record_carries_sanitizer_summary(self, capsys):
        assert main(["run", "network-ablation", "--sanitize", "--json"]) == 0
        entry = json.loads(capsys.readouterr().out)[0]
        summary = entry["sanitizer"]
        assert summary["enabled"] is True
        assert summary["violations"] == 0
        assert summary["total_checks"] == sum(summary["checks"].values())
        assert summary["total_checks"] > 0  # a cycle simulation saw traffic

    def test_rendered_artifact_identical_with_and_without(self, capsys):
        assert main(["run", "table6", "--json"]) == 0
        plain = json.loads(capsys.readouterr().out)[0]
        assert main(["run", "table6", "--sanitize", "--json"]) == 0
        sanitized = json.loads(capsys.readouterr().out)[0]
        assert sanitized["rendered"] == plain["rendered"]
        assert sanitized["result"] == plain["result"]

    def test_env_flag_implies_sanitize(self, monkeypatch, capsys):
        monkeypatch.setenv("CEDAR_SANITIZE", "1")
        from repro.hardware import sanitize as sanitize_mod

        previous = sanitize_mod.set_enabled(True)
        try:
            assert main(["run", "table6"]) == 0
        finally:
            sanitize_mod.set_enabled(previous)
        assert "sanitizer:" in capsys.readouterr().out

    def test_parallel_sanitized_matches_sequential(self, monkeypatch, capsys):
        import repro.cli as cli

        subset = {k: cli.EXPERIMENTS[k] for k in ("table6", "table5")}
        monkeypatch.setattr(cli, "EXPERIMENTS", subset)
        assert cli.main(
            ["run", "all", "--sanitize", "--jobs", "2", "--json"]
        ) == 0
        parallel = json.loads(capsys.readouterr().out)
        assert cli.main(["run", "all", "--sanitize", "--json"]) == 0
        sequential = json.loads(capsys.readouterr().out)
        assert all("sanitizer" in entry for entry in parallel)
        assert parallel == sequential
