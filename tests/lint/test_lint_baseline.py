"""Baseline: load/save round trip, validation, partition, staleness."""

import json

import pytest

from repro.errors import LintError
from repro.lint import Baseline, BaselineEntry
from repro.lint.core import Finding


def _finding(path="src/repro/hardware/sanitize.py", rule="det.id-key"):
    return Finding(path=path, line=3, col=1, rule=rule, message="m")


class TestRoundTrip:
    def test_save_then_load_is_identity(self, tmp_path):
        entries = [
            BaselineEntry("det.id-key", "hardware/sanitize.py", "ledger"),
            BaselineEntry("det.env-read", "trace/tracer.py", "snapshot-once"),
        ]
        path = tmp_path / "baseline.json"
        Baseline(entries).save(str(path))
        loaded = Baseline.load(str(path))
        assert loaded.entries == sorted(entries)

    def test_saved_document_is_stable_bytes(self, tmp_path):
        # The committed baseline must not churn on re-save: sorted
        # entries, sorted keys, trailing newline.
        entries = [
            BaselineEntry("det.id-key", "b.py", "x"),
            BaselineEntry("det.id-key", "a.py", "x"),
        ]
        first, second = tmp_path / "one.json", tmp_path / "two.json"
        Baseline(entries).save(str(first))
        Baseline(list(reversed(entries))).save(str(second))
        assert first.read_bytes() == second.read_bytes()
        assert first.read_bytes().endswith(b"\n")


class TestValidation:
    def test_missing_comment_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "entries": [{"rule": "det.id-key", "file": "a.py", "comment": ""}],
        }))
        with pytest.raises(LintError, match="comment"):
            Baseline.load(str(path))

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 2, "entries": []}))
        with pytest.raises(LintError, match="version"):
            Baseline.load(str(path))

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{nope")
        with pytest.raises(LintError, match="not valid JSON"):
            Baseline.load(str(path))

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(LintError, match="cannot read"):
            Baseline.load(str(tmp_path / "absent.json"))


class TestPartition:
    def test_matching_finding_is_grandfathered(self):
        baseline = Baseline([
            BaselineEntry("det.id-key", "hardware/sanitize.py", "ledger"),
        ])
        new, grandfathered, stale = baseline.partition([_finding()])
        assert not new and not stale
        assert grandfathered == [_finding()]

    def test_suffix_match_spans_checkout_prefixes(self):
        # Entries store repo-relative-ish paths; a finding produced from
        # an absolute path still matches by suffix.
        baseline = Baseline([
            BaselineEntry("det.id-key", "hardware/sanitize.py", "ledger"),
        ])
        finding = _finding(path="/ci/checkout/src/repro/hardware/sanitize.py")
        _, grandfathered, _ = baseline.partition([finding])
        assert grandfathered == [finding]

    def test_rule_mismatch_stays_new(self):
        baseline = Baseline([
            BaselineEntry("det.env-read", "hardware/sanitize.py", "c"),
        ])
        new, grandfathered, stale = baseline.partition([_finding()])
        assert new == [_finding()]
        assert stale  # the env-read entry matched nothing

    def test_unmatched_entry_reported_stale(self):
        entry = BaselineEntry("det.rng", "hardware/gone.py", "obsolete")
        baseline = Baseline([entry])
        _, _, stale = baseline.partition([])
        assert stale == [entry]

    def test_from_findings_dedupes_rule_file_pairs(self):
        findings = [
            Finding("a.py", 1, 1, "det.rng", "m"),
            Finding("a.py", 9, 1, "det.rng", "m2"),
            Finding("b.py", 2, 1, "det.rng", "m"),
        ]
        baseline = Baseline.from_findings(findings, "todo")
        assert [(e.rule, e.file) for e in baseline.entries] == [
            ("det.rng", "a.py"),
            ("det.rng", "b.py"),
        ]
        assert all(e.comment == "todo" for e in baseline.entries)
