"""CLI surface of cedar-repro lint: flags, exit codes, the repo gate."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import Baseline, all_rules

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"

RULE_IDS = [rule.id for rule in all_rules()]

DIRTY = "import time\nstamp = time.time()\n"
CLEAN = "def double(x):\n    return 2 * x\n"


class TestExplain:
    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_explain_every_rule(self, rule_id, capsys):
        assert main(["lint", "--explain", rule_id]) == 0
        out = capsys.readouterr().out
        rule = next(r for r in all_rules() if r.id == rule_id)
        assert rule_id in out
        assert rule.title in out
        assert f"tests/lint/fixtures/{rule_id}" in out

    def test_explain_all(self, capsys):
        assert main(["lint", "--explain", "all"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_IDS:
            assert rule_id in out

    def test_explain_unknown_rule_exits_2(self, capsys):
        assert main(["lint", "--explain", "det.nope"]) == 2
        assert "unknown rule" in capsys.readouterr().err


class TestExitCodes:
    def test_clean_tree_exits_0(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN)
        assert main(["lint", str(tmp_path), "--baseline", "none"]) == 0
        err = capsys.readouterr().err
        assert "1 file(s), 0 finding(s)" in err

    def test_finding_exits_1_and_renders(self, tmp_path, capsys):
        (tmp_path / "sim.py").write_text(DIRTY)
        assert main(["lint", str(tmp_path), "--baseline", "none"]) == 1
        captured = capsys.readouterr()
        assert "det.wall-clock" in captured.out
        assert "sim.py:2:" in captured.out

    def test_unreadable_path_exits_2(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "absent"), "--baseline", "none"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_syntax_error_exits_2(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        assert main(["lint", str(tmp_path), "--baseline", "none"]) == 2
        assert "cannot parse" in capsys.readouterr().err


class TestJson:
    def test_schema(self, tmp_path, capsys):
        (tmp_path / "sim.py").write_text(DIRTY)
        assert main(["lint", str(tmp_path), "--json", "--baseline", "none"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == 1
        assert document["files_checked"] == 1
        assert document["rules"] == RULE_IDS
        assert document["summary"]["total"] == document["summary"]["new"] == 1
        assert document["summary"]["baselined"] == 0
        assert document["summary"]["suppressed"] == 0
        assert document["summary"]["stale_baseline"] == []
        (finding,) = document["findings"]
        assert set(finding) == {
            "file", "line", "col", "rule", "message", "baselined",
        }
        assert finding["rule"] == "det.wall-clock"
        assert finding["baselined"] is False

    def test_baselined_finding_flagged_and_exit_0(self, tmp_path, capsys):
        (tmp_path / "sim.py").write_text(DIRTY)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "rule": "det.wall-clock",
                "file": "sim.py",
                "comment": "fixture: sanctioned for this test",
            }],
        }))
        code = main([
            "lint", str(tmp_path / "sim.py"),
            "--json", "--baseline", str(baseline),
        ])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["new"] == 0
        assert document["summary"]["baselined"] == 1
        assert all(f["baselined"] for f in document["findings"])


class TestBaselineFlow:
    def test_stale_entry_warned_on_stderr(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "rule": "det.rng",
                "file": "gone.py",
                "comment": "was fixed long ago",
            }],
        }))
        assert main([
            "lint", str(tmp_path / "ok.py"), "--baseline", str(baseline),
        ]) == 0
        assert "stale baseline entry" in capsys.readouterr().err

    def test_write_baseline_grandfathers_current_findings(
        self, tmp_path, capsys
    ):
        (tmp_path / "sim.py").write_text(DIRTY)
        out_path = tmp_path / "new-baseline.json"
        # The run that writes the baseline still reports its findings.
        assert main([
            "lint", str(tmp_path / "sim.py"),
            "--baseline", "none",
            "--write-baseline", str(out_path),
        ]) == 1
        capsys.readouterr()
        written = Baseline.load(str(out_path))
        assert [(e.rule, e.file) for e in written.entries] == [
            ("det.wall-clock", str(tmp_path / "sim.py").replace("\\", "/")),
        ]
        assert "TODO" in written.entries[0].comment
        # Linting against the written baseline now passes.
        assert main([
            "lint", str(tmp_path / "sim.py"), "--baseline", str(out_path),
        ]) == 0


class TestSelfCheck:
    def test_self_check_passes_on_committed_fixtures(self, capsys):
        assert main([
            "lint", "--self-check", "--fixtures", str(FIXTURES),
        ]) == 0
        assert "all" in capsys.readouterr().out

    def test_self_check_fails_on_empty_fixture_dir(self, tmp_path, capsys):
        assert main([
            "lint", "--self-check", "--fixtures", str(tmp_path),
        ]) == 1
        assert "missing fixture" in capsys.readouterr().err


class TestRepoGate:
    """The tree itself must lint clean against the committed baseline."""

    def test_src_lints_clean(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "src", "--baseline", "LINT_BASELINE.json"]) == 0
        err = capsys.readouterr().err
        assert ", 0 finding(s)" in err
        assert "stale baseline entry" not in err

    def test_committed_baseline_entries_all_commented(self):
        baseline = Baseline.load(str(REPO_ROOT / "LINT_BASELINE.json"))
        for entry in baseline.entries:
            # Baseline.load enforces non-empty; demand a real sentence.
            assert len(entry.comment) > 20, entry
