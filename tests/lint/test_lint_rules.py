"""Per-rule tests: every fixture pair proven, plus edge-case sources."""

from pathlib import Path

import pytest

from repro.lint import all_rules, analyze_file, analyze_source, self_check

FIXTURES = Path(__file__).parent / "fixtures"

RULE_IDS = [rule.id for rule in all_rules()]


def _run(source, rule_id):
    rule = next(r for r in all_rules() if r.id == rule_id)
    report = analyze_source(
        source, "scratch.py", rules=[rule], respect_scope=False
    )
    return [f for f in report.findings if f.rule == rule_id]


class TestFixturePairs:
    """The CI self-check, expressed as parametrized tier-1 tests."""

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_fire_fixture_fires(self, rule_id):
        rule = next(r for r in all_rules() if r.id == rule_id)
        path = FIXTURES / rule_id / "fire.py"
        assert path.is_file(), f"missing fire fixture for {rule_id}"
        report = analyze_file(str(path), rules=[rule], respect_scope=False)
        assert [f for f in report.findings if f.rule == rule_id], (
            f"{path} does not fire {rule_id}"
        )

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_clean_fixture_stays_clean(self, rule_id):
        rule = next(r for r in all_rules() if r.id == rule_id)
        path = FIXTURES / rule_id / "clean.py"
        assert path.is_file(), f"missing clean fixture for {rule_id}"
        report = analyze_file(str(path), rules=[rule], respect_scope=False)
        hits = [f for f in report.findings if f.rule == rule_id]
        assert not hits, f"{path} fires: " + "; ".join(
            f.render() for f in hits
        )

    def test_self_check_passes(self):
        assert self_check(str(FIXTURES)) == []

    def test_self_check_reports_missing_fixtures(self, tmp_path):
        failures = self_check(str(tmp_path))
        # Two failures (fire + clean) per registered rule.
        assert len(failures) == 2 * len(RULE_IDS)
        assert all("missing fixture" in failure for failure in failures)

    def test_fixtures_contain_no_noqa(self):
        # A noqa inside a fixture would let a broken rule pass self-check.
        for path in sorted(FIXTURES.rglob("*.py")):
            assert "cedar: noqa" not in path.read_text(), path


class TestSetIterEdges:
    def test_sorted_wrapper_is_order_safe(self):
        assert not _run(
            "names = {'b', 'a'}\nrows = [n for n in sorted(names)]\n",
            "det.set-iter",
        )

    def test_bare_comprehension_over_set_fires(self):
        assert _run(
            "names = {'b', 'a'}\nrows = [n for n in names]\n",
            "det.set-iter",
        )

    def test_rebinding_to_sorted_clears_tracking(self):
        source = (
            "names = {'b', 'a'}\n"
            "names = sorted(names)\n"
            "for n in names:\n"
            "    print(n)\n"
        )
        assert not _run(source, "det.set-iter")

    def test_membership_test_is_fine(self):
        assert not _run(
            "names = {'b', 'a'}\nhit = 'a' in names\n", "det.set-iter"
        )

    def test_join_over_set_fires(self):
        assert _run(
            "names = {'b', 'a'}\nlabel = ','.join(names)\n", "det.set-iter"
        )


class TestIdKeyEdges:
    def test_identity_comparison_is_fine(self):
        assert not _run("same = id(a) == id(b)\n", "det.id-key")

    def test_sort_key_lambda_fires(self):
        assert _run(
            "rows = sorted(items, key=lambda i: id(i))\n", "det.id-key"
        )

    def test_fstring_render_fires(self):
        assert _run("label = f'queue@{id(q):x}'\n", "det.id-key")


class TestFsOrderEdges:
    def test_sorted_listdir_is_fine(self):
        assert not _run(
            "import os\nnames = sorted(os.listdir(d))\n", "det.fs-order"
        )

    def test_bare_listdir_fires(self):
        assert _run("import os\nnames = os.listdir(d)\n", "det.fs-order")


class TestWallClockEdges:
    def test_perf_counter_is_telemetry(self):
        assert not _run(
            "import time\nt = time.perf_counter()\n", "det.wall-clock"
        )

    def test_from_import_fires(self):
        assert _run("from time import time\n", "det.wall-clock")


class TestRngEdges:
    def test_seeded_instance_construction_is_fine(self):
        assert not _run(
            "import random\nrng = random.Random(7)\n", "det.rng"
        )

    def test_module_level_call_fires(self):
        assert _run("import random\nx = random.random()\n", "det.rng")


class TestDisciplineEdges:
    def test_snapshot_in_init_is_fine(self):
        source = (
            "class Q:\n"
            "    def __init__(self):\n"
            "        self._t = current_tracer()\n"
        )
        assert not _run(source, "disc.ambient-snapshot")

    def test_read_in_dispatch_method_fires(self):
        source = (
            "class Q:\n"
            "    def push(self, item):\n"
            "        current_tracer().record('push')\n"
        )
        assert _run(source, "disc.ambient-snapshot")

    def test_floor_division_delay_is_fine(self):
        assert not _run(
            "engine.schedule_after(total // n, cb)\n", "disc.unvalidated-delay"
        )

    def test_validated_schedule_is_not_checked(self):
        # schedule() validates its delay itself; only the fast entry
        # point needs static help.
        assert not _run(
            "engine.schedule(total / n, cb)\n", "disc.unvalidated-delay"
        )

    def test_true_division_delay_fires(self):
        assert _run(
            "engine.schedule_after(total / n, cb)\n", "disc.unvalidated-delay"
        )

    def test_blocking_in_nested_sync_def_is_fine(self):
        source = (
            "async def handler(loop, path):\n"
            "    def load():\n"
            "        with open(path) as fh:\n"
            "            return fh.read()\n"
            "    return await loop.run_in_executor(None, load)\n"
        )
        assert not _run(source, "disc.async-blocking")

    def test_blocking_in_async_def_fires(self):
        source = (
            "import time\n"
            "async def handler():\n"
            "    time.sleep(1)\n"
        )
        assert _run(source, "disc.async-blocking")

    def test_dict_merge_order_fires_on_values_update_loop(self):
        source = (
            "merged = {}\n"
            "for shard in outputs.values():\n"
            "    merged.update(shard)\n"
        )
        assert _run(source, "det.dict-merge-order")

    def test_dict_merge_sorted_keys_is_fine(self):
        source = (
            "merged = {}\n"
            "for key in sorted(outputs):\n"
            "    merged.update(outputs[key])\n"
        )
        assert not _run(source, "det.dict-merge-order")
