"""Fault drill for det.dict-merge-order: merging in arrival order."""


def combine_shard_outputs(outputs):
    # `outputs` fills as worker processes finish: insertion order IS the
    # nondeterministic completion interleaving.
    merged = {}
    for shard in outputs.values():  # fires
        merged.update(shard)
    return merged


def combine_items(outputs):
    merged = {}
    for _key, shard in outputs.items():  # fires
        merged.update(shard["results"])
    return merged
