"""Clean twin for det.dict-merge-order: merge in sorted key order."""


def combine_shard_outputs(outputs):
    merged = {}
    for key in sorted(outputs):  # pure function of the results
        merged.update(outputs[key])
    return merged


def read_only_scan(outputs):
    # Iterating .values() without merging is fine: nothing ordered
    # escapes the loop.
    total = 0
    for shard in outputs.values():
        total += len(shard)
    return total
