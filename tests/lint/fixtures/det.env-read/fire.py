"""Fault drill for det.env-read: ambient environment in a sim path."""

import os


def worker_count():
    return int(os.environ.get("CEDAR_WORKERS", "2"))  # fires


def trace_path():
    return os.getenv("CEDAR_TRACE_PATH")  # fires
