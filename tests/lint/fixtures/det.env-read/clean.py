"""Clean twin for det.env-read: configuration arrives as an argument."""


def worker_count(config):
    # The value travels inside the experiment config, so it is part of
    # the serve tier's content address and of the run's identity.
    return config.workers


def trace_path(settings):
    return settings.get("trace_path")
