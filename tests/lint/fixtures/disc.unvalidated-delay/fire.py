"""Fault drill for disc.unvalidated-delay: float cycle arithmetic."""


def drain(engine, queue, total_cycles, batches):
    engine.schedule_after(total_cycles / batches, queue.pop)  # fires: true /


def retry(engine, callback):
    engine.schedule_after(1.5, callback)  # fires: float literal delay
