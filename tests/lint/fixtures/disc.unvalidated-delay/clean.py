"""Clean twin for disc.unvalidated-delay: integer cycles only."""


def drain(engine, queue, total_cycles, batches):
    per_batch = total_cycles // batches
    engine.schedule_after(per_batch, queue.pop)


def retry(engine, callback):
    engine.schedule_after(2, callback)
