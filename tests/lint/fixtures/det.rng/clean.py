"""Clean twin for det.rng: a seeded generator threaded from config."""

import hashlib
import random


def jitter(delay, rng):
    # The generator arrives from the experiment config, seeded there;
    # the seed is part of the run's content address.
    return delay + rng.randint(0, 3)


def build_generator(seed):
    return random.Random(seed)  # constructing a seeded instance is the fix


def job_identifier(experiment, config_bytes):
    return hashlib.sha256(experiment.encode() + config_bytes).hexdigest()
