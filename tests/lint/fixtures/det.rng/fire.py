"""Fault drill for det.rng: ambient randomness in a simulation path."""

import os
import random
import uuid


def jitter(delay):
    return delay + random.randint(0, 3)  # fires: process-global RNG


def job_identifier():
    return str(uuid.uuid4())  # fires: uuid4


def noise_block():
    return os.urandom(16)  # fires: os.urandom
