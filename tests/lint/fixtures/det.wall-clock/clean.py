"""Clean twin for det.wall-clock: cycle clock + telemetry timers only."""

import time


def measure(engine, run):
    began = time.perf_counter()  # telemetry: allowed
    run()
    wall = time.perf_counter() - began
    deadline = time.monotonic() + 5.0  # timeouts: allowed
    return {"cycles": engine.now, "wall_seconds": wall, "deadline": deadline}
