"""Fault drill for det.wall-clock: host time in a simulation path."""

import time
from datetime import datetime


def stamp_result(result):
    result["generated_at"] = time.time()  # fires
    return result


def label_run():
    return datetime.now().isoformat()  # fires
