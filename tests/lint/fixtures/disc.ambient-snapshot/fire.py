"""Fault drill for disc.ambient-snapshot: per-event ambient reads."""

from repro.hardware import sanitize
from repro.trace.tracer import current_tracer


class Queue:
    def __init__(self, name):
        self.name = name

    def push(self, item):
        # Reading the ambient context per event means two runs of the
        # same schedule can see different sanitizers mid-flight.
        checker = sanitize.current()  # fires
        if checker is not None:
            checker.note_push(self, item)

    def pop(self):
        tracer = current_tracer()  # fires
        tracer.record("pop", queue=self.name)
