"""Clean twin for disc.ambient-snapshot: snapshot once at construction."""

from repro.hardware import sanitize
from repro.trace.tracer import current_tracer


class Queue:
    def __init__(self, name):
        self.name = name
        # Snapshot the ambient context exactly once, at construction;
        # every event afterwards sees the same sanitizer and tracer.
        self._checker = sanitize.current()
        self._tracer = current_tracer()

    def push(self, item):
        if self._checker is not None:
            self._checker.note_push(self, item)

    def pop(self):
        self._tracer.record("pop", queue=self.name)
