"""Clean twin for det.set-iter: every consumer re-establishes an order."""


def render_components(components):
    parts = []
    pending = {"memory", "crossbar", "ce"}
    for name in sorted(pending):  # sorted() restores a total order
        parts.append(name)
    return ",".join(parts)


def merged_labels(left, right):
    shared = set(left) & set(right)
    return ";".join(sorted(shared))


def order_insensitive(batch):
    population = set(batch)
    if "tail" in population:  # membership: order never observed
        return len(population)
    widest = max(population)  # reducers are order-insensitive
    return sorted(str(item) for item in population)[0] if population else widest


def rebound(batch):
    rows = set(batch)
    rows = sorted(rows)  # rebinding to the sorted list is the fix
    return list(rows)
