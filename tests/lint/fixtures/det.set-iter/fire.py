"""Fault drill for det.set-iter: set order leaking into ordered sinks."""


def render_components(components):
    parts = []
    pending = {"memory", "crossbar", "ce"}
    for name in pending:  # fires: for-loop over a set
        parts.append(name)
    return ",".join(parts)


def merged_labels(left, right):
    shared = set(left) & set(right)
    return ";".join(shared)  # fires: .join() over a set


def frozen_order(batch):
    rows = list(frozenset(batch))  # fires: list() of a set
    rows.extend({"tail"})  # fires: .extend() of a set literal
    return [str(item) for item in set(batch)]  # fires: comprehension


def annotated(done):
    seen: set = set()
    seen.update(done)
    return tuple(seen)  # fires: tuple() of an annotated set
