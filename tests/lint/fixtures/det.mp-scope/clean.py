"""Clean twin for det.mp-scope: route through the sanctioned runner."""

from repro.parallel import parallel_map


def fan_out(worker, payloads):
    # parallel_map merges in key order and surfaces silent worker deaths
    # as WorkerCrashError -- the audited seam.
    tasks = [(str(index), payload) for index, payload in enumerate(payloads)]
    return [result for _key, result in parallel_map(worker, tasks, jobs=4)]
