"""Fault drill for det.mp-scope: an unaudited fork seam."""

import multiprocessing  # fires: outside the sanctioned runners


def fan_out(worker, payloads):
    with multiprocessing.Pool(4) as pool:
        return pool.map(worker, payloads)
