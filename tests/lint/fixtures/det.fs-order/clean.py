"""Clean twin for det.fs-order: sorted() at the enumeration source."""

import glob
import os


def snapshot_files(directory):
    entries = sorted(os.listdir(directory))
    return [entry for entry in entries if entry.endswith(".json")]


def spill_keys(directory):
    return sorted(glob.glob(f"{directory}/*.json"))


def walk_tree(root):
    for entry in sorted(root.iterdir()):
        yield entry
