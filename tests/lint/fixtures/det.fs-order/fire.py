"""Fault drill for det.fs-order: filesystem order reaching a consumer."""

import glob
import os


def snapshot_files(directory):
    entries = os.listdir(directory)  # fires: unsorted listdir
    return [entry for entry in entries if entry.endswith(".json")]


def spill_keys(directory):
    return glob.glob(f"{directory}/*.json")  # fires: unsorted glob


def walk_tree(root):
    for entry in root.iterdir():  # fires: unsorted Path.iterdir
        yield entry
