"""Fault drill for det.id-key: process addresses in sensitive positions."""


def sort_by_identity(components):
    return sorted(components, key=lambda c: id(c))  # fires: sort key


def ledger_crossing_processes(queues):
    table = {}
    for queue in queues:
        table[id(queue)] = queue.depth  # fires: dict/subscript key
    return table


def literal_key(component):
    return {hash(component.name): component}  # fires: dict-literal key


def rendered(queue):
    return f"queue@{id(queue):x} overflow"  # fires: rendered into text
