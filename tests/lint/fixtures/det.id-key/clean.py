"""Clean twin for det.id-key: stable names and indices as keys."""


def sort_by_name(components):
    return sorted(components, key=lambda c: c.name)


def ledger_by_name(queues):
    table = {}
    for index, queue in enumerate(queues):
        table[(queue.name, index)] = queue.depth
    return table


def plain_identity_test(a, b):
    # Comparing identities without ordering/rendering them is fine.
    return id(a) == id(b)


def rendered(queue):
    return f"queue {queue.name or '<anonymous>'} overflow"
