"""Clean twin for disc.async-blocking: yield or hand off to a thread."""

import asyncio
import time


async def handle_job(request, loop):
    await asyncio.sleep(0.1)
    payload = await loop.run_in_executor(None, _load, request.path)
    return payload


def _load(path):
    # Blocking I/O is fine in a sync helper that runs on the executor.
    time.sleep(0.01)
    with open(path) as handle:
        return handle.read()
