"""Fault drill for disc.async-blocking: stalls inside the event loop."""

import subprocess
import time


async def handle_job(request):
    time.sleep(0.1)  # fires: parks the whole event loop
    with open(request.path) as handle:  # fires: blocking file I/O
        payload = handle.read()
    subprocess.run(["sync"])  # fires: blocking subprocess
    return payload
