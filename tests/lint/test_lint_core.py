"""Tests for the lint framework: suppressions, scoping, collection."""

import pytest

from repro.errors import LintError
from repro.lint import (
    UNKNOWN_RULE_ID,
    all_rules,
    analyze_source,
    collect_files,
    get_rule,
)
from repro.lint.core import Finding, Rule, repro_relative


WALL_CLOCK = "import time\nstamp = time.time()\n"


class TestFinding:
    def test_render_format(self):
        finding = Finding(
            path="src/repro/hardware/engine.py",
            line=12,
            col=5,
            rule="det.wall-clock",
            message="host time in a sim path",
        )
        assert finding.render() == (
            "src/repro/hardware/engine.py:12:5: det.wall-clock "
            "host time in a sim path"
        )

    def test_json_carries_baselined_flag(self):
        finding = Finding("a.py", 1, 1, "det.rng", "m")
        assert finding.to_json(baselined=True)["baselined"] is True
        assert finding.to_json()["baselined"] is False

    def test_findings_sort_by_path_then_line(self):
        later = Finding("b.py", 1, 1, "det.rng", "m")
        early = Finding("a.py", 9, 1, "det.rng", "m")
        assert sorted([later, early]) == [early, later]


class TestNoqa:
    def test_exact_rule_id_suppresses(self):
        source = "import time\nstamp = time.time()  # cedar: noqa[det.wall-clock]\n"
        report = analyze_source(source, "scratch.py")
        assert not [f for f in report.findings if f.rule == "det.wall-clock"]
        assert [f for f in report.suppressed if f.rule == "det.wall-clock"]

    def test_other_rule_id_does_not_suppress(self):
        source = "import time\nstamp = time.time()  # cedar: noqa[det.rng]\n"
        report = analyze_source(source, "scratch.py")
        assert [f for f in report.findings if f.rule == "det.wall-clock"]

    def test_multi_rule_brackets(self):
        source = (
            "import time, random\n"
            "stamp = time.time() + random.random()"
            "  # cedar: noqa[det.wall-clock, det.rng]\n"
        )
        report = analyze_source(source, "scratch.py")
        assert not report.findings
        suppressed = {f.rule for f in report.suppressed}
        assert suppressed == {"det.wall-clock", "det.rng"}

    def test_bare_noqa_suppresses_everything_on_the_line(self):
        source = (
            "import time, random\n"
            "stamp = time.time() + random.random()  # cedar: noqa\n"
        )
        report = analyze_source(source, "scratch.py")
        assert not report.findings
        assert len(report.suppressed) == 2

    def test_unknown_rule_id_is_itself_a_finding(self):
        source = "import time\nstamp = time.time()  # cedar: noqa[det.wallclock]\n"
        report = analyze_source(source, "scratch.py")
        rules = {f.rule for f in report.findings}
        # The typo'd suppression disarms nothing AND gets reported.
        assert "det.wall-clock" in rules
        assert UNKNOWN_RULE_ID in rules
        unknown = [f for f in report.findings if f.rule == UNKNOWN_RULE_ID][0]
        assert "det.wallclock" in unknown.message

    def test_unknown_rule_not_reported_on_single_rule_pass(self):
        source = "import time\nstamp = time.time()  # cedar: noqa[det.bogus]\n"
        rule = get_rule("det.wall-clock")
        report = analyze_source(source, "scratch.py", rules=[rule])
        assert {f.rule for f in report.findings} == {"det.wall-clock"}

    def test_noqa_inside_string_literal_does_not_suppress(self):
        source = (
            "import time\n"
            'LABEL = "stamp  # cedar: noqa[det.wall-clock]"\n'
            "stamp = time.time()\n"
        )
        report = analyze_source(source, "scratch.py")
        assert [f for f in report.findings if f.rule == "det.wall-clock"]


class TestScope:
    def test_repro_relative(self):
        assert repro_relative("src/repro/hardware/engine.py") == (
            "hardware/engine.py"
        )
        assert repro_relative("tests/lint/fixtures/det.rng/fire.py") is None

    def test_rule_scope_excludes_model_package(self):
        # The analytic model package is outside SIM_SCOPE: it computes
        # closed-form numbers, not event schedules.
        report = analyze_source(WALL_CLOCK, "src/repro/model/speedup.py")
        assert not [f for f in report.findings if f.rule == "det.wall-clock"]

    def test_rule_scope_includes_hardware_package(self):
        report = analyze_source(WALL_CLOCK, "src/repro/hardware/clock.py")
        assert [f for f in report.findings if f.rule == "det.wall-clock"]

    def test_exempt_file_is_skipped(self):
        source = (
            "from repro.hardware import sanitize\n"
            "class Q:\n"
            "    def push(self, item):\n"
            "        return sanitize.current()\n"
        )
        # hardware/sanitize.py is the ambient-context implementation; it
        # is exempt from the snapshot rule.  Any other hardware file is not.
        report = analyze_source(source, "src/repro/hardware/sanitize.py")
        assert not [
            f for f in report.findings if f.rule == "disc.ambient-snapshot"
        ]
        report = analyze_source(source, "src/repro/hardware/clock.py")
        assert [f for f in report.findings if f.rule == "disc.ambient-snapshot"]

    def test_config_module_is_outside_sim_scope(self):
        source = "import os\nflag = os.environ.get('CEDAR_X')\n"
        report = analyze_source(source, "src/repro/config.py")
        assert not [f for f in report.findings if f.rule == "det.env-read"]
        report = analyze_source(source, "src/repro/hardware/clock.py")
        assert [f for f in report.findings if f.rule == "det.env-read"]

    def test_paths_outside_repro_get_every_rule(self):
        report = analyze_source(WALL_CLOCK, "scratch/tool.py")
        assert [f for f in report.findings if f.rule == "det.wall-clock"]

    def test_respect_scope_false_overrides(self):
        report = analyze_source(
            WALL_CLOCK, "src/repro/model/speedup.py", respect_scope=False
        )
        assert [f for f in report.findings if f.rule == "det.wall-clock"]


class TestRegistry:
    def test_rules_are_sorted_by_id(self):
        ids = [rule.id for rule in all_rules()]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))

    def test_every_rule_has_metadata(self):
        for rule in all_rules():
            assert rule.id and rule.title and rule.rationale
            assert rule.scope

    def test_get_rule_unknown_raises(self):
        with pytest.raises(LintError, match="unknown rule"):
            get_rule("det.nope")


class TestDrivers:
    def test_syntax_error_raises_lint_error(self):
        with pytest.raises(LintError, match="cannot parse"):
            analyze_source("def broken(:\n", "bad.py")

    def test_collect_files_sorted_and_skips_pycache(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "note.txt").write_text("not python\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "a.cpython-311.pyc").write_text("")
        (cache / "ghost.py").write_text("x = 1\n")
        hidden = tmp_path / ".hidden"
        hidden.mkdir()
        (hidden / "c.py").write_text("x = 1\n")
        found = collect_files([str(tmp_path)])
        names = [path.rsplit("/", 1)[-1] for path in found]
        assert names == ["a.py", "b.py"]

    def test_collect_files_missing_path_raises(self, tmp_path):
        with pytest.raises(LintError, match="no such file"):
            collect_files([str(tmp_path / "nope")])

    def test_default_rule_scope_is_sim_scope(self):
        class Probe(Rule):
            id = "probe.example"
            title = "probe"
            rationale = "probe"

            def check(self, ctx):
                return iter(())

        assert "hardware" in Probe.scope and "serve" in Probe.scope
