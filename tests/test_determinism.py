"""Fast paths and parallel execution must not change a single result.

The perf layer makes three claims (see DESIGN.md "Idle fast-forward"):

* the engine's batched dispatch loop produces the event stream of the
  one-at-a-time loop, including ``events_dispatched``;
* the components' wake-slimming (crossbar head-route masks) is
  observationally equivalent to waking every arbiter;
* ``--jobs N`` only changes which process runs an experiment, never what
  the experiment computes.

These tests pin all three by running real cycle-level kernels both ways
and comparing everything that is visible: monitor histograms, the full
machine metrics registry, and engine dispatch counts.
"""

import pytest

from repro.hardware import fastpath
from repro.kernels.tridiag_matvec import measure_tridiag
from repro.kernels.vector_load import measure_vector_load
from repro.metrics.bench import build_snapshot
from repro.metrics.collector import MonitorCatcher, collect_tracer
from repro.metrics.registry import MetricsRegistry
from repro.trace import Tracer, tracing


def _traced_run(kernel):
    """Run ``kernel`` under a fresh tracer; return every observable output."""
    tracer = Tracer(enabled=True)
    catcher = MonitorCatcher(tracer)
    with tracing(tracer):
        run = kernel()
    registry = MetricsRegistry()
    collect_tracer(registry, tracer)
    catcher.collect_into(registry)
    machine = registry.as_flat_dict()
    monitors = [m.histogram_summaries() for m in catcher.monitors]
    events = tracer.counter_totals().get("engine", {}).get("events_dispatched")
    return repr(run), machine, monitors, events


def _with_fastpath(flag, kernel):
    previous = fastpath.set_enabled(flag)
    try:
        return _traced_run(kernel)
    finally:
        fastpath.set_enabled(previous)


@pytest.mark.parametrize(
    "kernel",
    [
        pytest.param(lambda: measure_vector_load(8), id="vector-load-8"),
        pytest.param(lambda: measure_tridiag(8), id="tridiag-8"),
    ],
)
def test_fastpath_on_off_byte_identical(kernel):
    fast = _with_fastpath(True, kernel)
    legacy = _with_fastpath(False, kernel)
    assert fast[0] == legacy[0]        # rendered kernel result
    assert fast[1] == legacy[1]        # full machine registry, exact
    assert fast[2] == legacy[2]        # performance-monitor histograms
    assert fast[3] == legacy[3]        # engine.events_dispatched
    assert fast[3] is not None and fast[3] > 0


def test_fastpath_snapshot_matches_its_own_rerun():
    """Fast-path runs are themselves deterministic across repeats."""
    first = _with_fastpath(True, lambda: measure_vector_load(8))
    second = _with_fastpath(True, lambda: measure_vector_load(8))
    assert first == second


def _strip_self_profile(snapshot):
    for section in snapshot["experiments"].values():
        section.pop("self_profile", None)
    return snapshot


def test_parallel_snapshot_identical_to_sequential():
    keys = ["figure3", "table5", "table6"]
    sequential = build_snapshot(keys, 0, trace=True, jobs=1)
    parallel = build_snapshot(keys, 0, trace=True, jobs=4)
    assert list(parallel["experiments"]) == keys  # key order, not completion
    assert _strip_self_profile(sequential) == _strip_self_profile(parallel)
