"""Fast paths and parallel execution must not change a single result.

The perf layer makes three claims (see DESIGN.md "Idle fast-forward"):

* the engine's batched dispatch loop produces the event stream of the
  one-at-a-time loop, including ``events_dispatched``;
* the components' wake-slimming (crossbar head-route masks) is
  observationally equivalent to waking every arbiter;
* ``--jobs N`` only changes which process runs an experiment, never what
  the experiment computes.

These tests pin all three by running real cycle-level kernels both ways
and comparing everything that is visible: monitor histograms, the full
machine metrics registry, and engine dispatch counts.
"""

import multiprocessing
import random

import pytest

from repro.config import NetworkConfig
from repro.hardware import fastpath, sanitize
from repro.hardware.engine import Engine
from repro.hardware.network import OmegaNetwork
from repro.hardware.packet import Packet, PacketKind
from repro.kernels.tridiag_matvec import measure_tridiag
from repro.kernels.vector_load import measure_vector_load
from repro.metrics.bench import build_snapshot
from repro.metrics.collector import MonitorCatcher, collect_tracer
from repro.metrics.registry import MetricsRegistry
from repro.trace import Tracer, tracing


def _traced_run(kernel):
    """Run ``kernel`` under a fresh tracer; return every observable output."""
    tracer = Tracer(enabled=True)
    catcher = MonitorCatcher(tracer)
    with tracing(tracer):
        run = kernel()
    registry = MetricsRegistry()
    collect_tracer(registry, tracer)
    catcher.collect_into(registry)
    machine = registry.as_flat_dict()
    monitors = [m.histogram_summaries() for m in catcher.monitors]
    events = tracer.counter_totals().get("engine", {}).get("events_dispatched")
    return repr(run), machine, monitors, events


def _with_fastpath(flag, kernel):
    previous = fastpath.set_enabled(flag)
    try:
        return _traced_run(kernel)
    finally:
        fastpath.set_enabled(previous)


@pytest.mark.parametrize(
    "kernel",
    [
        pytest.param(lambda: measure_vector_load(8), id="vector-load-8"),
        pytest.param(lambda: measure_tridiag(8), id="tridiag-8"),
    ],
)
def test_fastpath_on_off_byte_identical(kernel):
    fast = _with_fastpath(True, kernel)
    legacy = _with_fastpath(False, kernel)
    assert fast[0] == legacy[0]        # rendered kernel result
    assert fast[1] == legacy[1]        # full machine registry, exact
    assert fast[2] == legacy[2]        # performance-monitor histograms
    assert fast[3] == legacy[3]        # engine.events_dispatched
    assert fast[3] is not None and fast[3] > 0


def test_fastpath_snapshot_matches_its_own_rerun():
    """Fast-path runs are themselves deterministic across repeats."""
    first = _with_fastpath(True, lambda: measure_vector_load(8))
    second = _with_fastpath(True, lambda: measure_vector_load(8))
    assert first == second


def _strip_self_profile(snapshot):
    for section in snapshot["experiments"].values():
        section.pop("self_profile", None)
    return snapshot


def test_parallel_snapshot_identical_to_sequential():
    keys = ["figure3", "table5", "table6"]
    sequential = build_snapshot(keys, 0, trace=True, jobs=1)
    parallel = build_snapshot(keys, 0, trace=True, jobs=4)
    assert list(parallel["experiments"]) == keys  # key order, not completion
    assert _strip_self_profile(sequential) == _strip_self_profile(parallel)


def _fuzz_network_run(seed):
    """Random traffic through a 2-stage network of 4x4 crossbars.

    Runs with the sanitizer armed (its checks must neither perturb the
    simulation nor fire) and returns every observable: the exact delivery
    stream (port, packet id, cycle), the dispatch count, and occupancy.
    """
    rng = random.Random(seed)
    flows = [
        (rng.randrange(16), rng.randrange(16), rng.randint(1, 4))
        for _ in range(rng.randint(30, 120))
    ]
    with sanitize.sanitizing() as sanitizer:
        engine = Engine()
        network = OmegaNetwork(
            engine, 16, NetworkConfig(switch_radix=4), name="fuzz"
        )
        assert network.num_stages == 2
        deliveries = []
        for port in range(16):
            # packet_id is a process-global counter, so the A/B runs tag
            # packets with their per-run flow index instead.
            network.attach_sink(
                port,
                lambda packet, p=port: deliveries.append(
                    (p, packet.request_tag, engine.now)
                ),
            )
        queue = [
            Packet(
                kind=PacketKind.READ_REQUEST,
                source=source,
                destination=destination,
                address=destination,
                words=words,
                request_tag=index,
            )
            for index, (source, destination, words) in enumerate(flows)
        ]

        def pump():
            remaining = [
                packet for packet in queue
                if not network.try_inject(packet.source, packet)
            ]
            queue[:] = remaining
            if remaining:
                engine.schedule(1, pump)

        engine.schedule(0, pump)
        engine.run_until_idle()
    sanitizer.finalize()
    assert sanitizer.violations == 0
    assert len(deliveries) == len(flows)
    return tuple(deliveries), engine.events_dispatched, network.occupancy_words()


# ---------------------------------------------------------------------------
# Partitioned execution (--partitions N): sharding must be invisible
# ---------------------------------------------------------------------------

_KERNEL_UNITS = {
    "vl:4": lambda: measure_vector_load(4),
    "vl:8": lambda: measure_vector_load(8),
    "td:4": lambda: measure_tridiag(4),
    "td:8": lambda: measure_tridiag(8),
}


def _register_kernel_experiment(monkeypatch):
    """Register a tiny unit-decomposed experiment over real kernels.

    Worker processes inherit the patched registry through fork, so the
    partitioned runner resolves the same experiment in every shard.
    """
    from repro.experiments import registry

    experiment = registry.Experiment(
        key="kernel-grid",
        description="real cycle-level kernels as independent units",
        run=lambda: {
            name: repr(run()) for name, run in _KERNEL_UNITS.items()
        },
        render=lambda result: "\n".join(
            f"{name}: {result[name]}" for name in sorted(result)
        ),
        units=lambda: list(_KERNEL_UNITS),
        run_unit=lambda name: repr(_KERNEL_UNITS[name]()),
        combine=lambda results: {
            name: results[name] for name in _KERNEL_UNITS
        },
    )
    monkeypatch.setitem(registry.EXPERIMENTS, "kernel-grid", experiment)
    return experiment


@pytest.mark.parametrize("partitions", [2, 4])
def test_partitioned_kernels_byte_identical(monkeypatch, partitions):
    """--partitions 2/4 vs 1 on real kernels: every artifact identical."""
    if multiprocessing.get_start_method() != "fork":
        pytest.skip("worker processes inherit the test registry via fork")
    from repro.partition import run_partitioned

    _register_kernel_experiment(monkeypatch)
    single = run_partitioned(
        "kernel-grid", 1, sanitized=True, traced=True
    )
    sharded = run_partitioned(
        "kernel-grid", partitions, sanitized=True, traced=True
    )
    assert sharded.rendered == single.rendered
    assert sharded.result == single.result
    assert sharded.sanitizer == single.sanitizer
    assert sharded.sanitizer["violations"] == 0
    assert sharded.trace_bytes == single.trace_bytes
    assert sharded.telemetry["partitions"] == partitions
    assert sharded.telemetry["units"] == len(_KERNEL_UNITS)
    busy = [
        stat for stat in sharded.telemetry["partition_stats"]
        if stat["units"] > 0
    ]
    assert len(busy) == min(partitions, len(_KERNEL_UNITS))
    assert all(stat["events_dispatched"] > 0 for stat in busy)


def test_partitioned_run_matches_single_process_run(monkeypatch):
    """combine({u: run_unit(u)}) is exactly run(): the sharding contract."""
    experiment = _register_kernel_experiment(monkeypatch)
    direct = experiment.run()
    reassembled = experiment.combine(
        {name: experiment.run_unit(name) for name in experiment.units()}
    )
    assert reassembled == direct


@pytest.mark.parametrize("key", ["table1", "table2", "ppt4"])
def test_registry_unit_decompositions_cover_run(key):
    """Every registered decomposition reassembles run() exactly."""
    from repro.experiments.registry import get_experiment

    experiment = get_experiment(key)
    if experiment.units is None:
        pytest.skip(f"{key} declares no unit decomposition")
    units = experiment.units()
    assert len(units) == len(set(units))  # unit names are unique
    assert units  # and non-empty


@pytest.mark.parametrize("seed", [0, 7, 1993])
def test_fuzzed_network_fastpath_on_off_identical(seed):
    """Differential fuzz: CEDAR_FASTPATH=0 vs 1, sanitizer armed in both.

    The masked-wake and batched-dispatch rewrites must be invisible under
    arbitrary contention: byte-identical delivery streams and identical
    ``events_dispatched``.
    """
    previous = fastpath.set_enabled(True)
    try:
        fast = _fuzz_network_run(seed)
    finally:
        fastpath.set_enabled(previous)
    previous = fastpath.set_enabled(False)
    try:
        legacy = _fuzz_network_run(seed)
    finally:
        fastpath.set_enabled(previous)
    assert fast[0] == legacy[0]  # (port, packet_id, cycle) stream
    assert fast[1] == legacy[1]  # events_dispatched
    assert fast[2] == legacy[2] == 0  # network fully drained
