"""The example scripts must run end to end (the fast ones, at least)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestFastExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "first-word latency 8" in out
        assert "TRFD" in out

    def test_design_space_sweep(self, capsys):
        out = run_example("design_space_sweep.py", capsys)
        assert "machine: 4 clusters x 8 CEs = 32 CEs" in out
        assert "pareto front:" in out

    def test_memory_system_study_ablation(self, capsys):
        # The Table 1 half takes minutes; the contention ablation is the
        # part that exercises the builder-migrated config path.
        module = runpy.run_path(str(EXAMPLES / "memory_system_study.py"))
        module["contention_ablation"]()
        out = capsys.readouterr().out
        assert "as built" in out
        assert "deep queues + fast modules" in out

    def test_restructure_loops(self, capsys):
        out = run_example("restructure_loops.py", capsys)
        assert "KAP-1988 parallelizes 'weighted-sum': False" in out
        assert "privatization(t)" in out
        assert "reductions(s)" in out

    def test_xylem_os_study(self, capsys):
        out = run_example("xylem_os_study.py", capsys)
        assert "single-user" in out
        assert "4.0x the faults" in out

    def test_judging_parallelism(self, capsys):
        out = run_example("judging_parallelism.py", capsys)
        assert "Cedar verdicts" in out
        assert "'PPT2': True" in out
        assert "Y-MP/8 verdicts" in out
        assert "'PPT2': False" in out
