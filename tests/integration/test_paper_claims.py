"""Cross-layer integration tests: the paper's qualitative claims.

Each test exercises multiple subsystems together (simulator + monitor,
model + methodology, compiler + model) and checks a sentence from the
paper.  Heavier whole-table regenerations live in benchmarks/.
"""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.core.bands import Band, classify_speedup
from repro.core.stability import instability
from repro.hardware.ce import ArmFirePrefetch, AwaitPrefetch
from repro.hardware.machine import CedarMachine
from repro.kernels.rank_update import RankUpdateVersion, measure_rank_update
from repro.kernels.vector_load import measure_vector_load
from repro.perfect.suite import run_code, run_suite
from repro.perfect.versions import Version


class TestMemorySystemClaims:
    def test_minimal_latency_8_interarrival_1(self):
        """'Minimal Latency is 8 cycles and minimal Interarrival time is
        1 cycle.'"""
        machine = CedarMachine()

        def kernel(ce):
            handle = yield ArmFirePrefetch(length=32, stride=1,
                                           start_address=64)
            yield AwaitPrefetch(handle)

        machine.run_kernel(kernel, num_ces=1)
        handle = machine.all_ces[0].pfu.completed[0]
        assert handle.first_word_latency() == 8
        assert min(handle.interarrival_times()) == 1

    def test_13_cycle_latency_budget(self):
        """'the 13 cycle latency of the global memory and the two
        outstanding requests allowed per CE' bound GM/no-pref throughput."""
        run = measure_rank_update(RankUpdateVersion.GM_NO_PREFETCH, 1,
                                  strips=1)
        per_ce = run.mflops / 8
        # 2 words / 13 cycles x 2 chained flops = 1.81 MFLOPS per CE.
        assert per_ce == pytest.approx(1.81, rel=0.25)

    def test_contention_causes_the_prefetch_degradation(self):
        """'global memory degradation due to contention causes the
        reduction in the effectiveness of prefetching as the number of
        CEs used increases.'"""
        runs = {n: measure_vector_load(n, blocks=8) for n in (8, 32)}
        assert runs[32].interarrival > runs[8].interarrival
        assert runs[32].first_word_latency > runs[8].first_word_latency


class TestRestructuringClaims:
    def test_kap_limited_automatable_substantial(self):
        """'with the original compiler most programs have very limited
        performance improvement' vs the automatable column."""
        grid = run_suite(versions=(Version.SERIAL, Version.KAP,
                                   Version.AUTOMATABLE))
        kap_limited = sum(
            1 for r in grid.values() if r[Version.KAP].improvement < 1.5
        )
        auto_substantial = sum(
            1 for r in grid.values()
            if r[Version.AUTOMATABLE].improvement > 4.0
        )
        assert kap_limited >= 8
        assert auto_substantial >= 9

    def test_dyfesm_needs_cheap_self_scheduling(self):
        """DYFESM's slowdown without Cedar synchronization (Table 3)."""
        auto = run_code("DYFESM", Version.AUTOMATABLE)
        no_sync = run_code("DYFESM", Version.AUTOMATABLE_NO_SYNC)
        assert no_sync.seconds / auto.seconds > 1.25

    def test_trfd_virtual_memory_pathology_and_fix(self):
        """'close to 50% of the time in virtual memory activity' for the
        multicluster TRFD; the distributed-memory version fixes it."""
        from repro.perfect.suite import get_profile
        profile = get_profile("TRFD")
        auto = run_code("TRFD", Version.AUTOMATABLE)
        assert profile.paging_seconds / auto.seconds > 0.35
        hand = run_code("TRFD", Version.HAND)
        assert hand.seconds < auto.seconds - profile.paging_seconds + 2.0


class TestMethodologyClaims:
    @pytest.fixture(scope="class")
    def mflops(self):
        grid = run_suite(versions=(Version.SERIAL, Version.AUTOMATABLE))
        return {c: r[Version.AUTOMATABLE].mflops for c, r in grid.items()}

    def test_terrible_baseline_instability(self, mflops):
        """'Cedar and the Cray YMP/8 both have terrible instabilities for
        their baseline-automatable computations.'"""
        assert instability(mflops, 0) > 30.0

    def test_spice_is_the_canonical_poor_performer(self, mflops):
        """'several very poor performers (e.g., SPICE)'."""
        assert min(mflops, key=mflops.__getitem__) == "SPICE"

    def test_qcd_hand_is_high_band(self):
        """QCD's 20.8x hand improvement crosses into the high band."""
        result = run_code("QCD", Version.HAND)
        assert classify_speedup(result.improvement, 32) is Band.HIGH

    def test_cedar_passes_ppt1_on_hand_codes(self):
        """'both the Cray YMP and Cedar ... pass PPT1 for the Perfect
        codes' -- no unacceptable hand-optimized code on Cedar."""
        grid = run_suite(versions=(Version.SERIAL, Version.HAND))
        bands = [
            classify_speedup(r[Version.HAND].improvement, 32)
            for r in grid.values()
        ]
        assert Band.UNACCEPTABLE not in bands


class TestClockSpeedStatement:
    def test_clock_ratio(self):
        """'the ratios of clock speeds of the two systems is
        170ns/6ns = 28.33.'"""
        from repro.baselines import CRAY_YMP8
        from repro.config import CE_CYCLE_SECONDS
        ratio = CE_CYCLE_SECONDS * 1e9 / CRAY_YMP8.clock_ns
        assert ratio == pytest.approx(28.33, abs=0.01)
