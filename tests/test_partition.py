"""Partitioned simulation: boundary cut, epoch discipline, shard runtime.

Three layers under test (DESIGN.md §10):

* the boundary channels and their credit flow control;
* the conservative-lookahead epoch scheduler, including the edge cases
  that make or break determinism -- empty-epoch fast-forward, a send on
  the last cycle of an epoch, global inertness;
* the spatial elaborations (fused / split / process-split), which must
  produce identical runs, and the unit-shard runtime behind
  ``--partitions N``.
"""

import multiprocessing
import os

import pytest

from repro.config import DEFAULT_CONFIG
from repro.errors import SimulationError, WorkerCrashError
from repro.hardware.engine import Engine
from repro.hardware.packet import Packet, PacketKind
from repro.kernels.tridiag_matvec import tridiag_kernel
from repro.partition import (
    WHOLE_UNIT,
    BoundaryChannel,
    EpochScheduler,
    FusedPartitionedMachine,
    ProcessSplitMachine,
    SplitPartitionedMachine,
    lookahead_cycles,
    merge_profile_stats,
    plan_units,
    run_partitioned,
    shard_units,
)


def _fork_only():
    if multiprocessing.get_start_method() != "fork":
        pytest.skip("worker processes inherit test state via fork")


class TestLookahead:
    def test_default_machine_lookahead(self):
        # 32 ports through radix-8 switches: 2 stages x 1 cycle.
        assert lookahead_cycles(DEFAULT_CONFIG) == 2

    def test_epoch_shorter_than_latency_rejected(self):
        engine = Engine()
        channel = BoundaryChannel("t", 1, latency=1, capacity_words=8)
        with pytest.raises(SimulationError):
            EpochScheduler([engine], [(channel, engine, engine)], epoch_cycles=2)

    def test_epoch_length_must_be_positive(self):
        with pytest.raises(SimulationError):
            EpochScheduler([Engine()], [], epoch_cycles=0)


class TestEpochEdgeCases:
    def test_empty_epochs_fast_forward(self):
        # An event 10k cycles out must not cost 5k empty barrier rounds.
        engine = Engine()
        fired = []
        engine.schedule(10_000, lambda: fired.append(engine.now))
        scheduler = EpochScheduler([engine], [], epoch_cycles=2)
        scheduler.run(done=lambda: bool(fired))
        assert fired == [10_000]
        assert scheduler.epochs_run <= 3

    def test_send_on_last_epoch_cycle_delivers_next_epoch(self):
        # The lookahead guarantee at its boundary: a send on the final
        # cycle of an epoch still lands strictly after the barrier.
        engine = Engine()
        channel = BoundaryChannel("t", 1, latency=2, capacity_words=64)
        delivered = []
        channel.attach_sink(0, lambda packet: delivered.append(engine.now))
        packet = Packet(
            kind=PacketKind.READ_REQUEST,
            source=0,
            destination=0,
            address=0,
            words=4,
        )
        # Epoch 0 spans cycles 0..1; send on cycle 1, the horizon.
        engine.schedule(1, lambda: channel.links[0].send(packet, engine.now))
        scheduler = EpochScheduler(
            [engine], [(channel, engine, engine)], epoch_cycles=2
        )
        scheduler.run(done=lambda: bool(delivered))
        assert delivered == [1 + channel.latency]
        assert scheduler.barrier_exchanges == 1

    def test_globally_inert_system_raises_instead_of_spinning(self):
        engine = Engine()
        scheduler = EpochScheduler([engine], [], epoch_cycles=2)
        with pytest.raises(SimulationError, match="stalled"):
            scheduler.run(done=lambda: False)

    def test_credit_starved_link_refuses_overcommit(self):
        channel = BoundaryChannel("t", 1, latency=2, capacity_words=4)
        link = channel.links[0]
        packet = Packet(
            kind=PacketKind.READ_REQUEST,
            source=0,
            destination=0,
            address=0,
            words=4,
        )
        link.send(packet, 0)
        assert link.credits == 0
        assert not link.can_send(packet)
        with pytest.raises(SimulationError, match="overcommitted"):
            link.send(packet, 0)


def _machine_run(machine):
    """One small tridiag run; return every cheap observable."""
    finish = machine.run_kernel(
        tridiag_kernel(machine.config, strips=3), num_ces=4
    )
    return finish, machine.total_flops, [ce.flops for ce in machine.all_ces]


class TestSpatialElaborations:
    def test_fused_split_process_split_identical(self):
        """The tentpole determinism claim, machine-level: three
        elaborations of the same cut produce the same run."""
        _fork_only()
        fused = _machine_run(FusedPartitionedMachine(DEFAULT_CONFIG))
        split = _machine_run(SplitPartitionedMachine(DEFAULT_CONFIG))
        with ProcessSplitMachine(DEFAULT_CONFIG) as machine:
            process = _machine_run(machine)
            assert machine.remote_events_dispatched > 0
            assert machine.barrier_stall_seconds >= 0.0
        assert fused == split
        assert split == process
        assert fused[1] > 0  # the kernel did real arithmetic

    def test_split_partition_stats_expose_both_sides(self):
        machine = SplitPartitionedMachine(DEFAULT_CONFIG)
        _machine_run(machine)
        stats = {s["partition"]: s for s in machine.partition_stats()}
        assert stats["cluster"]["events_dispatched"] > 0
        assert stats["memory"]["events_dispatched"] > 0

    def test_dead_memory_worker_surfaces_as_crash(self):
        """Fault drill: kill the memory side, the parent must not hang."""
        _fork_only()
        with ProcessSplitMachine(DEFAULT_CONFIG) as machine:
            machine._process.terminate()
            machine._process.join()
            with pytest.raises(WorkerCrashError) as info:
                machine._recv()
            assert info.value.experiment == "partition:memory"


class TestShardRuntime:
    def test_plan_units_whole_fallback(self):
        assert plan_units("table6") == [WHOLE_UNIT]

    def test_plan_units_declared_decomposition(self):
        units = plan_units("table2")
        assert len(units) == len(set(units)) > 1

    def test_shard_units_round_robin(self):
        assert shard_units(["a", "b", "c", "d", "e"], 2) == [
            ["a", "c", "e"],
            ["b", "d"],
        ]
        assert shard_units(["a"], 3) == [["a"], [], []]
        with pytest.raises(ValueError):
            shard_units(["a"], 0)

    def test_more_partitions_than_units_leaves_idle_shards(self):
        run = run_partitioned("table6", 3)
        assert [s["units"] for s in run.telemetry["partition_stats"]] == [
            1, 0, 0,
        ]
        assert run.telemetry["events_dispatched"] >= 0

    def test_shard_worker_crash_surfaces(self, monkeypatch):
        """A killed shard worker raises WorkerCrashError, never hangs."""
        _fork_only()
        from repro.experiments import registry

        experiment = registry.Experiment(
            key="crashy",
            description="one unit dies without reporting",
            run=lambda: None,
            render=lambda result: "",
            units=lambda: ["ok", "boom"],
            run_unit=lambda name: os._exit(3) if name == "boom" else name,
            combine=lambda results: results,
        )
        monkeypatch.setitem(registry.EXPERIMENTS, "crashy", experiment)
        with pytest.raises(WorkerCrashError):
            run_partitioned("crashy", 2)

    def test_merge_profile_stats_sums_counts_and_callers(self):
        func = ("file.py", 1, "f")
        caller = ("file.py", 9, "main")
        first = {func: (1, 2, 0.5, 1.0, {caller: (1, 2, 0.5, 1.0)})}
        second = {func: (3, 4, 1.5, 2.0, {caller: (3, 4, 1.5, 2.0)})}
        merged = merge_profile_stats([first, second])
        cc, nc, tt, ct, callers = merged[func]
        assert (cc, nc, tt, ct) == (4, 6, 2.0, 3.0)
        assert callers[caller] == (4, 6, 2.0, 3.0)

    def test_uninstrumented_run_counts_no_events(self):
        run = run_partitioned("table6", 1, instrumented=False)
        assert run.telemetry["events_dispatched"] == 0.0
        assert run.rendered == run_partitioned("table6", 1).rendered
