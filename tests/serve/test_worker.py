"""Tests for the serve worker process side (repro.serve.worker)."""

import json

from repro.serve import worker
from repro.trace import TraceSnapshot


class TestTraceRecordsBound:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(worker.TRACE_RECORDS_ENV, raising=False)
        assert worker.serve_trace_records() == worker.DEFAULT_TRACE_RECORDS

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(worker.TRACE_RECORDS_ENV, "1024")
        assert worker.serve_trace_records() == 1024

    def test_garbage_and_nonpositive_fall_back(self, monkeypatch):
        for raw in ("zero", "", "-5", "0"):
            monkeypatch.setenv(worker.TRACE_RECORDS_ENV, raw)
            assert worker.serve_trace_records() == worker.DEFAULT_TRACE_RECORDS


class TestProgressTracer:
    def test_progress_keys_off_appended_not_retained(self, monkeypatch):
        """Ring evictions must not change the emitted progress stream."""
        monkeypatch.setattr(worker, "PROGRESS_INTERVAL", 10)
        streams = []
        for max_records in (4, 1000):  # heavy eviction vs none
            events = []
            tracer = worker.ProgressTracer(events.append, max_records=max_records)
            for i in range(25):
                tracer.instant("c", "tick", cycle=i, value=i)
            streams.append([e for e in events if e["type"] == "progress"])
        assert streams[0] == streams[1]
        assert [e["records"] for e in streams[0]] == [10, 20]

    def test_bounded_ring_keeps_recent_window(self):
        events = []
        tracer = worker.ProgressTracer(events.append, max_records=8)
        for i in range(20):
            tracer.instant("c", "tick", cycle=i, value=i)
        assert tracer.num_records == 8
        assert tracer.dropped == 12
        assert tracer.records_seen == 20
        snap = TraceSnapshot.from_bytes(tracer.snapshot().to_bytes())
        assert snap.column("instants", "cycle") == list(range(12, 20))

    def test_set_clock_emits_epoch_events(self):
        events = []
        tracer = worker.ProgressTracer(events.append, max_records=8)
        tracer.set_clock(lambda: 0)
        tracer.set_clock(lambda: 0)
        epochs = [e["epoch"] for e in events if e["type"] == "epoch"]
        assert epochs == [0, 1]


class TestExecuteJob:
    def test_returns_result_trace_and_telemetry(self):
        events = []
        outcome = worker.execute_job(
            {"experiment": "table6", "config": {"fastpath": True}},
            events.append,
        )
        assert set(outcome) == {"result", "trace", "trace_meta"}
        record = json.loads(outcome["result"].decode("utf-8"))
        assert record["experiment"] == "table6"
        snap = TraceSnapshot.from_bytes(outcome["trace"])
        meta = outcome["trace_meta"]
        assert meta["records_seen"] == snap.records_seen > 0
        assert meta["records_retained"] == snap.num_records
        assert meta["wall_seconds"] > 0
        assert meta["overhead_ratio"] >= 0
        types = [e["type"] for e in events]
        assert types[0] == "running" and types[-1] == "finished"

    def test_result_bytes_stay_trace_free_and_deterministic(self):
        run = lambda: worker.execute_job(  # noqa: E731
            {"experiment": "table6", "config": {}}, lambda data: None
        )
        first, second = run(), run()
        assert first["result"] == second["result"]
        assert b"overhead" not in first["result"]
        assert b"wall_seconds" not in first["result"]


class TestPartitionedJob:
    def test_partitioned_record_matches_single_modulo_config(self):
        import multiprocessing

        if multiprocessing.get_start_method() != "fork":
            import pytest

            pytest.skip("partitioned workers fork from the test process")
        events = []
        sharded = worker.build_record(
            "table6", {"partitions": 2, "sanitize": True}, events.append
        )
        single = worker.build_record(
            "table6", {"partitions": 1, "sanitize": True}, lambda data: None
        )
        assert sharded["rendered"] == single["rendered"]
        assert sharded["result"] == single["result"]
        assert sharded["sanitizer"] == single["sanitizer"]
        # Only the config coordinate (part of the cache key) differs.
        assert sharded["config"]["partitions"] == 2
        marks = [e for e in events if e["type"] == "partitioned"]
        assert len(marks) == 1 and marks[0]["partitions"] == 2


class TestSpecOverride:
    """The ``spec`` config key swaps the machine under the experiment."""

    @staticmethod
    def _register_probe(monkeypatch):
        from repro.experiments import registry
        from repro.kernels.vector_load import measure_vector_load

        experiment = registry.Experiment(
            key="vl-probe",
            description="one vector-load window",
            run=lambda: repr(measure_vector_load(4)),
            render=lambda result: result,
        )
        monkeypatch.setitem(registry.EXPERIMENTS, "vl-probe", experiment)

    def test_spec_reshapes_the_machine(self, monkeypatch):
        from repro.serve.schema import canonical_config

        self._register_probe(monkeypatch)
        default = worker.build_record("vl-probe", canonical_config(None))
        reshaped = worker.build_record(
            "vl-probe", canonical_config({"spec": {"memory_modules": 8}})
        )
        assert reshaped["result"] != default["result"]
        assert reshaped["config"]["spec"]["memory_modules"] == 8

    def test_cedar_spec_reproduces_the_default_result(self, monkeypatch):
        from repro.serve.schema import canonical_config

        self._register_probe(monkeypatch)
        default = worker.build_record("vl-probe", canonical_config(None))
        explicit = worker.build_record(
            "vl-probe", canonical_config({"spec": {}})
        )
        # Same simulation bytes; only the provenance coordinate differs.
        assert explicit["result"] == default["result"]
        assert explicit["config"] != default["config"]

    def test_override_does_not_leak_out_of_the_job(self, monkeypatch):
        from repro.config import DEFAULT_CONFIG, active_config
        from repro.serve.schema import canonical_config

        self._register_probe(monkeypatch)
        worker.build_record(
            "vl-probe", canonical_config({"spec": {"memory_modules": 8}})
        )
        assert active_config() is DEFAULT_CONFIG
