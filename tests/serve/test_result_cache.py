"""Tests for the content-addressed result cache (repro.serve.cache)."""

import os

from repro.serve import ResultCache

KEY_A = "a" * 64
KEY_B = "b" * 64


class TestMemoryOnly:
    def test_get_put_round_trip(self):
        cache = ResultCache()
        assert cache.get(KEY_A) is None
        cache.put(KEY_A, b"payload")
        assert cache.get(KEY_A) == b"payload"
        assert KEY_A in cache
        assert KEY_B not in cache

    def test_len_and_keys(self):
        cache = ResultCache()
        cache.put(KEY_B, b"2")
        cache.put(KEY_A, b"1")
        assert len(cache) == 2
        assert cache.keys() == [KEY_A, KEY_B]

    def test_overwrite_replaces(self):
        cache = ResultCache()
        cache.put(KEY_A, b"old")
        cache.put(KEY_A, b"new")
        assert cache.get(KEY_A) == b"new"
        assert len(cache) == 1


class TestDiskSpill:
    def test_entries_spill_to_named_files(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(KEY_A, b"payload")
        assert (tmp_path / f"{KEY_A}.json").read_bytes() == b"payload"

    def test_restarted_server_keeps_warm_set(self, tmp_path):
        ResultCache(str(tmp_path)).put(KEY_A, b"payload")
        reloaded = ResultCache(str(tmp_path))
        assert reloaded.get(KEY_A) == b"payload"
        assert reloaded.keys() == [KEY_A]

    def test_disk_fallback_populates_memory(self, tmp_path):
        ResultCache(str(tmp_path)).put(KEY_A, b"payload")
        reloaded = ResultCache(str(tmp_path))
        assert reloaded.get(KEY_A) == b"payload"
        # Second read served from memory even if the file disappears.
        os.unlink(tmp_path / f"{KEY_A}.json")
        assert reloaded.get(KEY_A) == b"payload"

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(KEY_A, b"1")
        cache.put(KEY_B, b"2")
        assert sorted(os.listdir(tmp_path)) == [
            f"{KEY_A}.json",
            f"{KEY_B}.json",
        ]

    def test_keys_ignores_foreign_files(self, tmp_path):
        (tmp_path / "README.txt").write_text("not a cache entry")
        (tmp_path / "nothex.json").write_text("{}")
        cache = ResultCache(str(tmp_path))
        cache.put(KEY_A, b"1")
        assert cache.keys() == [KEY_A]

    def test_directory_created_if_missing(self, tmp_path):
        target = tmp_path / "nested" / "cache"
        cache = ResultCache(str(target))
        cache.put(KEY_A, b"1")
        assert cache.get(KEY_A) == b"1"
        assert target.is_dir()
