"""End-to-end tests for the serve HTTP tier.

The server runs on a background thread with its own event loop; tests
talk to it through :class:`repro.serve.ServeClient` -- the same code path
``cedar-repro submit`` and the CI smoke job use.  Most tests inject a
stub executor so they are fast and deterministic; two tests run a real
(small) simulation to pin down the acceptance criteria: a warm-cache
result is byte-identical to the cold run, and N concurrent identical
submissions cost exactly one simulation.
"""

import asyncio
import concurrent.futures
import json
import threading
import time

import pytest

from repro.errors import ServeError, WorkerCrashError
from repro.metrics import MetricsRegistry, parse_prometheus
from repro.serve import JobRegistry, JobServer, ResultCache, ServeClient
from repro.version import version_fingerprint


class StubExecutor:
    """Injected executor: records calls, optionally blocks or fails."""

    def __init__(self, trace=None, trace_meta=None):
        self.calls = []
        self.gate = None
        self.failure = None
        self.trace = trace
        self.trace_meta = trace_meta

    async def __call__(self, job, post):
        self.calls.append(job.id)
        if self.gate is not None:
            await self.gate.wait()
        if self.failure is not None:
            raise self.failure
        post("progress", {"records": 1})
        result = b"stub:" + job.cache_key.encode()
        if self.trace is not None:
            # The worker-dict form execute_job returns for real runs.
            return {
                "result": result,
                "trace": self.trace,
                "trace_meta": dict(self.trace_meta or {}),
            }
        return result


class ServerThread:
    """A JobServer on a dedicated thread + event loop, bound to port 0."""

    def __init__(self, registry=None, jobs=1, queue_limit=64, cache_dir=None):
        self.server = JobServer(
            port=0, jobs=jobs, queue_limit=queue_limit,
            cache_dir=cache_dir, registry=registry,
        )
        self.loop = asyncio.new_event_loop()
        self._stop = asyncio.Event()
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="serve-test", daemon=True
        )

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self._main())
        self.loop.close()

    async def _main(self):
        await self.server.start()
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await self.server.stop()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(timeout=10), "server failed to start"
        return self

    def __exit__(self, *exc_info):
        self.loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10)

    def call_in_loop(self, callback):
        self.loop.call_soon_threadsafe(callback)

    @property
    def client(self):
        return ServeClient(port=self.server.port, timeout=30)


def stub_server(jobs=1, queue_limit=64, trace=None, trace_meta=None):
    stub = StubExecutor(trace=trace, trace_meta=trace_meta)
    registry = JobRegistry(
        ResultCache(), MetricsRegistry(),
        jobs=jobs, queue_limit=queue_limit, execute=stub,
    )
    return ServerThread(registry=registry), stub


def wait_for(predicate, timeout=10):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.01)


class TestHttpBasics:
    def test_healthz_and_error_routes(self):
        server, _ = stub_server()
        with server:
            client = server.client
            health = client.healthz()
            assert health["status"] == "ok"
            assert health["code_version"] == version_fingerprint()
            assert health["workers"] == 1

            with pytest.raises(ServeError) as info:
                client.job("j999")
            assert info.value.status == 404

            status, _, _ = client._request("GET", "/no/such/route")
            assert status == 404
            status, _, _ = client._request("DELETE", "/jobs")
            assert status == 405
            status, _, _ = client._request("POST", "/jobs", b"{not json")
            assert status == 400

            with pytest.raises(ServeError) as info:
                client.submit("table99")
            assert info.value.status == 404
            with pytest.raises(ServeError) as info:
                client.submit("table2", config={"warp": True})
            assert info.value.status == 400

    def test_submit_wait_result_and_listing(self):
        server, stub = stub_server()
        with server:
            client = server.client
            document = client.submit("table2")
            job_id = document["job"]["id"]
            assert document["cache_status"] == "miss"

            final = client.wait(job_id, timeout=10)
            assert final["state"] == "done"
            assert final["source"] == "computed"
            body, cache_status = client.result(job_id)
            assert cache_status == "miss"
            assert body.startswith(b"stub:")

            # Identical resubmission: synchronous cache hit, same bytes.
            second = client.submit("table2")
            assert second["cache_status"] == "hit"
            assert second["job"]["state"] == "done"
            warm, warm_status = client.result(second["job"]["id"])
            assert warm_status == "hit"
            assert warm == body
            assert stub.calls == [job_id]

            listed = client.jobs()
            assert [doc["id"] for doc in listed] == [job_id, second["job"]["id"]]

    def test_sweep_submission(self):
        server, stub = stub_server(jobs=2)
        with server:
            client = server.client
            document = client.submit(experiments=["table2", "table5"])
            assert "job" not in document  # single-job shorthand absent
            ids = [doc["id"] for doc in document["jobs"]]
            assert len(ids) == 2
            for job_id in ids:
                assert client.wait(job_id, timeout=10)["state"] == "done"
            assert sorted(stub.calls) == sorted(ids)

    def test_event_stream_replays_after_completion(self):
        server, _ = stub_server()
        with server:
            client = server.client
            job_id = client.submit("table5")["job"]["id"]
            client.wait(job_id, timeout=10)
            events = list(client.events(job_id))
            names = [name for name, _ in events]
            assert names == [
                "submitted", "queued", "running", "progress", "done", "end",
            ]
            done_data = dict(events)["done"]
            assert done_data["source"] == "computed"

    def test_result_conflict_while_running(self):
        server, stub = stub_server()
        stub.gate = asyncio.Event()
        with server:
            client = server.client
            job_id = client.submit("table2")["job"]["id"]
            with pytest.raises(ServeError) as info:
                client.result(job_id)
            assert info.value.status == 409
            server.call_in_loop(stub.gate.set)
            client.wait(job_id, timeout=10)

    def test_failed_job_reports_structured_error(self):
        server, stub = stub_server()
        stub.failure = WorkerCrashError(
            "table2", "simulated crash", exitcode=11, worker_traceback="tb"
        )
        with server:
            client = server.client
            job_id = client.submit("table2")["job"]["id"]
            final = client.wait(job_id, timeout=10)
            assert final["state"] == "failed"
            assert final["error"]["experiment"] == "table2"
            assert final["error"]["exitcode"] == 11
            with pytest.raises(ServeError) as info:
                client.result(job_id)
            assert info.value.status == 500
            samples = parse_prometheus(client.metrics_text())
            assert (
                samples["serve_jobs_failed_total{experiment=table2}"] == 1
            )

    def test_full_queue_is_503(self):
        server, stub = stub_server(jobs=1, queue_limit=1)
        stub.gate = asyncio.Event()
        with server:
            client = server.client
            client.submit("table1")
            wait_for(lambda: len(stub.calls) == 1)
            client.submit("table2")
            with pytest.raises(ServeError) as info:
                client.submit("table5")
            assert info.value.status == 503
            server.call_in_loop(stub.gate.set)


def _stub_trace_bytes():
    """A tiny but real columnar snapshot for the stub executor to serve."""
    from repro.trace import Tracer

    tracer = Tracer(enabled=True, columnar=True)
    tracer.complete("stub", "work", 0, 10)
    tracer.instant("stub", "posted", cycle=5, value=1)
    return tracer.snapshot().to_bytes()


class TestTraceTelemetry:
    """GET /jobs/<id>/trace plus the serve-tier trace gauges."""

    _META = {"overhead_ratio": 0.015, "buffer_bytes": 4096, "records_seen": 2}

    def _traced_server(self, **kwargs):
        return stub_server(
            trace=_stub_trace_bytes(), trace_meta=self._META, **kwargs
        )

    def test_trace_endpoint_streams_the_columnar_snapshot(self):
        from repro.trace import TraceSnapshot

        server, _ = self._traced_server()
        with server:
            client = server.client
            job_id = client.submit("table2")["job"]["id"]
            client.wait(job_id, timeout=10)
            payload = client.trace(job_id)
            snap = TraceSnapshot.from_bytes(payload)
            assert snap.counts["spans"] == 1
            assert snap.counts["instants"] == 1
            # The job document carries the telemetry sidecar.
            assert client.job(job_id)["trace"]["overhead_ratio"] == 0.015

    def test_trace_is_409_while_queued_or_running(self):
        server, stub = self._traced_server()
        stub.gate = asyncio.Event()
        with server:
            client = server.client
            job_id = client.submit("table2")["job"]["id"]
            with pytest.raises(ServeError) as info:
                client.trace(job_id)
            assert info.value.status == 409
            server.call_in_loop(stub.gate.set)
            client.wait(job_id, timeout=10)

    def test_cache_hit_job_has_no_trace_404(self):
        server, _ = self._traced_server()
        with server:
            client = server.client
            cold = client.submit("table2")["job"]["id"]
            client.wait(cold, timeout=10)
            warm = client.submit("table2")["job"]["id"]  # synchronous hit
            with pytest.raises(ServeError) as info:
                client.trace(warm)
            assert info.value.status == 404
            assert "cache hits" in str(info.value)

    def test_healthz_and_metrics_report_trace_telemetry(self):
        server, _ = self._traced_server(jobs=1)
        with server:
            client = server.client
            assert "trace_overhead_ratio" not in client.healthz()
            for key in ("table2", "table5"):
                job_id = client.submit(key)["job"]["id"]
                client.wait(job_id, timeout=10)
            health = client.healthz()
            assert health["trace_overhead_ratio"] == 0.015
            assert health["trace_buffer_bytes"] == 4096
            samples = parse_prometheus(client.metrics_text())
            # The gauge accumulates held wire bytes across resolved jobs.
            assert samples["serve_trace_buffer_bytes"] == 2 * len(
                _stub_trace_bytes()
            )

    def test_untraced_executor_keeps_legacy_shape(self):
        server, _ = stub_server()  # raw-bytes executor, no trace dict
        with server:
            client = server.client
            job_id = client.submit("table2")["job"]["id"]
            client.wait(job_id, timeout=10)
            assert "trace" not in client.job(job_id)
            with pytest.raises(ServeError) as info:
                client.trace(job_id)
            assert info.value.status == 404


class TestCoalescingAcceptance:
    def test_concurrent_identical_posts_cost_one_simulation(self):
        """N concurrent identical POST /jobs -> exactly one execution."""
        concurrency = 6
        server, stub = stub_server(jobs=2)
        stub.gate = asyncio.Event()
        with server:
            client = server.client
            with concurrent.futures.ThreadPoolExecutor(concurrency) as pool:
                documents = list(
                    pool.map(
                        lambda _: client.submit("table2"), range(concurrency)
                    )
                )
            # All submissions are in (executor still gated): release the run.
            server.call_in_loop(stub.gate.set)

            ids = [doc["job"]["id"] for doc in documents]
            bodies = set()
            for job_id in ids:
                assert client.wait(job_id, timeout=10)["state"] == "done"
                bodies.add(client.result(job_id)[0])

            assert len(stub.calls) == 1  # exactly one simulation ran
            assert len(bodies) == 1  # and everyone got its bytes
            samples = parse_prometheus(client.metrics_text())
            assert samples["serve_coalesced_requests_total"] == concurrency - 1
            assert samples["serve_cache_misses_total"] == 1
            assert (
                samples["serve_jobs_submitted_total{experiment=table2}"]
                == concurrency
            )
            sources = sorted(
                client.job(job_id)["source"] for job_id in ids
            )
            assert sources == ["coalesced"] * (concurrency - 1) + ["computed"]


class TestRealSimulation:
    """One real (small) experiment through the full stack.

    This is the warm-vs-cold byte-identity acceptance test: the cold run
    goes HTTP -> queue -> worker process -> canonical bytes, the warm run
    is served from the content-addressed cache, and the two must match
    exactly.
    """

    def test_cold_and_warm_results_are_byte_identical(self, tmp_path):
        with ServerThread(jobs=1, cache_dir=str(tmp_path)) as server:
            client = server.client
            cold_doc = client.submit("table6")
            assert cold_doc["cache_status"] == "miss"
            job_id = cold_doc["job"]["id"]
            assert client.wait(job_id, timeout=120)["state"] == "done"
            cold, cold_status = client.result(job_id)
            assert cold_status == "miss"

            warm_doc = client.submit("table6")
            assert warm_doc["cache_status"] == "hit"
            warm, warm_status = client.result(warm_doc["job"]["id"])
            assert warm_status == "hit"
            assert warm == cold

            record = json.loads(cold.decode("utf-8"))
            assert record["experiment"] == "table6"
            assert record["code_version"] == version_fingerprint()
            assert record["config"] == {
                "fastpath": True, "partitions": 1, "sanitize": False,
                "spec": None,
            }

            samples = parse_prometheus(client.metrics_text())
            assert samples["serve_cache_hits_total"] == 1
            assert samples["serve_cache_misses_total"] == 1
            assert samples["serve_job_latency_ms_count"] == 2

            # The cold run also produced a live columnar trace buffer --
            # fetchable, parseable, and reported in /healthz telemetry.
            from repro.trace import TraceSnapshot

            snap = TraceSnapshot.from_bytes(client.trace(job_id))
            assert snap.records_seen > 0
            assert snap.counter_totals  # real hardware counters flowed
            meta = client.job(job_id)["trace"]
            assert meta["records_seen"] == snap.records_seen
            assert meta["overhead_ratio"] >= 0
            health = client.healthz()
            assert health["trace_buffer_bytes"] > 0
            assert samples["serve_trace_buffer_bytes"] > 0
            # The warm (cache-hit) job never ran, so it has no buffer.
            with pytest.raises(ServeError) as info:
                client.trace(warm_doc["job"]["id"])
            assert info.value.status == 404
