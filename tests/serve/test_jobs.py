"""Tests for job lifecycle, coalescing, and the bounded queue.

These exercise :class:`JobRegistry` with an injected stub executor so the
scheduling logic (cache/coalesce/queue decisions, settlement fan-out,
metrics) is tested deterministically without spawning worker processes.
"""

import asyncio

import pytest

from repro.errors import ServeError, WorkerCrashError
from repro.metrics import MetricsRegistry
from repro.serve import (
    Coalescer,
    JobRegistry,
    JobRequest,
    ResultCache,
    canonical_config,
    cache_key,
)
from repro.version import version_fingerprint


class TestCoalescer:
    def test_lead_follow_settle(self):
        coalescer = Coalescer()
        assert coalescer.leader("k") is None
        coalescer.lead("k", "j1")
        assert coalescer.leader("k") == "j1"
        assert coalescer.follow("k", "j2") == "j1"
        assert coalescer.follow("k", "j3") == "j1"
        assert coalescer.in_flight() == 1
        assert coalescer.settle("k") == ["j2", "j3"]
        assert coalescer.leader("k") is None
        assert coalescer.in_flight() == 0

    def test_double_lead_rejected(self):
        coalescer = Coalescer()
        coalescer.lead("k", "j1")
        with pytest.raises(ValueError, match="already has leader"):
            coalescer.lead("k", "j2")

    def test_follow_without_leader_rejected(self):
        with pytest.raises(ValueError, match="no in-flight leader"):
            Coalescer().follow("k", "j1")

    def test_settle_unknown_key_is_empty(self):
        assert Coalescer().settle("never-led") == []


def request_for(experiment, config=None):
    return JobRequest(
        experiments=(experiment,), config=canonical_config(config)
    )


class Harness:
    """A registry wired to a stub executor that records every execution."""

    def __init__(self, jobs=1, queue_limit=64, cache_dir=None):
        self.executions = []
        self.gate = None  # when set, executions block until it fires
        self.failure = None  # when set, executions raise it
        self.metrics = MetricsRegistry()
        self.cache = ResultCache(cache_dir)
        self.registry = JobRegistry(
            self.cache,
            self.metrics,
            jobs=jobs,
            queue_limit=queue_limit,
            execute=self._execute,
        )

    async def _execute(self, job, post):
        self.executions.append(job.experiment)
        if self.gate is not None:
            await self.gate.wait()
        if self.failure is not None:
            raise self.failure
        post("progress", {"records": 1})
        return b"result:" + job.cache_key.encode()

    def counter(self, name, experiment=None):
        labels = {"experiment": experiment} if experiment else None
        return self.metrics.counter(name, labels).value


def run_with_harness(body, **kwargs):
    async def main():
        harness = Harness(**kwargs)
        harness.registry.start()
        try:
            await body(harness)
        finally:
            await harness.registry.close()

    asyncio.run(main())


async def settled(job, timeout=10):
    await asyncio.wait_for(job.done.wait(), timeout=timeout)
    return job


class TestJobLifecycle:
    def test_miss_computes_then_hit_serves_identical_bytes(self):
        async def body(harness):
            (first,) = harness.registry.submit(request_for("table2"))
            await settled(first)
            assert first.state == "done"
            assert first.source == "computed"
            assert harness.executions == ["table2"]

            (second,) = harness.registry.submit(request_for("table2"))
            # Cache hits resolve synchronously at submit time.
            assert second.state == "done"
            assert second.source == "cache"
            assert second.result == first.result
            assert harness.executions == ["table2"]  # no second run
            assert harness.counter("serve_cache_hits_total") == 1
            assert harness.counter("serve_cache_misses_total") == 1
            assert (
                harness.counter("serve_jobs_completed_total", "table2") == 2
            )

        run_with_harness(body)

    def test_prewarmed_cache_never_executes(self):
        async def body(harness):
            key = cache_key(
                "table5", canonical_config(None), version_fingerprint()
            )
            harness.cache.put(key, b"warm bytes")
            (job,) = harness.registry.submit(request_for("table5"))
            assert job.state == "done"
            assert job.source == "cache"
            assert job.result == b"warm bytes"
            assert harness.executions == []

        run_with_harness(body)

    def test_config_is_part_of_the_identity(self):
        async def body(harness):
            (plain,) = harness.registry.submit(request_for("table2"))
            (sanitized,) = harness.registry.submit(
                request_for("table2", {"sanitize": True})
            )
            await settled(plain)
            await settled(sanitized)
            assert plain.cache_key != sanitized.cache_key
            assert plain.result != sanitized.result
            assert harness.executions == ["table2", "table2"]

        run_with_harness(body)

    def test_sweep_request_creates_one_job_per_experiment(self):
        async def body(harness):
            jobs = harness.registry.submit(
                JobRequest(
                    experiments=("table2", "table5"),
                    config=canonical_config(None),
                )
            )
            assert [job.experiment for job in jobs] == ["table2", "table5"]
            for job in jobs:
                await settled(job)
            assert sorted(harness.executions) == ["table2", "table5"]

        run_with_harness(body)

    def test_event_history_replays_after_completion(self):
        async def body(harness):
            (job,) = harness.registry.submit(request_for("table2"))
            await settled(job)
            names = [event["event"] async for event in job.stream()]
            assert names == [
                "submitted", "queued", "running", "progress", "done",
            ]
            sequences = [event["seq"] for event in job.events]
            assert sequences == list(range(len(sequences)))

        run_with_harness(body)

    def test_unknown_job_id_is_404(self):
        async def body(harness):
            with pytest.raises(ServeError) as info:
                harness.registry.get("j999")
            assert info.value.status == 404

        run_with_harness(body)


class TestCoalescing:
    def test_identical_in_flight_requests_run_once(self):
        async def body(harness):
            harness.gate = asyncio.Event()
            jobs = [
                harness.registry.submit(request_for("table2"))[0]
                for _ in range(4)
            ]
            # Let the leader start before releasing it.
            await asyncio.sleep(0)
            harness.gate.set()
            for job in jobs:
                await settled(job)

            assert harness.executions == ["table2"]  # exactly one simulation
            assert harness.counter("serve_coalesced_requests_total") == 3
            assert jobs[0].source == "computed"
            assert [job.source for job in jobs[1:]] == ["coalesced"] * 3
            bodies = {job.result for job in jobs}
            assert len(bodies) == 1  # everyone got the leader's bytes
            assert (
                harness.counter("serve_jobs_completed_total", "table2") == 4
            )

        run_with_harness(body)

    def test_followers_inherit_leader_failure(self):
        async def body(harness):
            harness.gate = asyncio.Event()
            harness.failure = WorkerCrashError(
                "table2", "worker died", exitcode=9, worker_traceback="trace"
            )
            leader = harness.registry.submit(request_for("table2"))[0]
            follower = harness.registry.submit(request_for("table2"))[0]
            await asyncio.sleep(0)
            harness.gate.set()
            await settled(leader)
            await settled(follower)

            assert leader.state == follower.state == "failed"
            assert leader.source == "computed"
            assert follower.source == "coalesced"
            for job in (leader, follower):
                assert job.error["experiment"] == "table2"
                assert job.error["exitcode"] == 9
            assert harness.counter("serve_jobs_failed_total", "table2") == 2
            # A failure is not cached: the next submit runs again.
            harness.failure = None
            retry = harness.registry.submit(request_for("table2"))[0]
            await settled(retry)
            assert retry.state == "done"
            assert harness.executions == ["table2", "table2"]

        run_with_harness(body)

    def test_completed_leader_does_not_capture_later_requests(self):
        async def body(harness):
            first = harness.registry.submit(request_for("table2"))[0]
            await settled(first)
            later = harness.registry.submit(request_for("table2"))[0]
            # In-flight set is empty, so this is a cache hit, not a follow.
            assert later.source == "cache"
            assert harness.counter("serve_coalesced_requests_total") == 0

        run_with_harness(body)


class TestBoundedQueue:
    def test_full_queue_sheds_load_with_503(self):
        async def body(harness):
            harness.gate = asyncio.Event()
            # jobs=1 and queue_limit=1: one running, one waiting.
            harness.registry.submit(request_for("table1"))
            for _ in range(200):  # wait for the worker to drain the queue
                if harness.executions:
                    break
                await asyncio.sleep(0.01)
            assert harness.executions == ["table1"]
            harness.registry.submit(request_for("table2"))
            with pytest.raises(ServeError) as info:
                harness.registry.submit(request_for("table5"))
            assert info.value.status == 503
            assert "queue full" in str(info.value)
            # Identical requests still coalesce: no queue slot needed.
            follower = harness.registry.submit(request_for("table2"))[0]
            assert follower.events[-1]["event"] == "coalesced"
            harness.gate.set()

        run_with_harness(body, jobs=1, queue_limit=1)

    def test_worker_count_validated(self):
        with pytest.raises(ServeError, match="worker count"):
            JobRegistry(ResultCache(), MetricsRegistry(), jobs=0)
