"""Tests for serve wire schemas and cache-key derivation."""

import pytest

from repro.errors import ServeError
from repro.experiments.registry import EXPERIMENTS
from repro.serve import (
    DEFAULT_JOB_CONFIG,
    cache_key,
    canonical_config,
    canonical_config_json,
    parse_job_request,
)


class TestCanonicalConfig:
    def test_defaults_fill_in(self):
        assert canonical_config(None) == DEFAULT_JOB_CONFIG
        assert canonical_config({}) == DEFAULT_JOB_CONFIG

    def test_override_applies(self):
        config = canonical_config({"sanitize": True})
        assert config["sanitize"] is True
        assert config["fastpath"] is True

    def test_keys_sorted(self):
        config = canonical_config({"sanitize": True, "fastpath": False})
        assert list(config) == sorted(config)

    def test_unknown_key_rejected(self):
        with pytest.raises(ServeError, match="unknown config key"):
            canonical_config({"warp_speed": True})

    def test_non_boolean_rejected(self):
        with pytest.raises(ServeError, match="must be a boolean"):
            canonical_config({"sanitize": "yes"})

    def test_non_mapping_rejected(self):
        with pytest.raises(ServeError, match="JSON object"):
            canonical_config(["sanitize"])

    def test_explicit_default_canonicalizes_identically(self):
        # {} and {"sanitize": false} mean the same simulation, so they
        # must serialize -- and therefore hash -- identically.
        assert canonical_config_json(canonical_config({})) == (
            canonical_config_json(canonical_config({"sanitize": False}))
        )

    def test_partitions_default_is_single(self):
        assert canonical_config(None)["partitions"] == 1

    def test_partitions_override_applies(self):
        assert canonical_config({"partitions": 4})["partitions"] == 4

    @pytest.mark.parametrize("bad", [0, -1, True, False, "2", 2.0, None])
    def test_partitions_must_be_positive_integer(self, bad):
        with pytest.raises(ServeError, match="integer >= 1"):
            canonical_config({"partitions": bad})


class TestCacheKey:
    FP = "1.0.0+0123456789abcdef"

    def test_stable(self):
        config = canonical_config(None)
        assert cache_key("table2", config, self.FP) == cache_key(
            "table2", config, self.FP
        )

    def test_each_coordinate_matters(self):
        config = canonical_config(None)
        base = cache_key("table2", config, self.FP)
        assert cache_key("table1", config, self.FP) != base
        assert cache_key(
            "table2", canonical_config({"sanitize": True}), self.FP
        ) != base
        assert cache_key(
            "table2", canonical_config({"partitions": 2}), self.FP
        ) != base
        assert cache_key("table2", config, "1.0.0+ffffffffffffffff") != base

    def test_key_is_hex_sha256(self):
        key = cache_key("table2", canonical_config(None), self.FP)
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")


class TestParseJobRequest:
    def test_single_experiment(self):
        request = parse_job_request({"experiment": "table2"}, EXPERIMENTS)
        assert request.experiments == ("table2",)
        assert request.config == DEFAULT_JOB_CONFIG

    def test_all_expands_to_sorted_suite(self):
        request = parse_job_request({"experiment": "all"}, EXPERIMENTS)
        assert request.experiments == tuple(sorted(EXPERIMENTS))

    def test_experiments_list(self):
        request = parse_job_request(
            {"experiments": ["table5", "table6"]}, EXPERIMENTS
        )
        assert request.experiments == ("table5", "table6")

    def test_config_passes_through(self):
        request = parse_job_request(
            {"experiment": "table2", "config": {"sanitize": True}}, EXPERIMENTS
        )
        assert request.config["sanitize"] is True

    def test_unknown_experiment_is_404(self):
        with pytest.raises(ServeError) as info:
            parse_job_request({"experiment": "table99"}, EXPERIMENTS)
        assert info.value.status == 404
        assert "table99" in str(info.value)

    @pytest.mark.parametrize(
        "payload, match",
        [
            ("not an object", "JSON object"),
            ({}, "exactly one of"),
            ({"experiment": "a", "experiments": ["b"]}, "exactly one of"),
            ({"experiment": 7}, "must be a string"),
            ({"experiments": []}, "non-empty list"),
            ({"experiments": ["table2", 3]}, "non-empty list"),
            ({"experiment": "table2", "bogus": 1}, "unknown request field"),
        ],
    )
    def test_malformed_requests_are_400(self, payload, match):
        with pytest.raises(ServeError, match=match) as info:
            parse_job_request(payload, EXPERIMENTS)
        assert info.value.status == 400


class TestSpecConfigKey:
    def test_default_is_the_paper_machine(self):
        assert canonical_config(None)["spec"] is None

    def test_spec_canonicalizes_to_explicit_fields(self):
        config = canonical_config({"spec": {"memory_modules": 16}})
        assert config["spec"]["memory_modules"] == 16
        assert config["spec"]["clusters"] == 4  # default made explicit

    def test_omitted_defaults_hash_identically(self):
        # Two spellings of the same machine must cost one simulation.
        sparse = canonical_config({"spec": {"memory_modules": 16}})
        explicit = canonical_config(
            {"spec": {"memory_modules": 16, "clusters": 4}}
        )
        assert canonical_config_json(sparse) == canonical_config_json(explicit)

    def test_spec_changes_the_cache_key(self):
        default = cache_key("table2", canonical_config(None), "fp")
        spec = cache_key(
            "table2", canonical_config({"spec": {"memory_modules": 16}}), "fp"
        )
        assert default != spec

    def test_cedar_spec_still_differs_from_no_spec(self):
        # An explicit CEDAR_SPEC names the builder path; runs are
        # byte-identical, but provenance keeps the coordinates apart.
        explicit = cache_key("table2", canonical_config({"spec": {}}), "fp")
        default = cache_key("table2", canonical_config(None), "fp")
        assert explicit != default

    def test_invalid_spec_is_rejected_naming_the_field(self):
        with pytest.raises(ServeError, match="memory_modules"):
            canonical_config({"spec": {"memory_modules": 33}})

    def test_unknown_spec_field_rejected(self):
        with pytest.raises(ServeError, match="num_modules"):
            canonical_config({"spec": {"num_modules": 16}})

    def test_non_object_spec_rejected(self):
        with pytest.raises(ServeError, match="JSON object"):
            canonical_config({"spec": [16]})
