"""Golden equivalence: the builder is a refactor, not a new machine.

``CEDAR_SPEC`` must elaborate to *exactly* the configuration the
hard-coded constructor always used, and every artifact produced through
the builder path must be byte-identical to the direct-construction path.
A non-Cedar spec must survive partitioned execution unchanged too --
sharding and the ambient override have to compose.
"""

import multiprocessing

import pytest

from repro.builder import CEDAR_SPEC, MachineSpec, build, build_config
from repro.config import DEFAULT_CONFIG, active_config, overriding
from repro.hardware.machine import CedarMachine
from repro.kernels.tridiag_matvec import measure_tridiag
from repro.kernels.vector_load import measure_vector_load
from repro.results import canonical_bytes, jsonable
from repro.trace import Tracer, tracing


class TestCedarSpecIsTheMachine:
    def test_elaborates_to_the_default_config(self):
        assert build_config(CEDAR_SPEC) == DEFAULT_CONFIG

    def test_built_machine_carries_its_spec(self):
        machine = build(CEDAR_SPEC)
        assert machine.spec is CEDAR_SPEC
        assert machine.config == DEFAULT_CONFIG

    def test_direct_construction_leaves_spec_unset(self):
        assert CedarMachine().spec is None

    def test_kernel_run_identical_through_both_paths(self):
        direct = measure_vector_load(4)
        with overriding(build_config(CEDAR_SPEC)):
            elaborated = measure_vector_load(4)
        assert elaborated == direct  # frozen dataclass, field-exact

    def test_result_document_bytes_identical(self):
        direct = canonical_bytes(jsonable(measure_tridiag(4)))
        with overriding(build_config(CEDAR_SPEC)):
            elaborated = canonical_bytes(jsonable(measure_tridiag(4)))
        assert elaborated == direct

    def test_trace_bytes_identical(self):
        def traced_run() -> bytes:
            tracer = Tracer(columnar=True)
            with tracing(tracer):
                measure_vector_load(4)
            return tracer.snapshot().to_bytes()

        direct = traced_run()
        with overriding(build_config(CEDAR_SPEC)):
            elaborated = traced_run()
        assert elaborated == direct


class TestAmbientOverride:
    def test_active_config_defaults_to_the_paper(self):
        assert active_config() is DEFAULT_CONFIG

    def test_override_nests_and_restores(self):
        inner = build_config(MachineSpec(memory_modules=16))
        outer = build_config(MachineSpec(memory_modules=8))
        with overriding(outer):
            assert active_config() is outer
            with overriding(inner):
                assert active_config() is inner
            assert active_config() is outer
        assert active_config() is DEFAULT_CONFIG

    def test_override_restored_when_the_block_raises(self):
        with pytest.raises(RuntimeError):
            with overriding(build_config(MachineSpec(clusters=2))):
                raise RuntimeError("boom")
        assert active_config() is DEFAULT_CONFIG

    def test_override_actually_changes_the_machine(self):
        with overriding(build_config(MachineSpec(memory_modules=8))):
            run = measure_vector_load(4)
        assert run != measure_vector_load(4)

    def test_table2_run_unit_resolves_the_ambient_config(self, monkeypatch):
        # Regression: partitioned serve jobs call run_unit(unit) with no
        # explicit config; the RK cell dereferences config directly, so
        # run_unit must resolve the override before dispatching.
        from repro.experiments import table2

        seen = {}

        def probe(num_ces, config):
            seen["config"] = config
            return measure_vector_load(2, config)

        monkeypatch.setitem(table2.KERNELS, "VL", probe)
        override = build_config(MachineSpec(memory_modules=16))
        with overriding(override):
            table2.run_unit("VL:8")
        assert seen["config"] is override


#: A deliberately non-Cedar shape: half the memory modules, deeper port
#: queues, coarser interleave.
NON_CEDAR = MachineSpec(
    memory_modules=16, port_queue_words=4, interleave_words=2
)

_UNITS = {
    "vl:4": lambda: measure_vector_load(4),
    "vl:8": lambda: measure_vector_load(8),
    "td:4": lambda: measure_tridiag(4),
    "td:8": lambda: measure_tridiag(8),
}


def _register_kernel_grid(monkeypatch):
    from repro.experiments import registry

    experiment = registry.Experiment(
        key="kernel-grid",
        description="real kernels as independent units",
        run=lambda: {name: repr(run()) for name, run in _UNITS.items()},
        render=lambda result: "\n".join(
            f"{name}: {result[name]}" for name in sorted(result)
        ),
        units=lambda: list(_UNITS),
        run_unit=lambda name: repr(_UNITS[name]()),
        combine=lambda results: {name: results[name] for name in _UNITS},
    )
    monkeypatch.setitem(registry.EXPERIMENTS, "kernel-grid", experiment)
    return experiment


class TestPartitionedNonCedarSpec:
    def test_partitions_2_byte_identical_under_spec_override(self, monkeypatch):
        """Sharding must be invisible on a non-Cedar machine too.

        The partition workers fork inside the ``overriding`` block, so
        they inherit the elaborated config; every artifact (rendered,
        result, sanitizer summary, trace bytes) must match the
        single-partition run exactly -- and differ from the Cedar
        machine's, proving the override reached the workers.
        """
        if multiprocessing.get_start_method() != "fork":
            pytest.skip("workers inherit the override via fork")
        from repro.partition import run_partitioned

        _register_kernel_grid(monkeypatch)
        cedar = run_partitioned("kernel-grid", 1, sanitized=True, traced=True)
        with overriding(build_config(NON_CEDAR)):
            single = run_partitioned(
                "kernel-grid", 1, sanitized=True, traced=True
            )
            sharded = run_partitioned(
                "kernel-grid", 2, sanitized=True, traced=True
            )
        assert sharded.rendered == single.rendered
        assert sharded.result == single.result
        assert sharded.sanitizer == single.sanitizer
        assert sharded.sanitizer["violations"] == 0
        assert sharded.trace_bytes == single.trace_bytes
        assert single.result != cedar.result
