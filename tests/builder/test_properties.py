"""Property suite: every valid spec elaborates to a machine that *works*.

Hypothesis draws random valid :class:`MachineSpec` shapes, elaborates
each, and runs the stream workload with the invariant sanitizer armed
throughout construction and execution.  The claims:

* elaboration agrees with the spec (CE count, stages, tag bits, module
  count, sync-processor placement, queue depths, prefetch capacity);
* the kernel runs to completion on every shape -- no deadlock, no
  wedged queue, whatever the contention pattern;
* zero sanitizer violations, including the end-of-run packet
  conservation ledger (``finalize`` proves injected == delivered).

Shapes are kept small (<= 16 CEs, <= 32 modules) so the suite stays
inside CI time; the *structure* space (radix, interleave, partial sync
coverage, queue depths) is what varies.
"""

from hypothesis import given, settings, strategies as st

from repro.builder import MachineSpec, build
from repro.builder.workload import stream_kernel
from repro.hardware import sanitize

#: Valid-by-construction field strategies, kept small enough to simulate.
specs = st.builds(
    MachineSpec,
    clusters=st.sampled_from([1, 2, 4]),
    ces_per_cluster=st.sampled_from([1, 2, 4]),
    switch_radix=st.sampled_from([2, 4, 8]),
    port_queue_words=st.sampled_from([1, 2, 4]),
    memory_modules=st.sampled_from([2, 4, 8, 16, 32]),
    interleave_words=st.sampled_from([1, 2, 4]),
    sync_processors=st.sampled_from([None, 1, 2]),
    prefetch_buffer_words=st.sampled_from([32, 64, 512]),
)


class TestEveryValidShapeRuns:
    @settings(max_examples=30, deadline=None)
    @given(spec=specs)
    def test_elaborate_run_and_conserve(self, spec):
        with sanitize.sanitizing() as sanitizer:
            machine = build(spec)
            # The elaborated graph matches the declared shape.
            assert len(machine.all_ces) == spec.num_ces
            assert machine.forward.num_stages == spec.stage_count
            assert machine.forward.routing_tag_bits == spec.routing_tag_bits
            assert machine.reverse.num_stages == spec.stage_count
            modules = machine.global_memory.modules
            assert len(modules) == spec.memory_modules
            equipped = [m for m in modules if m.sync is not None]
            assert len(equipped) == spec.sync_processor_count
            assert equipped == modules[: spec.sync_processor_count]
            assert (
                machine.config.prefetch.buffer_words
                == spec.prefetch_buffer_words
            )
            assert (
                machine.config.network.port_queue_words
                == spec.port_queue_words
            )
            # The stream workload completes on every shape (run_kernel
            # raises on deadlock), under full invariant checking.
            cycles = machine.run_kernel(
                stream_kernel(machine.config, blocks=2),
                num_ces=spec.num_ces,
            )
            assert cycles > 0
            assert machine.total_flops > 0
            # End-of-run ledgers: packet conservation in both networks,
            # request/reply balance in every module.
            sanitizer.finalize()
        assert sanitizer.violations == 0
        summary = sanitizer.summary()
        assert summary["violations"] == 0
        # Conservation/balance ledgers ran: per-packet during the run plus
        # one end-of-run check per network and per module in finalize().
        assert summary["checks"]["network.conservation"] >= 2
        assert summary["checks"]["memory.balance"] >= spec.memory_modules
        assert summary["total_checks"] > 0

    @settings(max_examples=15, deadline=None)
    @given(spec=specs)
    def test_runs_are_deterministic_per_shape(self, spec):
        def run() -> tuple:
            machine = build(spec)
            cycles = machine.run_kernel(
                stream_kernel(machine.config, blocks=2),
                num_ces=spec.num_ces,
            )
            return cycles, machine.total_flops, machine.engine.events_dispatched

        assert run() == run()
