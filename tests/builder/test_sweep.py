"""Sweep artifacts: grid expansion, determinism, Pareto, failure capture."""

import json
import multiprocessing

import pytest

from repro.builder import expand_grid, pareto_front, render_report, run_sweep
from repro.builder.sweep import SWEEP_SCHEMA, canonical_json, run_point
from repro.cli import main

#: A 2x2x2 grid of tiny (fast-to-simulate) machines: 8 valid points.
GRID_AXES = {
    "clusters": [1, 2],
    "ces_per_cluster": [2, 4],
    "memory_modules": [4, 8],
}

#: Probe length for tests: short but past the pipeline fill.
BLOCKS = 2


class TestGridExpansion:
    def test_cartesian_product_in_declared_order(self):
        grid = expand_grid({"clusters": [1, 2], "memory_modules": [4, 8]})
        assert grid == [
            {"clusters": 1, "memory_modules": 4},
            {"clusters": 1, "memory_modules": 8},
            {"clusters": 2, "memory_modules": 4},
            {"clusters": 2, "memory_modules": 8},
        ]

    def test_empty_axes_expand_to_nothing(self):
        assert expand_grid({}) == []


class TestRunPoint:
    def test_valid_point_normalizes_the_spec(self):
        record = run_point({"memory_modules": 4, "clusters": 1}, blocks=BLOCKS)
        assert "error" not in record
        assert record["spec"]["memory_modules"] == 4
        assert record["spec"]["ces_per_cluster"] == 8  # default made explicit
        metrics = record["metrics"]
        assert metrics["mflops"] > 0
        assert metrics["speedup"] > 0
        assert metrics["cycles"] > 0
        assert metrics["events_dispatched"] > 0
        assert metrics["network_conflicts"] >= 0

    def test_invalid_point_becomes_a_structured_error(self):
        record = run_point({"memory_modules": 33}, blocks=BLOCKS)
        assert record["error"]["field"] == "memory_modules"
        assert "power of two" in record["error"]["message"]
        assert "metrics" not in record

    def test_unknown_field_is_captured_not_raised(self):
        record = run_point({"num_modules": 8}, blocks=BLOCKS)
        assert record["error"]["field"] == "num_modules"


class TestSweepArtifact:
    @pytest.fixture(scope="class")
    def artifact(self):
        grid = expand_grid(GRID_AXES)
        assert len(grid) == 8
        grid.append({"interleave_words": 3})  # the deliberate bad point
        return run_sweep(grid, jobs=1, blocks=BLOCKS)

    def test_schema_and_shape(self, artifact):
        assert artifact["schema"] == SWEEP_SCHEMA
        assert artifact["workload"]["kernel"] == "stream"
        assert artifact["workload"]["blocks"] == BLOCKS
        assert len(artifact["points"]) == 9

    def test_points_keep_candidate_order(self, artifact):
        clusters = [
            point["spec"].get("clusters")
            for point in artifact["points"][:8]
        ]
        assert clusters == [1, 1, 1, 1, 2, 2, 2, 2]

    def test_failure_is_surfaced_without_killing_the_sweep(self, artifact):
        failed = artifact["points"][8]
        assert failed["error"]["field"] == "interleave_words"
        succeeded = [p for p in artifact["points"] if "metrics" in p]
        assert len(succeeded) == 8

    def test_pareto_front_is_nonempty_and_excludes_failures(self, artifact):
        front = artifact["pareto"]
        assert front
        assert front == sorted(front)
        for index in front:
            assert "metrics" in artifact["points"][index]
        assert 8 not in front

    def test_pareto_members_are_mutually_nondominated(self, artifact):
        from repro.builder.sweep import _dominates

        members = [artifact["points"][i]["metrics"] for i in artifact["pareto"]]
        for a in members:
            for b in members:
                assert not _dominates(a, b) or a is b

    def test_jobs_fanout_is_byte_identical(self, artifact):
        if multiprocessing.get_start_method() != "fork":
            pytest.skip("worker processes fork")
        grid = expand_grid(GRID_AXES)
        grid.append({"interleave_words": 3})
        fanned = run_sweep(grid, jobs=2, blocks=BLOCKS)
        assert canonical_json(fanned) == canonical_json(artifact)

    def test_report_renders_every_point(self, artifact):
        report = render_report(artifact)
        assert "pareto front:" in report
        assert "INVALID (interleave_words)" in report
        # One row per successful point plus header/failures/footer.
        assert len(report.splitlines()) == 1 + 8 + 1 + 1


class TestParetoFront:
    def test_dominated_points_are_excluded(self):
        def point(mflops, speedup, conflicts):
            return {
                "spec": {},
                "metrics": {
                    "mflops": mflops,
                    "speedup": speedup,
                    "network_conflicts": conflicts,
                },
            }

        points = [
            point(10.0, 2.0, 100),  # dominated by 1 on every objective
            point(20.0, 3.0, 50),
            point(5.0, 1.0, 0),  # fewest conflicts: on the front
            {"spec": {}, "error": {"field": None, "message": "bad"}},
            point(20.0, 3.0, 50),  # tie with 1: both survive
        ]
        assert pareto_front(points) == [1, 2, 4]

    def test_empty_and_all_failed(self):
        assert pareto_front([]) == []
        assert pareto_front([{"spec": {}, "error": {}}]) == []


class TestSweepCli:
    def test_axis_grid_to_artifact_file(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        status = main(
            [
                "sweep",
                "--axis", "memory_modules=4,8",
                "--axis", "ces_per_cluster=2",
                "--axis", "clusters=1",
                "--blocks", str(BLOCKS),
                "--out", str(out),
            ]
        )
        assert status == 0
        artifact = json.loads(out.read_text())
        assert artifact["schema"] == SWEEP_SCHEMA
        assert len(artifact["points"]) == 2
        assert capsys.readouterr().out == ""  # artifact went to the file

    def test_points_file_and_report(self, tmp_path, capsys):
        points = tmp_path / "points.json"
        points.write_text(json.dumps([
            {"clusters": 1, "ces_per_cluster": 2, "memory_modules": 4},
            {"memory_modules": 7},
        ]))
        status = main(
            ["sweep", "--points", str(points), "--blocks", str(BLOCKS),
             "--report"]
        )
        assert status == 0
        report = capsys.readouterr().out
        assert "INVALID (memory_modules)" in report
        assert "pareto front: 1 of 2 points" in report

    def test_nothing_to_sweep_is_an_error(self, capsys):
        assert main(["sweep"]) == 2
        assert "nothing to sweep" in capsys.readouterr().err

    def test_malformed_axis_is_an_error(self, capsys):
        assert main(["sweep", "--axis", "clusters"]) == 2
        assert "--axis wants" in capsys.readouterr().err
