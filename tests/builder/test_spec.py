"""MachineSpec validation: every invalid field fails loudly, by name."""

import pytest

from repro.builder import CEDAR_SPEC, MachineSpec
from repro.builder.spec import MAX_ROUTING_TAG_BITS
from repro.errors import ConfigurationError, SpecError


class TestValidSpecs:
    def test_cedar_spec_is_the_default_point(self):
        assert CEDAR_SPEC == MachineSpec()
        assert CEDAR_SPEC.num_ces == 32
        assert CEDAR_SPEC.network_ports == 32
        assert CEDAR_SPEC.stage_count == 2
        assert CEDAR_SPEC.routing_tag_bits == 6
        assert CEDAR_SPEC.sync_processor_count == 32

    def test_declared_stage_count_matching_derivation_is_accepted(self):
        spec = MachineSpec(network_stages=2)
        assert spec.stage_count == 2

    def test_stage_count_covers_the_larger_side(self):
        # 8 CEs vs 64 modules: the module side needs two radix-8 stages.
        spec = MachineSpec(clusters=1, memory_modules=64)
        assert spec.network_ports == 64
        assert spec.stage_count == 2

    def test_radix_two_tag_arithmetic(self):
        spec = MachineSpec(
            clusters=2, ces_per_cluster=8, switch_radix=2, memory_modules=16
        )
        assert spec.stage_count == 4  # 16 lines of 2x2 switches
        assert spec.routing_tag_bits == 4

    def test_sync_processor_count_defaults_to_all_modules(self):
        assert MachineSpec(memory_modules=16).sync_processor_count == 16
        assert MachineSpec(sync_processors=4).sync_processor_count == 4

    def test_round_trips_through_dict_form(self):
        spec = MachineSpec(clusters=2, interleave_words=4, sync_processors=8)
        assert MachineSpec.from_dict(spec.to_dict()) == spec


#: One representative invalid value per field; the structured error must
#: name exactly the field that was wrong.
INVALID_FIELDS = [
    ("clusters", 0),
    ("clusters", 65),
    ("ces_per_cluster", 0),
    ("ces_per_cluster", 6),  # not a power of two
    ("switch_radix", 3),
    ("switch_radix", 32),
    ("port_queue_words", 0),
    ("port_queue_words", 65),
    ("memory_modules", 1),
    ("memory_modules", 33),
    ("memory_modules", 2048),
    ("interleave_words", 3),
    ("interleave_words", 128),
    ("sync_processors", 0),
    ("sync_processors", 33),  # more than memory_modules
    ("prefetch_buffer_words", 16),  # below one compiler block
    ("prefetch_buffer_words", 48),  # not a power of two
    ("network_stages", 3),  # 32 ports at radix 8 need exactly 2
    ("clusters", "4"),  # right value, wrong type
    ("clusters", True),  # bool is not an integer here
]


class TestInvalidSpecs:
    @pytest.mark.parametrize("field,value", INVALID_FIELDS)
    def test_invalid_field_raises_spec_error_naming_it(self, field, value):
        with pytest.raises(SpecError) as caught:
            MachineSpec(**{field: value})
        assert caught.value.field == field
        assert field in str(caught.value)

    def test_spec_error_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError):
            MachineSpec(clusters=0)

    def test_routing_tag_budget_is_enforced(self):
        # 2048 radix-2 lines need 11 stages = 11 tag bits > the budget.
        with pytest.raises(SpecError) as caught:
            MachineSpec(
                clusters=64, ces_per_cluster=32, switch_radix=2,
                memory_modules=1024,
            )
        assert caught.value.field == "network_stages"
        assert str(MAX_ROUTING_TAG_BITS) in str(caught.value)

    def test_budget_edge_is_accepted(self):
        # 1024 radix-2 lines need exactly the 10-bit budget.
        spec = MachineSpec(
            clusters=64, ces_per_cluster=16, switch_radix=2,
            memory_modules=1024,
        )
        assert spec.stage_count == 10
        assert spec.routing_tag_bits == MAX_ROUTING_TAG_BITS

    def test_same_port_count_fits_at_a_higher_radix(self):
        # 1024 ports at radix 4: 5 stages x 2 bits = 10, within budget.
        spec = MachineSpec(
            clusters=64, ces_per_cluster=16, switch_radix=4,
            memory_modules=1024,
        )
        assert spec.stage_count == 5
        assert spec.routing_tag_bits == 10

    def test_from_dict_rejects_unknown_fields_by_name(self):
        with pytest.raises(SpecError) as caught:
            MachineSpec.from_dict({"clusters": 2, "num_modules": 16})
        assert caught.value.field == "num_modules"
        assert "memory_modules" in str(caught.value)  # lists known fields

    def test_from_dict_rejects_non_objects(self):
        with pytest.raises(SpecError):
            MachineSpec.from_dict([1, 2, 3])
