"""Tests for the experiment registry and the fast (model-level) drivers.

Cycle-simulator experiments (table1, table2, ppt4, network ablation) are
exercised end-to-end by the benchmarks; here we test the registry plumbing
and the analytic-model experiments that run in milliseconds.
"""

import pytest

from repro.experiments import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments import figure3, restructuring, table3, table4, table5, table6


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        expected = {
            "table1", "table2", "table3", "table4", "table5", "table6",
            "figure3", "ppt4", "ppt5", "restructuring", "network-ablation",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            get_experiment("table99")

    def test_descriptions_nonempty(self):
        for experiment in EXPERIMENTS.values():
            assert experiment.description


class TestTable3:
    def test_grid_and_render(self):
        result = table3.run()
        assert len(result.grid) == 13
        text = table3.render(result)
        assert "TRFD" in text
        assert "harmonic-mean" in text

    def test_ymp_ratio_above_one(self):
        result = table3.run()
        assert result.ymp_ratio() > 1.0


class TestTable4:
    def test_rows_cover_paper_codes(self):
        result = table4.run()
        assert {row.code for row in result.rows} == {
            "ARC3D", "BDNA", "DYFESM", "FLO52", "QCD", "SPICE", "TRFD"
        }
        text = table4.render(result)
        assert "QCD" in text


class TestTable5:
    def test_instabilities_and_exclusions(self):
        result = table5.run()
        assert result.profiles["cedar"][0] == pytest.approx(63.4, rel=0.1)
        assert result.profiles["cray-ymp8"][0] == pytest.approx(75.3, abs=0.2)
        assert result.exclusions_needed["cedar"] == 2
        assert result.exclusions_needed["cray-1"] == 2
        assert result.exclusions_needed["cray-ymp8"] == 6
        assert "In(13,0)" in table5.render(result)


class TestTable6:
    def test_census_matches_paper_exactly(self):
        result = table6.run()
        assert (result.cedar.high, result.cedar.intermediate,
                result.cedar.unacceptable) == (1, 9, 3)
        assert (result.ymp.high, result.ymp.intermediate,
                result.ymp.unacceptable) == (0, 6, 7)
        assert "(1)" in table6.render(result)


class TestFigure3:
    def test_census_matches_paper_reading(self):
        result = figure3.run()
        assert result.cedar_census.unacceptable == 0
        assert 3 <= result.cedar_census.high <= 5
        assert result.ymp_census.unacceptable == 1
        assert result.ymp_census.high == 6
        text = figure3.render(result)
        assert "legend" in text


class TestRestructuring:
    def test_counts(self):
        result = restructuring.run()
        assert result.kap_count() == 1
        assert result.automatable_count() == 5
        assert "privatization" in restructuring.render(result)


class TestCli:
    def test_list_command(self, capsys):
        from repro.cli import main
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table5" in out

    def test_run_fast_experiment(self, capsys):
        from repro.cli import main
        assert main(["run", "table6"]) == 0
        assert "Cedar" in capsys.readouterr().out

    def test_run_unknown(self, capsys):
        from repro.cli import main
        assert main(["run", "bogus"]) == 2
