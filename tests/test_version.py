"""Tests for code-version fingerprinting (repro.version)."""

import json
import re

import repro
from repro.metrics import bench
from repro.version import fingerprint_tree, version_fingerprint


class TestVersionFingerprint:
    def test_format_is_version_plus_hex(self):
        fingerprint = version_fingerprint()
        assert re.fullmatch(
            re.escape(repro.__version__) + r"\+[0-9a-f]{16}", fingerprint
        )

    def test_stable_across_calls(self):
        assert version_fingerprint() == version_fingerprint()
        assert version_fingerprint(refresh=True) == version_fingerprint()


class TestFingerprintTree:
    def test_content_change_changes_digest(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        before = fingerprint_tree(str(tmp_path))
        (tmp_path / "a.py").write_text("x = 2\n")
        assert fingerprint_tree(str(tmp_path)) != before

    def test_new_file_changes_digest(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        before = fingerprint_tree(str(tmp_path))
        (tmp_path / "b.py").write_text("")
        assert fingerprint_tree(str(tmp_path)) != before

    def test_rename_changes_digest(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        before = fingerprint_tree(str(tmp_path))
        (tmp_path / "a.py").rename(tmp_path / "z.py")
        assert fingerprint_tree(str(tmp_path)) != before

    def test_non_python_files_ignored(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        before = fingerprint_tree(str(tmp_path))
        (tmp_path / "notes.txt").write_text("irrelevant")
        assert fingerprint_tree(str(tmp_path)) == before

    def test_version_string_mixes_in(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        assert fingerprint_tree(str(tmp_path), "1.0") != fingerprint_tree(
            str(tmp_path), "2.0"
        )


class TestEmbedding:
    def test_run_json_records_carry_code_version(self, capsys):
        from repro.cli import main

        assert main(["run", "table6", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)[0]
        assert record["code_version"] == version_fingerprint()

    def test_bench_snapshot_carries_code_version(self):
        snapshot = bench.build_snapshot(["table6"], 0, trace=False)
        assert snapshot["code_version"] == version_fingerprint()
