"""Tests for the CEDAR FORTRAN workload IR."""

import pytest

from repro.errors import ProgramError
from repro.lang import (
    Barrier,
    DataMove,
    Doall,
    IOSection,
    LoopKind,
    Placement,
    Program,
    Reduction,
    SerialSection,
    VirtualMemoryActivity,
    Work,
    walk,
)


def work(flops=1000.0, words=500.0, **kwargs):
    return Work(flops=flops, memory_words=words, **kwargs)


class TestWork:
    def test_validation(self):
        with pytest.raises(ValueError):
            work(flops=-1.0)
        with pytest.raises(ValueError):
            work(vector_fraction=1.5)
        with pytest.raises(ValueError):
            Work(flops=1.0, memory_words=1.0, vector_length=0)

    def test_scaled(self):
        scaled = work(flops=100.0, words=50.0).scaled(2.0)
        assert scaled.flops == 200.0
        assert scaled.memory_words == 100.0
        assert scaled.vector_fraction == work().vector_fraction


class TestDoall:
    def test_validation(self):
        with pytest.raises(ValueError):
            Doall(LoopKind.XDOALL, trip_count=0, body=work())
        with pytest.raises(ValueError):
            Doall(LoopKind.XDOALL, trip_count=8, body=work(),
                  prefetchable_fraction=2.0)
        with pytest.raises(ValueError):
            Doall(LoopKind.XDOALL, trip_count=8, body=work(), instances=0)

    def test_nested_flag(self):
        flat = Doall(LoopKind.CDOALL, trip_count=8, body=work())
        assert not flat.nested
        nest = Doall(LoopKind.SDOALL, trip_count=4, body=[flat])
        assert nest.nested


class TestOtherConstructs:
    def test_barrier_validation(self):
        with pytest.raises(ValueError):
            Barrier(count=0)

    def test_reduction_validation(self):
        with pytest.raises(ValueError):
            Reduction(elements=0)

    def test_io_validation(self):
        with pytest.raises(ValueError):
            IOSection(bytes=-1.0)

    def test_move_validation(self):
        with pytest.raises(ValueError):
            DataMove(words=-1.0)

    def test_paging_validation(self):
        with pytest.raises(ValueError):
            VirtualMemoryActivity(seconds=-0.1)

    def test_serial_section_prefetchable_bounds(self):
        with pytest.raises(ValueError):
            SerialSection(work(), prefetchable_fraction=1.2)


class TestProgram:
    def test_empty_body_rejected(self):
        with pytest.raises(ProgramError):
            Program(name="empty", body=[])

    def test_total_flops_structural_sum(self):
        program = Program(
            name="p",
            body=[
                Doall(LoopKind.XDOALL, trip_count=10, body=work(flops=5.0),
                      instances=1),
                SerialSection(work(flops=7.0)),
            ],
        )
        assert program.total_flops() == pytest.approx(57.0)

    def test_declared_flop_count_wins(self):
        program = Program(
            name="p", body=[SerialSection(work(flops=7.0))], flop_count=99.0
        )
        assert program.total_flops() == 99.0

    def test_nested_flops_multiply_through(self):
        inner = Doall(LoopKind.CDOALL, trip_count=8, body=work(flops=2.0))
        outer = Doall(LoopKind.SDOALL, trip_count=4, body=[inner])
        program = Program(name="p", body=[outer])
        assert program.total_flops() == pytest.approx(4 * 8 * 2.0)

    def test_walk_visits_nested(self):
        inner = Doall(LoopKind.CDOALL, trip_count=8, body=work())
        outer = Doall(LoopKind.SDOALL, trip_count=4, body=[inner])
        visited = list(walk([outer, Barrier()]))
        assert inner in visited
        assert outer in visited
        assert len(visited) == 3
