"""Tests for the run-time library options."""

from repro.lang.runtime import DEFAULT_OPTIONS, RuntimeOptions, Schedule


def test_defaults_match_automatable_configuration():
    assert DEFAULT_OPTIONS.use_cedar_sync
    assert DEFAULT_OPTIONS.use_prefetch
    assert DEFAULT_OPTIONS.schedule is Schedule.SELF
    assert not DEFAULT_OPTIONS.single_cluster


def test_without_cedar_sync_is_a_copy():
    options = DEFAULT_OPTIONS.without_cedar_sync()
    assert not options.use_cedar_sync
    assert DEFAULT_OPTIONS.use_cedar_sync  # original untouched


def test_without_prefetch_is_a_copy():
    options = DEFAULT_OPTIONS.without_prefetch()
    assert not options.use_prefetch
    assert options.use_cedar_sync


def test_option_chaining():
    options = RuntimeOptions().without_cedar_sync().without_prefetch()
    assert not options.use_cedar_sync
    assert not options.use_prefetch
