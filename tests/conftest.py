"""Shared fixtures for the test suite."""

import pytest

from repro.config import CedarConfig, DEFAULT_CONFIG
from repro.hardware.machine import CedarMachine


@pytest.fixture
def config() -> CedarConfig:
    """The Cedar machine as built (4 clusters x 8 CEs)."""
    return DEFAULT_CONFIG


@pytest.fixture
def machine(config) -> CedarMachine:
    """A fresh full-size machine (cheap to build; cost is in simulation)."""
    return CedarMachine(config)


@pytest.fixture
def one_cluster_machine() -> CedarMachine:
    return CedarMachine(DEFAULT_CONFIG.with_clusters(1))
