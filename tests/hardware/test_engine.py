"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.hardware.engine import Engine


@pytest.fixture(params=[True, False], ids=["fast", "legacy"])
def any_engine(request):
    """Both dispatch loops; they must be behaviourally identical."""
    return Engine(fast_path=request.param)


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(5, lambda: order.append("late"))
        engine.schedule(1, lambda: order.append("early"))
        engine.run_until_idle()
        assert order == ["early", "late"]

    def test_ties_break_by_scheduling_order(self):
        engine = Engine()
        order = []
        for tag in ("first", "second", "third"):
            engine.schedule(3, lambda t=tag: order.append(t))
        engine.run_until_idle()
        assert order == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        engine = Engine()
        seen = []
        engine.schedule(7, lambda: seen.append(engine.now))
        engine.run_until_idle()
        assert seen == [7]
        assert engine.now == 7

    def test_nested_scheduling(self):
        engine = Engine()
        seen = []

        def outer():
            engine.schedule(2, lambda: seen.append(engine.now))

        engine.schedule(3, outer)
        engine.run_until_idle()
        assert seen == [5]

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.schedule(-1, lambda: None)

    def test_schedule_at_absolute_time(self):
        engine = Engine()
        seen = []
        engine.schedule_at(9, lambda: seen.append(engine.now))
        engine.run_until_idle()
        assert seen == [9]


class TestRunControl:
    def test_until_stops_before_later_events(self):
        engine = Engine()
        seen = []
        engine.schedule(5, lambda: seen.append("early"))
        engine.schedule(50, lambda: seen.append("late"))
        engine.run(until=10)
        assert seen == ["early"]
        assert engine.now == 10
        assert engine.pending() == 1
        engine.run_until_idle()
        assert seen == ["early", "late"]

    def test_event_exactly_at_until_runs(self):
        engine = Engine()
        seen = []
        engine.schedule(10, lambda: seen.append("edge"))
        engine.run(until=10)
        assert seen == ["edge"]

    def test_runaway_guard(self):
        engine = Engine()

        def forever():
            engine.schedule(1, forever)

        engine.schedule(0, forever)
        with pytest.raises(SimulationError):
            engine.run(max_events=1000)

    def test_exactly_max_events_completes(self):
        """The guard fires only when a (max_events+1)-th event is pending."""
        engine = Engine()
        for _ in range(10):
            engine.schedule(1, lambda: None)
        assert engine.run(max_events=10) == 1
        assert engine.pending() == 0

    def test_runaway_error_names_the_cycle(self):
        engine = Engine()

        def forever():
            engine.schedule(1, forever)

        engine.schedule(0, forever)
        with pytest.raises(SimulationError, match=r"at cycle 999"):
            engine.run(max_events=1000)

    def test_run_counts_dispatches_on_attached_tracer(self):
        from repro.trace import Tracer

        engine = Engine()
        tracer = Tracer(clock=lambda: engine.now)
        engine.tracer = tracer.if_enabled()
        for delay in (1, 2, 3):
            engine.schedule(delay, lambda: None)
        engine.run_until_idle()
        totals = tracer.counter_totals()["engine"]
        assert totals == {"events_dispatched": 3, "runs": 1}

    def test_reentrant_run_rejected(self):
        engine = Engine()

        def recurse():
            engine.run()

        engine.schedule(0, recurse)
        with pytest.raises(SimulationError):
            engine.run_until_idle()

    def test_determinism_across_instances(self):
        def trace():
            engine = Engine()
            log = []
            for delay in (3, 1, 4, 1, 5):
                engine.schedule(delay, lambda d=delay: log.append((engine.now, d)))
            engine.run_until_idle()
            return log

        assert trace() == trace()


class TestDelayValidation:
    def test_integral_float_coerced(self, any_engine):
        engine = any_engine
        seen = []
        engine.schedule(5.0, lambda: seen.append(engine.now))
        engine.run_until_idle()
        assert seen == [5]
        assert engine.now == 5

    def test_fractional_delay_rejected(self, any_engine):
        with pytest.raises(SimulationError, match="integral"):
            any_engine.schedule(1.5, lambda: None)

    def test_bool_delay_rejected(self, any_engine):
        with pytest.raises(SimulationError):
            any_engine.schedule(True, lambda: None)

    def test_non_numeric_delay_rejected(self, any_engine):
        with pytest.raises(SimulationError):
            any_engine.schedule("3", lambda: None)


class TestOffQueueInvariant:
    def test_schedule_outside_callback_while_running_rejected(self, any_engine):
        """The idle fast-forward contract: no off-queue scheduling mid-run."""
        engine = any_engine
        engine._running = True  # as if run() were live without a dispatch
        with pytest.raises(SimulationError, match="off-queue"):
            engine.schedule(1, lambda: None)
        engine._running = False

    def test_schedule_inside_callback_allowed(self, any_engine):
        engine = any_engine
        seen = []
        engine.schedule(1, lambda: engine.schedule(1, lambda: seen.append("ok")))
        engine.run_until_idle()
        assert seen == ["ok"]


class TestFastDispatch:
    def test_same_cycle_batch_preserves_order_with_nested(self, any_engine):
        """Events scheduled during a batch still run in sequence order."""
        engine = any_engine
        order = []

        def first():
            order.append("first")
            engine.schedule(0, lambda: order.append("nested"))

        engine.schedule(2, first)
        engine.schedule(2, lambda: order.append("second"))
        engine.schedule(3, lambda: order.append("later"))
        engine.run_until_idle()
        assert order == ["first", "second", "nested", "later"]

    def test_max_events_mid_batch_leaves_remainder_queued(self):
        engine = Engine(fast_path=True)
        seen = []
        for tag in range(5):
            engine.schedule(1, lambda t=tag: seen.append(t))
        with pytest.raises(SimulationError):
            engine.run(max_events=3)
        assert seen == [0, 1, 2]
        assert engine.pending() == 2
        assert engine.events_dispatched == 3

    def test_exception_mid_batch_requeues_remainder(self):
        engine = Engine(fast_path=True)
        seen = []

        def boom():
            raise RuntimeError("component fault")

        engine.schedule(1, lambda: seen.append("a"))
        engine.schedule(1, boom)
        engine.schedule(1, lambda: seen.append("b"))
        with pytest.raises(RuntimeError):
            engine.run_until_idle()
        assert seen == ["a"]
        assert engine.pending() == 1  # "b" survived the abort
        engine.run_until_idle()
        assert seen == ["a", "b"]

    def test_idle_cycles_skipped_counted(self, any_engine):
        engine = any_engine
        engine.schedule(1, lambda: None)
        engine.schedule(1000, lambda: None)
        engine.run_until_idle()
        assert engine.now == 1000
        # gap 1 -> 1000 has 998 empty cycles; 0 -> 1 has none.
        assert engine.idle_cycles_skipped == 998

    def test_events_dispatched_accumulates_across_runs(self, any_engine):
        engine = any_engine
        engine.schedule(1, lambda: None)
        engine.run_until_idle()
        engine.schedule(1, lambda: None)
        engine.run_until_idle()
        assert engine.events_dispatched == 2

    def test_fast_and_legacy_produce_identical_traces(self):
        def trace(fast):
            engine = Engine(fast_path=fast)
            log = []

            def tick(round_no):
                log.append((engine.now, round_no))
                if round_no < 20:
                    engine.schedule(round_no % 3, lambda: tick(round_no + 1))

            engine.schedule(0, lambda: tick(0))
            engine.schedule(7, lambda: log.append((engine.now, "seven")))
            for delay in (5, 5, 5):
                engine.schedule(delay, lambda d=delay: log.append((engine.now, d)))
            end = engine.run_until_idle()
            return log, end, engine.events_dispatched, engine.idle_cycles_skipped

        assert trace(True) == trace(False)

    def test_until_with_fast_forward(self, any_engine):
        engine = any_engine
        seen = []
        engine.schedule(5, lambda: seen.append("early"))
        engine.schedule(500, lambda: seen.append("late"))
        assert engine.run(until=100) == 100
        assert seen == ["early"]
        assert engine.now == 100
        engine.run_until_idle()
        assert seen == ["early", "late"]


class TestRecurringEvent:
    def test_fires_at_interval(self, any_engine):
        engine = any_engine
        ticks = []
        event = engine.recurring(3, lambda: ticks.append(engine.now))

        def start():
            event.schedule()

        engine.schedule(0, start)
        engine.schedule(100, lambda: None)
        engine.run(until=10)
        assert ticks == [3]

    def test_rearm_from_callback_chains(self, any_engine):
        engine = any_engine
        ticks = []

        def tick():
            ticks.append(engine.now)
            if len(ticks) < 4:
                event.schedule()

        event = engine.recurring(2, tick)
        event.schedule()
        engine.run_until_idle()
        assert ticks == [2, 4, 6, 8]

    def test_rearm_while_pending_rejected(self, any_engine):
        engine = any_engine
        event = engine.recurring(2, lambda: None)
        event.schedule()
        assert event.pending
        with pytest.raises(SimulationError, match="pending"):
            event.schedule()

    def test_interval_validation(self, any_engine):
        with pytest.raises(SimulationError):
            any_engine.recurring(-1, lambda: None)
        with pytest.raises(SimulationError):
            any_engine.recurring(1.5, lambda: None)
        with pytest.raises(SimulationError):
            any_engine.recurring(True, lambda: None)

    def test_ties_with_plain_events_break_by_arming_order(self, any_engine):
        engine = any_engine
        order = []

        def setup():
            event.schedule()  # armed first -> fires first at cycle 2
            engine.schedule(2, lambda: order.append("plain"))

        event = engine.recurring(2, lambda: order.append("recurring"))
        engine.schedule(0, setup)
        engine.run_until_idle()
        assert order == ["recurring", "plain"]


class TestRecurringCancel:
    def test_cancel_before_fire_suppresses_callback(self, any_engine):
        engine = any_engine
        ticks = []
        event = engine.recurring(5, lambda: ticks.append(engine.now))

        def setup():
            event.schedule()
            event.cancel()

        engine.schedule(0, setup)
        engine.run_until_idle()
        assert ticks == []
        assert not event.pending

    def test_cancel_mid_batch_neutralizes_queued_occurrence(self, any_engine):
        """A same-cycle event cancelling a recurrence already due in that
        cycle must win: the dead entry dispatches as an inert no-op."""
        engine = any_engine
        ticks = []
        event = engine.recurring(5, lambda: ticks.append(engine.now))

        def setup():
            # The canceller draws the earlier sequence number, so at cycle 5
            # it dispatches first -- with the recurrence in the same batch.
            engine.schedule(5, event.cancel)
            event.schedule()

        engine.schedule(0, setup)
        engine.run_until_idle()
        assert ticks == []

    def test_cancel_is_idempotent_and_noop_when_idle(self, any_engine):
        event = any_engine.recurring(3, lambda: None)
        event.cancel()  # never armed: nothing to do
        event.cancel()
        assert not event.pending

    def test_cancel_then_reschedule_uses_a_fresh_entry(self, any_engine):
        """The heap-entry-reuse path: re-arming after cancel must not
        resurrect (or rewrite) the dead entry still sitting in the heap."""
        engine = any_engine
        ticks = []
        event = engine.recurring(3, lambda: ticks.append(engine.now))

        def setup():
            event.schedule()  # would fire at 3
            event.cancel()
            event.schedule()  # fresh entry, also at 3 but a later sequence

        engine.schedule(0, setup)
        engine.run_until_idle()
        assert ticks == [3]  # exactly once, from the fresh entry

    def test_idle_fast_forward_across_cancelled_recurrence(self, any_engine):
        """A cancelled occurrence still holds its cycle in the queue; the
        clock visits it, dispatches the inert entry, and keeps skipping."""
        engine = any_engine
        ticks = []
        event = engine.recurring(10, lambda: ticks.append(engine.now))

        def setup():
            event.schedule()
            event.cancel()
            engine.schedule(100, lambda: ticks.append(-engine.now))

        engine.schedule(0, setup)
        engine.run_until_idle()
        assert ticks == [-100]
        assert engine.now == 100
        # Gaps on both sides of the dead entry were fast-forwarded.
        assert engine.idle_cycles_skipped == (10 - 1) + (100 - 10 - 1)

    def test_cancel_accounting_identical_across_loops(self):
        def run(fast):
            engine = Engine(fast_path=fast)
            ticks = []
            event = engine.recurring(4, lambda: ticks.append(engine.now))

            def setup():
                event.schedule()
                engine.schedule(4, lambda: ticks.append(-engine.now))
                event.cancel()
                event.schedule()

            engine.schedule(0, setup)
            engine.run_until_idle()
            return ticks, engine.events_dispatched, engine.idle_cycles_skipped

        assert run(True) == run(False)
