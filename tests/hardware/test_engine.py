"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.hardware.engine import Engine


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(5, lambda: order.append("late"))
        engine.schedule(1, lambda: order.append("early"))
        engine.run_until_idle()
        assert order == ["early", "late"]

    def test_ties_break_by_scheduling_order(self):
        engine = Engine()
        order = []
        for tag in ("first", "second", "third"):
            engine.schedule(3, lambda t=tag: order.append(t))
        engine.run_until_idle()
        assert order == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        engine = Engine()
        seen = []
        engine.schedule(7, lambda: seen.append(engine.now))
        engine.run_until_idle()
        assert seen == [7]
        assert engine.now == 7

    def test_nested_scheduling(self):
        engine = Engine()
        seen = []

        def outer():
            engine.schedule(2, lambda: seen.append(engine.now))

        engine.schedule(3, outer)
        engine.run_until_idle()
        assert seen == [5]

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.schedule(-1, lambda: None)

    def test_schedule_at_absolute_time(self):
        engine = Engine()
        seen = []
        engine.schedule_at(9, lambda: seen.append(engine.now))
        engine.run_until_idle()
        assert seen == [9]


class TestRunControl:
    def test_until_stops_before_later_events(self):
        engine = Engine()
        seen = []
        engine.schedule(5, lambda: seen.append("early"))
        engine.schedule(50, lambda: seen.append("late"))
        engine.run(until=10)
        assert seen == ["early"]
        assert engine.now == 10
        assert engine.pending() == 1
        engine.run_until_idle()
        assert seen == ["early", "late"]

    def test_event_exactly_at_until_runs(self):
        engine = Engine()
        seen = []
        engine.schedule(10, lambda: seen.append("edge"))
        engine.run(until=10)
        assert seen == ["edge"]

    def test_runaway_guard(self):
        engine = Engine()

        def forever():
            engine.schedule(1, forever)

        engine.schedule(0, forever)
        with pytest.raises(SimulationError):
            engine.run(max_events=1000)

    def test_exactly_max_events_completes(self):
        """The guard fires only when a (max_events+1)-th event is pending."""
        engine = Engine()
        for _ in range(10):
            engine.schedule(1, lambda: None)
        assert engine.run(max_events=10) == 1
        assert engine.pending() == 0

    def test_runaway_error_names_the_cycle(self):
        engine = Engine()

        def forever():
            engine.schedule(1, forever)

        engine.schedule(0, forever)
        with pytest.raises(SimulationError, match=r"at cycle 999"):
            engine.run(max_events=1000)

    def test_run_counts_dispatches_on_attached_tracer(self):
        from repro.trace import Tracer

        engine = Engine()
        tracer = Tracer(clock=lambda: engine.now)
        engine.tracer = tracer.if_enabled()
        for delay in (1, 2, 3):
            engine.schedule(delay, lambda: None)
        engine.run_until_idle()
        totals = tracer.counter_totals()["engine"]
        assert totals == {"events_dispatched": 3, "runs": 1}

    def test_reentrant_run_rejected(self):
        engine = Engine()

        def recurse():
            engine.run()

        engine.schedule(0, recurse)
        with pytest.raises(SimulationError):
            engine.run_until_idle()

    def test_determinism_across_instances(self):
        def trace():
            engine = Engine()
            log = []
            for delay in (3, 1, 4, 1, 5):
                engine.schedule(delay, lambda d=delay: log.append((engine.now, d)))
            engine.run_until_idle()
            return log

        assert trace() == trace()
