"""Tests for the per-CE prefetch unit."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.errors import SimulationError
from repro.hardware.ce import ArmFirePrefetch, AwaitPrefetch, ConsumePrefetch
from repro.hardware.machine import CedarMachine
from repro.hardware.prefetch import PAGE_RESUME_CYCLES


def run_one_prefetch(length=32, stride=1, start=4096):
    machine = CedarMachine()

    def kernel(ce):
        handle = yield ArmFirePrefetch(length=length, stride=stride,
                                       start_address=start)
        yield AwaitPrefetch(handle)

    machine.run_kernel(kernel, num_ces=1)
    return machine, machine.all_ces[0].pfu.completed[0]


class TestArmFire:
    def test_validation(self, machine):
        pfu = machine.all_ces[0].pfu
        with pytest.raises(ValueError):
            pfu.arm(length=0)
        with pytest.raises(ValueError):
            pfu.arm(length=DEFAULT_CONFIG.prefetch.buffer_words + 1)
        with pytest.raises(ValueError):
            pfu.arm(length=8, stride=0)

    def test_fire_before_arm_rejected(self, machine):
        with pytest.raises(SimulationError):
            machine.all_ces[0].pfu.fire(0)

    def test_all_words_arrive_in_buffer(self):
        _, handle = run_one_prefetch(length=32)
        assert handle.complete
        assert handle.words_arrived == 32
        assert all(handle.is_available(i) for i in range(32))

    def test_addresses_follow_stride(self):
        _, handle = run_one_prefetch(length=4, stride=3, start=100)
        assert [handle.address_of(i) for i in range(4)] == [100, 103, 106, 109]


class TestLatencyMetrics:
    def test_uncontended_minimums_match_paper(self):
        _, handle = run_one_prefetch(length=32)
        assert handle.first_word_latency() == 8
        assert all(gap == 1 for gap in handle.interarrival_times())

    def test_metrics_require_completion(self, machine):
        pfu = machine.all_ces[0].pfu
        pfu.arm(4)
        handle = pfu.fire(0)
        with pytest.raises(SimulationError):
            handle.first_word_latency()


class TestPageCrossing:
    def test_prefetch_suspends_at_page_boundary(self):
        page_words = DEFAULT_CONFIG.prefetch.page_bytes // 8
        # Start 8 words before a page boundary so the stream crosses once.
        machine, handle = run_one_prefetch(
            length=16, start=page_words - 8
        )
        pfu = machine.all_ces[0].pfu
        assert pfu.page_suspensions == 1
        # The crossing shows up as a gap in the interarrival stream.
        assert max(handle.interarrival_times()) >= PAGE_RESUME_CYCLES - 2

    def test_no_crossing_no_suspension(self):
        machine, _ = run_one_prefetch(length=16, start=0)
        assert machine.all_ces[0].pfu.page_suspensions == 0


class TestBufferInvalidation:
    def test_refire_invalidates_previous_buffer(self):
        machine = CedarMachine()
        handles = []

        def kernel(ce):
            first = yield ArmFirePrefetch(length=8, stride=1, start_address=0)
            yield AwaitPrefetch(first)
            second = yield ArmFirePrefetch(length=8, stride=1, start_address=64)
            yield AwaitPrefetch(second)
            handles.extend([first, second])

        machine.run_kernel(kernel, num_ces=1)
        first, second = handles
        assert first.invalidated
        assert not second.invalidated
        assert second.complete

    def test_consume_streams_one_word_per_cycle(self):
        machine = CedarMachine()
        times = {}

        def kernel(ce):
            handle = yield ArmFirePrefetch(length=32, stride=1, start_address=0)
            start = ce.engine.now
            finish = yield ConsumePrefetch(handle, flops_per_element=2.0)
            times["elapsed"] = finish - start
            times["flops"] = ce.flops

        machine.run_kernel(kernel, num_ces=1)
        # 32 words at >= 1 cycle each plus startup and fill latency.
        assert times["elapsed"] >= 32
        assert times["flops"] == 64.0
