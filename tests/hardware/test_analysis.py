"""Tests for the monitor analysis tools."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.errors import MonitorError
from repro.hardware.analysis import (
    Phase,
    hot_modules,
    module_utilizations,
    phase_summary,
    phase_timeline,
    summarize_histogram,
    utilization,
)
from repro.hardware.ce import GlobalLoads, PostEvent
from repro.hardware.machine import CedarMachine
from repro.hardware.monitor import EventTracer, Histogrammer


def make_tracer(events):
    tracer = EventTracer(DEFAULT_CONFIG.monitor)
    tracer.start()
    for cycle, signal in events:
        tracer.post(cycle, signal)
    return tracer


class TestPhaseTimeline:
    def test_simple_phase(self):
        tracer = make_tracer([(10, "solve-begin"), (50, "solve-end")])
        phases = phase_timeline(tracer)
        assert phases == [Phase(name="solve", start_cycle=10, end_cycle=50)]
        assert phases[0].cycles == 40

    def test_repeated_phases_sum(self):
        tracer = make_tracer([
            (0, "io-begin"), (5, "io-end"),
            (10, "io-begin"), (25, "io-end"),
        ])
        assert phase_summary(phase_timeline(tracer)) == {"io": 20}

    def test_nested_phases(self):
        tracer = make_tracer([
            (0, "outer-begin"), (5, "inner-begin"),
            (8, "inner-end"), (20, "outer-end"),
        ])
        phases = phase_timeline(tracer)
        names = [p.name for p in phases]
        assert set(names) == {"outer", "inner"}

    def test_unmatched_end_raises(self):
        tracer = make_tracer([(5, "x-end")])
        with pytest.raises(MonitorError):
            phase_timeline(tracer)

    def test_dangling_begin_raises(self):
        tracer = make_tracer([(5, "x-begin")])
        with pytest.raises(MonitorError):
            phase_timeline(tracer)

    def test_events_via_ce_postings(self):
        machine = CedarMachine()
        machine.monitor.tracer("software").start()

        def kernel(ce):
            yield PostEvent("load-begin")
            yield GlobalLoads(start_address=0, length=4)
            yield PostEvent("load-end")

        machine.run_kernel(kernel, num_ces=1)
        phases = phase_timeline(machine.monitor.tracer("software"))
        assert phases[0].name == "load"
        assert phases[0].cycles > 0


class TestHistogramSummary:
    def test_distribution(self):
        histogram = Histogrammer(DEFAULT_CONFIG.monitor)
        for value in (8, 8, 9, 10, 30):
            histogram.record(value)
        summary = summarize_histogram(histogram)
        assert summary.samples == 5
        assert summary.p50 == 9
        assert summary.maximum == 30
        assert summary.mean == pytest.approx(13.0)

    def test_empty_raises(self):
        with pytest.raises(MonitorError):
            summarize_histogram(Histogrammer(DEFAULT_CONFIG.monitor))


class TestUtilization:
    def test_bounds(self):
        assert utilization(50, 100) == 0.5
        with pytest.raises(MonitorError):
            utilization(101, 100)
        with pytest.raises(MonitorError):
            utilization(1, 0)

    def test_module_utilizations_after_a_run(self):
        machine = CedarMachine()

        def kernel(ce):
            yield GlobalLoads(start_address=0, length=32, stride=32)

        end = machine.run_kernel(kernel, num_ces=1)
        values = module_utilizations(machine, end)
        assert len(values) == 32
        assert values[0] > 0  # stride 32 hammers module 0
        assert sum(v > 0 for v in values) == 1
        assert hot_modules(machine, end, threshold=0.99) == []
