"""Property-based tests: BoundedWordQueue under random interleavings.

A reference model (a plain list plus word counters) shadows the queue
through arbitrary push/pop sequences -- including pops re-entered from
item listeners, the way crossbar arbiters and links actually drain queues
-- and the sanitizer is armed throughout, so its capacity and credit
checks run on every operation without a single false positive.
"""

from hypothesis import given, settings, strategies as st

import pytest

from repro.errors import SimulationError
from repro.hardware import sanitize
from repro.hardware.packet import Packet, PacketKind
from repro.hardware.queueing import BoundedWordQueue


def _packet(words: int) -> Packet:
    return Packet(
        kind=PacketKind.READ_REQUEST, source=0, destination=0, address=0,
        words=words,
    )


#: An operation stream: push of a 1..4-word packet, or a pop attempt.
ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(1, 4)),
        st.tuples(st.just("pop"), st.just(0)),
    ),
    max_size=80,
)


class TestRandomInterleavings:
    @settings(max_examples=60, deadline=None)
    @given(capacity=st.integers(1, 8), sequence=ops)
    def test_queue_matches_reference_model(self, capacity, sequence):
        with sanitize.sanitizing() as sanitizer:
            queue = BoundedWordQueue(capacity, name="prop")
        model = []
        mutations = 0
        for op, words in sequence:
            if op == "push":
                packet = _packet(words)
                if words <= capacity - sum(p.words for p in model):
                    queue.push(packet)
                    model.append(packet)
                    mutations += 1
                else:
                    with pytest.raises(SimulationError, match="overflow"):
                        queue.push(packet)
            else:
                if model:
                    assert queue.pop() is model.pop(0)
                    mutations += 1
                else:
                    with pytest.raises(SimulationError, match="empty"):
                        queue.pop()
            assert queue.used_words == sum(p.words for p in model)
            assert queue.free_words == capacity - queue.used_words
            assert len(queue) == len(model)
            assert queue.head() is (model[0] if model else None)
        assert sanitizer.violations == 0
        # One capacity + one credit check per successful push/pop, exactly.
        assert sanitizer.checks.get("queue.capacity", 0) == mutations
        assert sanitizer.checks.get("flow_control.credit", 0) == mutations

    @settings(max_examples=40, deadline=None)
    @given(words=st.lists(st.integers(1, 4), min_size=1, max_size=40))
    def test_greedy_drain_listener_reentrancy(self, words):
        """An item listener popping the queue mid-push (a Link/sink pattern)
        must see consistent state and preserve FIFO order."""
        with sanitize.sanitizing() as sanitizer:
            queue = BoundedWordQueue(4, name="drain")
        drained = []

        def drain() -> None:
            while queue.head() is not None:
                drained.append(queue.pop())

        queue.add_item_listener(drain)
        pushed = []
        for count in words:
            packet = _packet(count)
            queue.push(packet)  # the listener empties it before we return
            pushed.append(packet)
            assert queue.used_words == 0
        assert drained == pushed
        assert sanitizer.violations == 0

    @settings(max_examples=40, deadline=None)
    @given(sequence=ops)
    def test_head_listener_fires_on_every_head_change(self, sequence):
        """The head listener contract the crossbar masks are built on:
        fire on push-into-empty and on every pop, never otherwise."""
        queue = BoundedWordQueue(8, name="heads")
        observed = []
        queue.set_head_listener(lambda: observed.append(queue.head()))
        expected = []
        model = []
        for op, words in sequence:
            if op == "push":
                packet = _packet(words)
                if queue.can_accept(packet):
                    was_empty = not model
                    queue.push(packet)
                    model.append(packet)
                    if was_empty:
                        expected.append(packet)
            elif model:
                queue.pop()
                model.pop(0)
                expected.append(model[0] if model else None)
        assert observed == expected
