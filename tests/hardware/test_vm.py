"""Tests for the Xylem virtual-memory model (the TRFD mechanism)."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.hardware.vm import TranslationBuffer, VirtualMemory


class TestTranslationBuffer:
    def test_hit_after_insert(self):
        tlb = TranslationBuffer(4)
        tlb.insert(7)
        assert tlb.lookup(7)

    def test_lru_eviction(self):
        tlb = TranslationBuffer(2)
        tlb.insert(1)
        tlb.insert(2)
        tlb.lookup(1)  # refresh 1
        tlb.insert(3)  # evicts 2
        assert tlb.lookup(1)
        assert not tlb.lookup(2)

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            TranslationBuffer(0)


class TestVirtualMemory:
    def test_first_touch_is_a_page_fault(self):
        vm = VirtualMemory(DEFAULT_CONFIG.vm, num_clusters=4)
        cost = vm.translate(0, 0)
        assert cost == DEFAULT_CONFIG.vm.page_fault_cycles
        assert vm.stats[0].page_faults == 1

    def test_second_touch_same_cluster_hits(self):
        vm = VirtualMemory(DEFAULT_CONFIG.vm, num_clusters=4)
        vm.translate(0, 0)
        assert vm.translate(0, 1) == 0  # same page
        assert vm.stats[0].tlb_hits == 1

    def test_trfd_mechanism_cross_cluster_tlb_faults(self):
        """Each additional cluster TLB-miss faults on pages whose PTE is
        already valid in global memory (Section 4.2)."""
        vm = VirtualMemory(DEFAULT_CONFIG.vm, num_clusters=4)
        vm.translate(0, 0)  # cluster 0 materializes the page
        for cluster in (1, 2, 3):
            cost = vm.translate(cluster, 0)
            assert cost == DEFAULT_CONFIG.vm.tlb_miss_cycles
        totals = vm.total_faults()
        assert totals["page_faults"] == 1
        assert totals["tlb_miss_faults"] == 3

    def test_four_cluster_run_has_about_4x_the_faults(self):
        """The paper's observation: the multicluster TRFD had ~4x the
        faults of the one-cluster version."""
        pages = 200
        page_words = DEFAULT_CONFIG.vm.page_bytes // 8

        def run(num_clusters):
            vm = VirtualMemory(DEFAULT_CONFIG.vm, num_clusters=4)
            for cluster in range(num_clusters):
                vm.touch_range(cluster, 0, pages * page_words)
            totals = vm.total_faults()
            return totals["page_faults"] + totals["tlb_miss_faults"]

        assert run(4) == 4 * run(1)

    def test_touch_range_counts_pages(self):
        vm = VirtualMemory(DEFAULT_CONFIG.vm, num_clusters=1)
        page_words = vm.page_words
        vm.touch_range(0, 0, 3 * page_words)
        assert vm.stats[0].page_faults == 3

    def test_touch_range_empty_is_free(self):
        vm = VirtualMemory(DEFAULT_CONFIG.vm, num_clusters=1)
        assert vm.touch_range(0, 0, 0) == 0

    def test_cluster_bounds_checked(self):
        vm = VirtualMemory(DEFAULT_CONFIG.vm, num_clusters=2)
        with pytest.raises(ValueError):
            vm.translate(5, 0)

    def test_cost_cycles_summary(self):
        vm = VirtualMemory(DEFAULT_CONFIG.vm, num_clusters=2)
        vm.translate(0, 0)
        vm.translate(1, 0)
        stats = vm.stats[1]
        assert stats.cost_cycles(DEFAULT_CONFIG.vm) == (
            DEFAULT_CONFIG.vm.tlb_miss_cycles
        )
