"""Tests for the interleaved global-memory modules."""

import pytest

from repro.hardware.ce import GlobalLoads, GlobalStores, SyncInstruction
from repro.hardware.machine import CedarMachine
from repro.hardware.memory import module_for_address
from repro.hardware.sync_processor import OperateOp
from repro.hardware.sync_processor import TestOp as SyncTestOp


class TestInterleaving:
    def test_double_word_interleave(self):
        assert module_for_address(0, 32) == 0
        assert module_for_address(1, 32) == 1
        assert module_for_address(33, 32) == 1

    def test_stride_one_spreads_over_all_modules(self):
        modules = {module_for_address(a, 32) for a in range(64)}
        assert modules == set(range(32))

    def test_stride_32_hits_one_module(self):
        modules = {module_for_address(a, 32) for a in range(0, 1024, 32)}
        assert len(modules) == 1


class TestModuleService:
    def test_reads_are_answered(self, machine):
        done = {}

        def kernel(ce):
            yield GlobalLoads(start_address=0, length=8, stride=1)
            done["at"] = ce.engine.now

        machine.run_kernel(kernel, num_ces=1)
        assert done["at"] > 0
        assert machine.global_memory.total_requests_served == 8

    def test_writes_consume_service_without_reply(self, machine):
        def kernel(ce):
            yield GlobalStores(start_address=0, length=4, stride=1)

        machine.run_kernel(kernel, num_ces=1)
        machine.engine.run_until_idle()
        assert machine.global_memory.total_requests_served == 4

    def test_module_busy_accounting(self, machine):
        def kernel(ce):
            yield GlobalLoads(start_address=0, length=4, stride=32)

        machine.run_kernel(kernel, num_ces=1)
        module = machine.global_memory.modules[0]
        assert module.requests_served == 4
        assert module.busy_cycles >= 4 * machine.config.global_memory.module_cycle_time


class TestSyncThroughMemory:
    def test_test_and_operate_round_trip(self, machine):
        outcomes = []

        def kernel(ce):
            result = yield SyncInstruction(
                address=77, test=SyncTestOp.ALWAYS, op=OperateOp.ADD, operand=5
            )
            outcomes.append(result)

        machine.run_kernel(kernel, num_ces=1)
        assert outcomes[0].test_passed
        assert outcomes[0].new_value == 5

    def test_concurrent_adds_are_indivisible(self, machine):
        def kernel(ce):
            for _ in range(4):
                yield SyncInstruction(address=99, op=OperateOp.ADD, operand=1)

        machine.run_kernel(kernel, num_ces=8)
        module = machine.global_memory.module_for(99)
        assert module.sync.read(99) == 32  # 8 CEs x 4 increments, none lost

    def test_test_and_set_mutual_exclusion(self, machine):
        winners = []

        def kernel(ce):
            outcome = yield SyncInstruction(address=11, test_and_set=True)
            if outcome.test_passed:
                winners.append(ce.global_port)

        machine.run_kernel(kernel, num_ces=8)
        assert len(winners) == 1
