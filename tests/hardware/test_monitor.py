"""Tests for the performance-monitoring hardware."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.errors import MonitorError
from repro.hardware.monitor import EventTracer, Histogrammer, PerformanceMonitor


class TestEventTracer:
    def test_captures_only_when_armed(self):
        tracer = EventTracer(DEFAULT_CONFIG.monitor)
        tracer.post(1, "sig")
        assert len(tracer) == 0
        tracer.start()
        tracer.post(2, "sig")
        tracer.stop()
        tracer.post(3, "sig")
        assert len(tracer) == 1

    def test_capacity_and_drop_counting(self):
        from repro.config import MonitorConfig
        tiny = MonitorConfig(tracer_capacity_events=2)
        tracer = EventTracer(tiny)
        tracer.start()
        for cycle in range(5):
            tracer.post(cycle, "x")
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_cascade_multiplies_capacity(self):
        from repro.config import MonitorConfig
        tiny = MonitorConfig(tracer_capacity_events=2)
        tracer = EventTracer(tiny, cascade=3)
        assert tracer.capacity == 6

    def test_signal_filtering(self):
        tracer = EventTracer(DEFAULT_CONFIG.monitor)
        tracer.start()
        tracer.post(1, "a")
        tracer.post(2, "b")
        assert [e.signal for e in tracer.events("a")] == ["a"]

    def test_invalid_cascade(self):
        with pytest.raises(MonitorError):
            EventTracer(DEFAULT_CONFIG.monitor, cascade=0)


class TestHistogrammer:
    def test_mean_of_recorded_values(self):
        histogram = Histogrammer(DEFAULT_CONFIG.monitor)
        for value in (8, 10, 12):
            histogram.record(value)
        assert histogram.mean() == pytest.approx(10.0)

    def test_bin_width_groups_values(self):
        histogram = Histogrammer(DEFAULT_CONFIG.monitor, bin_width=10)
        histogram.record(5)
        histogram.record(7)
        assert histogram.counts() == {0: 2}

    def test_overflow_beyond_counters(self):
        from repro.config import MonitorConfig
        tiny = MonitorConfig(histogrammer_counters=4)
        histogram = Histogrammer(tiny)
        histogram.record(100)
        assert histogram.overflow == 1
        assert histogram.total == 0

    def test_percentile(self):
        histogram = Histogrammer(DEFAULT_CONFIG.monitor)
        for value in range(1, 101):
            histogram.record(value)
        assert histogram.percentile(0.5) == 50
        assert histogram.percentile(1.0) == 100

    def test_empty_histogram_errors(self):
        histogram = Histogrammer(DEFAULT_CONFIG.monitor)
        with pytest.raises(MonitorError):
            histogram.mean()
        with pytest.raises(MonitorError):
            histogram.percentile(0.5)

    def test_negative_values_rejected(self):
        histogram = Histogrammer(DEFAULT_CONFIG.monitor)
        with pytest.raises(MonitorError):
            histogram.record(-1)


class TestPerformanceMonitor:
    def test_named_instruments_are_singletons(self):
        monitor = PerformanceMonitor(DEFAULT_CONFIG.monitor)
        assert monitor.tracer("a") is monitor.tracer("a")
        assert monitor.histogram("h") is monitor.histogram("h")

    def test_start_stop_all(self):
        monitor = PerformanceMonitor(DEFAULT_CONFIG.monitor)
        tracer = monitor.tracer("t")
        monitor.start_all()
        assert tracer.armed
        monitor.stop_all()
        assert not tracer.armed
