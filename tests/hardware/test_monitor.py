"""Tests for the performance-monitoring hardware."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.errors import MonitorError
from repro.hardware.monitor import EventTracer, Histogrammer, PerformanceMonitor


class TestEventTracer:
    def test_captures_only_when_armed(self):
        tracer = EventTracer(DEFAULT_CONFIG.monitor)
        tracer.post(1, "sig")
        assert len(tracer) == 0
        tracer.start()
        tracer.post(2, "sig")
        tracer.stop()
        tracer.post(3, "sig")
        assert len(tracer) == 1

    def test_capacity_and_drop_counting(self):
        from repro.config import MonitorConfig
        tiny = MonitorConfig(tracer_capacity_events=2)
        tracer = EventTracer(tiny)
        tracer.start()
        for cycle in range(5):
            tracer.post(cycle, "x")
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_cascade_multiplies_capacity(self):
        from repro.config import MonitorConfig
        tiny = MonitorConfig(tracer_capacity_events=2)
        tracer = EventTracer(tiny, cascade=3)
        assert tracer.capacity == 6

    def test_signal_filtering(self):
        tracer = EventTracer(DEFAULT_CONFIG.monitor)
        tracer.start()
        tracer.post(1, "a")
        tracer.post(2, "b")
        assert [e.signal for e in tracer.events("a")] == ["a"]

    def test_invalid_cascade(self):
        with pytest.raises(MonitorError):
            EventTracer(DEFAULT_CONFIG.monitor, cascade=0)


class TestHistogrammer:
    def test_mean_of_recorded_values(self):
        histogram = Histogrammer(DEFAULT_CONFIG.monitor)
        for value in (8, 10, 12):
            histogram.record(value)
        assert histogram.mean() == pytest.approx(10.0)

    def test_bin_width_groups_values(self):
        histogram = Histogrammer(DEFAULT_CONFIG.monitor, bin_width=10)
        histogram.record(5)
        histogram.record(7)
        assert histogram.counts() == {0: 2}

    def test_overflow_beyond_counters(self):
        from repro.config import MonitorConfig
        tiny = MonitorConfig(histogrammer_counters=4)
        histogram = Histogrammer(tiny)
        histogram.record(100)
        assert histogram.overflow == 1
        assert histogram.total == 0

    def test_percentile(self):
        histogram = Histogrammer(DEFAULT_CONFIG.monitor)
        for value in range(1, 101):
            histogram.record(value)
        assert histogram.percentile(0.5) == 50
        assert histogram.percentile(1.0) == 100

    def test_empty_histogram_errors(self):
        histogram = Histogrammer(DEFAULT_CONFIG.monitor)
        with pytest.raises(MonitorError):
            histogram.mean()
        with pytest.raises(MonitorError):
            histogram.percentile(0.5)

    def test_negative_values_rejected(self):
        histogram = Histogrammer(DEFAULT_CONFIG.monitor)
        with pytest.raises(MonitorError):
            histogram.record(-1)

    def test_wide_bin_mean_uses_midpoints(self):
        histogram = Histogrammer(DEFAULT_CONFIG.monitor, bin_width=10)
        histogram.record(5)
        histogram.record(7)
        # Both land in bin [0, 10), whose midpoint is 4.5.
        assert histogram.mean() == pytest.approx(4.5)

    def test_percentile_at_full_fraction_is_max_bin(self):
        histogram = Histogrammer(DEFAULT_CONFIG.monitor, bin_width=4)
        for value in (1, 9, 17):
            histogram.record(value)
        assert histogram.percentile(1.0) == 16

    def test_counters_saturate_at_32_bits(self):
        histogram = Histogrammer(DEFAULT_CONFIG.monitor)
        histogram._counters[0] = 2**32 - 1
        histogram.record(0)
        assert histogram._counters[0] == 2**32 - 1
        assert histogram.overflow == 0  # saturation is not bin overflow


class TestPerformanceMonitor:
    def test_named_instruments_are_singletons(self):
        monitor = PerformanceMonitor(DEFAULT_CONFIG.monitor)
        assert monitor.tracer("a") is monitor.tracer("a")
        assert monitor.histogram("h") is monitor.histogram("h")

    def test_start_stop_all(self):
        monitor = PerformanceMonitor(DEFAULT_CONFIG.monitor)
        tracer = monitor.tracer("t")
        monitor.start_all()
        assert tracer.armed
        monitor.stop_all()
        assert not tracer.armed

    def test_tracer_full_flag(self):
        from repro.config import MonitorConfig

        tracer = EventTracer(MonitorConfig(tracer_capacity_events=2))
        tracer.start()
        assert not tracer.full
        tracer.post(1, "x")
        tracer.post(2, "x")
        assert tracer.full
        assert tracer.dropped == 0  # full is a warning, not yet a loss

    def test_latency_summary_names_missing_histograms(self):
        monitor = PerformanceMonitor(DEFAULT_CONFIG.monitor)
        with pytest.raises(MonitorError, match=r"'first_word_latency', 'interarrival'"):
            monitor.latency_summary()
        monitor.histogram("first_word_latency").record(90)
        with pytest.raises(MonitorError) as excinfo:
            monitor.latency_summary()
        message = str(excinfo.value)
        assert "'interarrival'" in message
        assert "'first_word_latency'" not in message
        assert "record_prefetch" in message

    def test_latency_summary_via_trace_bus(self):
        """A bus-connected monitor hears record_prefetch as signals."""
        from repro.trace import Tracer

        class Handle:
            @staticmethod
            def first_word_latency():
                return 90

            @staticmethod
            def interarrival_times():
                return [4, 6]

        bus = Tracer(enabled=False)
        connected = PerformanceMonitor(DEFAULT_CONFIG.monitor)
        connected.connect(bus)
        standalone = PerformanceMonitor(DEFAULT_CONFIG.monitor)
        connected.record_prefetch(Handle)
        standalone.record_prefetch(Handle)
        assert connected.latency_summary() == standalone.latency_summary()
        assert connected.latency_summary() == pytest.approx((90.0, 5.0))

    def test_software_events_travel_over_the_bus(self):
        from repro.trace import Tracer

        bus = Tracer(enabled=False)
        monitor = PerformanceMonitor(DEFAULT_CONFIG.monitor)
        monitor.connect(bus)
        monitor.tracer("software").start()
        bus.publish(PerformanceMonitor.SOFTWARE_SIGNAL, (42, "loop_done", 7))
        events = monitor.tracer("software").events("loop_done")
        assert [(e.cycle, e.value) for e in events] == [(42, 7)]
