"""Tests for the multistage shuffle-exchange network."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DEFAULT_CONFIG
from repro.errors import ConfigurationError
from repro.hardware.engine import Engine
from repro.hardware.network import OmegaNetwork, _digit, _with_digit
from repro.hardware.packet import Packet, PacketKind


def make_network(ports=32):
    engine = Engine()
    network = OmegaNetwork(engine, ports, DEFAULT_CONFIG.network, name="t")
    return engine, network


def request(source, destination, words=1):
    return Packet(
        kind=PacketKind.READ_REQUEST, source=source, destination=destination,
        address=destination, words=words,
    )


class TestDigits:
    @given(st.integers(0, 4095), st.integers(0, 3), st.integers(0, 7))
    def test_with_digit_roundtrip(self, value, position, digit):
        rewritten = _with_digit(value, position, 8, digit)
        assert _digit(rewritten, position, 8) == digit
        # Other positions untouched.
        for p in range(4):
            if p != position:
                assert _digit(rewritten, p, 8) == _digit(value, p, 8)


class TestTopology:
    def test_32_ports_needs_two_stages_of_8x8(self):
        _, network = make_network(32)
        assert network.num_stages == 2
        assert network.num_lines == 64
        assert all(len(row) == 8 for row in network.stages)

    def test_tiny_network_one_stage(self):
        _, network = make_network(8)
        assert network.num_stages == 1

    def test_rejects_too_few_ports(self):
        engine = Engine()
        with pytest.raises(ConfigurationError):
            OmegaNetwork(engine, 1, DEFAULT_CONFIG.network)

    def test_switch_line_mapping_inverse(self):
        _, network = make_network(32)
        for stage in range(network.num_stages):
            for line in range(network.num_lines):
                sw, port = network._switch_for(stage, line)
                assert network._line_for(stage, sw, port) == line


class TestDelivery:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 31), st.integers(0, 31))
    def test_unique_path_delivers_to_destination(self, source, destination):
        engine, network = make_network(32)
        received = []
        network.attach_sink(destination, received.append)
        assert network.try_inject(source, request(source, destination))
        engine.run_until_idle()
        assert len(received) == 1
        assert received[0].destination == destination

    def test_all_to_all_delivery(self):
        engine, network = make_network(32)
        received = {port: [] for port in range(32)}
        for port in range(32):
            network.attach_sink(port, received[port].append)
        for source in range(32):
            destination = (source * 7 + 3) % 32
            assert network.try_inject(source, request(source, destination))
        engine.run_until_idle()
        total = sum(len(v) for v in received.values())
        assert total == 32
        for port, packets in received.items():
            for packet in packets:
                assert packet.destination == port

    def test_duplicate_sink_rejected(self):
        _, network = make_network(32)
        network.attach_sink(3, lambda p: None)
        with pytest.raises(ConfigurationError):
            network.attach_sink(3, lambda p: None)


class TestFlowControl:
    def test_entry_queue_fills_and_injection_fails(self):
        engine, network = make_network(32)
        # No sink drains port 0: packets pile up through back-pressure.
        accepted = 0
        while network.try_inject(0, request(0, 0)):
            accepted += 1
            engine.run(until=engine.now + 50)
            if accepted > 100:
                break
        # Finite buffering: stages have 2x2-word queues per port.
        assert accepted < 30

    def test_on_entry_space_wakes_after_drain(self):
        engine, network = make_network(32)
        delivered = []
        # Fill entry queue without a drain on stage arbiters.
        blockers = 0
        while network.try_inject(0, request(0, 0)):
            blockers += 1
        woken = []
        network.on_entry_space(0, lambda: woken.append(True))
        network.attach_sink(0, delivered.append)
        engine.run_until_idle()
        assert woken == [True]
        assert len(delivered) == blockers

    def test_occupancy_counts_buffered_words(self):
        engine, network = make_network(32)
        # No sink: packets come to rest in the delivery queue.
        network.try_inject(0, request(0, 0))
        network.try_inject(0, request(0, 0))
        engine.run_until_idle()
        assert network.occupancy_words() == 2

    def test_occupancy_zero_after_drain(self):
        engine, network = make_network(32)
        network.attach_sink(0, lambda p: None)
        network.try_inject(0, request(0, 0))
        engine.run_until_idle()
        assert network.occupancy_words() == 0


class TestContention:
    def test_many_to_one_serializes(self):
        engine, network = make_network(32)
        received = []
        network.attach_sink(5, received.append)
        senders = list(range(8))
        pending = {s: 4 for s in senders}

        def pump(source):
            while pending[source] and network.try_inject(
                source, request(source, 5)
            ):
                pending[source] -= 1
            if pending[source]:
                network.on_entry_space(source, lambda: pump(source))

        for s in senders:
            pump(s)
        engine.run_until_idle()
        assert len(received) == 32
        # One output port at one word/cycle: 32 packets need >= 32 cycles.
        assert engine.now >= 32
