"""Tests for the vector-unit timing model."""

import pytest
from hypothesis import given, strategies as st

from repro.config import DEFAULT_CONFIG, CE_PEAK_MFLOPS
from repro.hardware.vector_unit import VectorUnit


@pytest.fixture
def unit():
    return VectorUnit(DEFAULT_CONFIG.vector)


class TestStripLengths:
    def test_exact_multiple(self, unit):
        assert unit.strip_lengths(64) == [32, 32]

    def test_remainder_strip(self, unit):
        assert unit.strip_lengths(70) == [32, 32, 6]

    def test_zero_length(self, unit):
        assert unit.strip_lengths(0) == []

    def test_negative_rejected(self, unit):
        with pytest.raises(ValueError):
            unit.strip_lengths(-1)

    @given(st.integers(0, 10_000))
    def test_strips_tile_exactly(self, length):
        unit = VectorUnit(DEFAULT_CONFIG.vector)
        strips = unit.strip_lengths(length)
        assert sum(strips) == length
        assert all(1 <= s <= 32 for s in strips)


class TestTiming:
    def test_instruction_timing(self, unit):
        timing = unit.instruction_timing(32)
        assert timing.startup_cycles == 12
        assert timing.element_cycles == 32
        assert timing.total_cycles == 44

    def test_over_register_length_rejected(self, unit):
        with pytest.raises(ValueError):
            unit.instruction_timing(33)

    def test_stripmined_cycles(self, unit):
        # 64 elements = 2 strips of (12 + 32).
        assert unit.stripmined_cycles(64) == 88

    def test_efficiency_rises_with_length(self, unit):
        assert unit.efficiency_at(64) > unit.efficiency_at(8)

    def test_full_strip_efficiency_matches_effective_peak(self, unit):
        # 32/(32+12) = the 274/376 effective-peak ratio of Section 4.1.
        ratio = unit.efficiency_at(32)
        assert ratio == pytest.approx(
            DEFAULT_CONFIG.effective_peak_mflops / DEFAULT_CONFIG.peak_mflops
        )

    def test_machine_peaks(self):
        assert DEFAULT_CONFIG.peak_mflops == pytest.approx(32 * CE_PEAK_MFLOPS)
        assert DEFAULT_CONFIG.effective_peak_mflops == pytest.approx(274.6, abs=1.0)
