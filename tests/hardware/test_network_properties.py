"""Property-based tests: network conservation invariants.

Under arbitrary admissible traffic the network must deliver every packet
exactly once, to the right port, unmodified -- no loss, duplication or
misrouting regardless of contention patterns.
"""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.config import DEFAULT_CONFIG
from repro.hardware.engine import Engine
from repro.hardware.network import OmegaNetwork
from repro.hardware.packet import Packet, PacketKind


@st.composite
def traffic(draw):
    """A list of (source, destination, words) triples."""
    count = draw(st.integers(1, 40))
    return [
        (
            draw(st.integers(0, 31)),
            draw(st.integers(0, 31)),
            draw(st.integers(1, 4)),
        )
        for _ in range(count)
    ]


class TestConservation:
    @settings(max_examples=40, deadline=None)
    @given(traffic())
    def test_every_packet_delivered_exactly_once(self, flows):
        engine = Engine()
        network = OmegaNetwork(engine, 32, DEFAULT_CONFIG.network)
        received = []
        for port in range(32):
            network.attach_sink(port, received.append)

        pending = {}
        for index, (source, destination, words) in enumerate(flows):
            packet = Packet(
                kind=PacketKind.READ_REQUEST,
                source=source,
                destination=destination,
                address=destination,
                words=words,
                request_tag=index,
            )
            pending[index] = packet

        queue = list(pending.values())

        def pump():
            # Injection can synchronously pop the entry queue (arbiter wake),
            # firing entry-space waiters -- i.e. re-entering pump -- mid-loop.
            # Claim the whole backlog first so a re-entrant call never sees
            # (and re-injects) a packet this frame is already handling.
            todo = queue[:]
            queue.clear()
            for packet in todo:
                if not network.try_inject(packet.source, packet):
                    queue.append(packet)
            if queue:
                network.on_entry_space(queue[0].source, pump)

        pump()
        engine.run_until_idle()
        # Retry anything still queued (space callbacks fire once per pop).
        guard = 0
        while queue and guard < 10_000:
            pump()
            engine.run_until_idle()
            guard += 1

        assert len(received) == len(flows)
        tags = Counter(p.request_tag for p in received)
        assert all(count == 1 for count in tags.values())
        for packet in received:
            original = pending[packet.request_tag]
            assert packet is original  # unmodified object, right port
            assert packet.destination == original.destination

    @settings(max_examples=20, deadline=None)
    @given(traffic())
    def test_network_drains_completely(self, flows):
        engine = Engine()
        network = OmegaNetwork(engine, 32, DEFAULT_CONFIG.network)
        for port in range(32):
            network.attach_sink(port, lambda p: None)
        for source, destination, words in flows[:10]:
            network.try_inject(
                source,
                Packet(
                    kind=PacketKind.READ_REQUEST, source=source,
                    destination=destination, address=destination, words=words,
                ),
            )
        engine.run_until_idle()
        assert network.occupancy_words() == 0
