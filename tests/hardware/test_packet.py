"""Tests for network packets."""

import pytest

from repro.hardware.packet import MAX_PACKET_WORDS, Packet, PacketKind


def test_packet_word_bounds():
    with pytest.raises(ValueError):
        Packet(PacketKind.READ_REQUEST, 0, 1, 0, words=0)
    with pytest.raises(ValueError):
        Packet(PacketKind.READ_REQUEST, 0, 1, 0, words=MAX_PACKET_WORDS + 1)


def test_negative_ports_rejected():
    with pytest.raises(ValueError):
        Packet(PacketKind.READ_REQUEST, -1, 0, 0)


def test_payload_words_excludes_header():
    packet = Packet(PacketKind.WRITE_REQUEST, 0, 1, 0, words=3)
    assert packet.payload_words == 2


def test_reply_swaps_endpoints_and_keeps_tag():
    request = Packet(
        PacketKind.READ_REQUEST, source=7, destination=13, address=99,
        request_tag=42, payload={"k": 1},
    )
    reply = request.reply(PacketKind.READ_REPLY, words=1, issue_cycle=55)
    assert reply.source == 13
    assert reply.destination == 7
    assert reply.request_tag == 42
    assert reply.address == 99
    assert reply.issue_cycle == 55
    assert reply.payload == {"k": 1}


def test_reply_payload_override():
    request = Packet(PacketKind.SYNC_REQUEST, 0, 1, 0, payload="op")
    reply = request.reply(PacketKind.SYNC_REPLY, 1, 0, payload="outcome")
    assert reply.payload == "outcome"


def test_packet_ids_unique():
    a = Packet(PacketKind.READ_REQUEST, 0, 1, 0)
    b = Packet(PacketKind.READ_REQUEST, 0, 1, 0)
    assert a.packet_id != b.packet_id
