"""Tests for the cluster cache and bandwidth servers."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.hardware.cache import BandwidthServer, ClusterCache
from repro.hardware.engine import Engine


def make_cache():
    engine = Engine()
    cache = ClusterCache(engine, DEFAULT_CONFIG.cache,
                         DEFAULT_CONFIG.cluster_memory)
    return engine, cache


class TestBandwidthServer:
    def test_rate_limits_completion(self):
        engine = Engine()
        server = BandwidthServer(engine, words_per_cycle=8.0)
        assert server.reserve(16) == 2
        assert server.reserve(16) == 4  # FIFO behind the first

    def test_idle_server_starts_now(self):
        engine = Engine()
        server = BandwidthServer(engine, words_per_cycle=4.0)
        engine.schedule(10, lambda: None)
        engine.run_until_idle()
        assert server.reserve(4) == 11

    def test_rejects_bad_rate_and_words(self):
        engine = Engine()
        with pytest.raises(ValueError):
            BandwidthServer(engine, 0.0)
        server = BandwidthServer(engine, 1.0)
        with pytest.raises(ValueError):
            server.reserve(-1)

    def test_backlog_tracking(self):
        engine = Engine()
        server = BandwidthServer(engine, words_per_cycle=1.0)
        server.reserve(10)
        assert server.backlog_cycles == pytest.approx(10.0)


class TestCacheDirectory:
    def test_miss_then_hit(self):
        _, cache = make_cache()
        hit, _ = cache.access(100)
        assert not hit
        hit, _ = cache.access(101)  # same 4-word line
        assert hit
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction(self):
        _, cache = make_cache()
        words_per_line = cache.words_per_line
        total_lines = cache.num_lines
        # Touch one line more than the cache holds.
        for line in range(total_lines + 1):
            cache.access(line * words_per_line)
        assert not cache.is_resident(0)  # line 0 was the LRU victim
        assert cache.is_resident(total_lines * words_per_line)

    def test_dirty_eviction_counts_write_back(self):
        _, cache = make_cache()
        words_per_line = cache.words_per_line
        cache.access(0, write=True)
        for line in range(1, cache.num_lines + 1):
            cache.access(line * words_per_line)
        assert cache.write_backs == 1

    def test_install_block_marks_residency(self):
        _, cache = make_cache()
        cache.install_block(0, 128)
        hit, _ = cache.access(64)
        assert hit

    def test_stream_reserves_port_bandwidth(self):
        engine, cache = make_cache()
        finish = cache.stream(64, resident=True)
        # 64 words at 8 words/cycle = 8 cycles + hit latency.
        assert finish == 8 + DEFAULT_CONFIG.cache.hit_latency_cycles

    def test_nonresident_stream_pays_memory_rate(self):
        engine, cache = make_cache()
        resident = ClusterCache(Engine(), DEFAULT_CONFIG.cache,
                                DEFAULT_CONFIG.cluster_memory)
        fast = resident.stream(64, resident=True)
        slow = cache.stream(64, resident=False)
        assert slow > fast

    def test_stream_rejects_negative(self):
        _, cache = make_cache()
        with pytest.raises(ValueError):
            cache.stream(-1)
