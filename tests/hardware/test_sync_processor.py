"""Tests for the memory-module synchronization processors."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware.sync_processor import OperateOp, SyncProcessor
from repro.hardware.sync_processor import TestOp as SyncTestOp


class TestTestAndSet:
    def test_first_acquisition_succeeds(self):
        sync = SyncProcessor()
        outcome = sync.test_and_set(100)
        assert outcome.test_passed
        assert outcome.old_value == 0
        assert outcome.new_value == 1

    def test_second_acquisition_fails(self):
        sync = SyncProcessor()
        sync.test_and_set(100)
        outcome = sync.test_and_set(100)
        assert not outcome.test_passed
        assert outcome.old_value == 1

    def test_release_and_reacquire(self):
        sync = SyncProcessor()
        sync.test_and_set(100)
        sync.write(100, 0)
        assert sync.test_and_set(100).test_passed


class TestTestAndOperate:
    def test_add(self):
        sync = SyncProcessor()
        outcome = sync.test_and_operate(5, SyncTestOp.ALWAYS, 0, OperateOp.ADD, 7)
        assert outcome.new_value == 7
        assert sync.read(5) == 7

    def test_subtract(self):
        sync = SyncProcessor()
        sync.write(5, 10)
        outcome = sync.test_and_operate(
            5, SyncTestOp.ALWAYS, 0, OperateOp.SUBTRACT, 4
        )
        assert outcome.new_value == 6

    def test_read_does_not_modify(self):
        sync = SyncProcessor()
        sync.write(5, 3)
        outcome = sync.test_and_operate(5, SyncTestOp.ALWAYS, 0, OperateOp.READ)
        assert outcome.old_value == 3
        assert sync.read(5) == 3

    def test_failed_test_leaves_memory_unchanged(self):
        sync = SyncProcessor()
        sync.write(5, 10)
        outcome = sync.test_and_operate(5, SyncTestOp.LT, 10, OperateOp.ADD, 1)
        assert not outcome.test_passed
        assert sync.read(5) == 10

    def test_ge_gate_for_dependence_enforcement(self):
        # The [ZhYe87] pattern: proceed when the producer's counter reached
        # the needed value.
        sync = SyncProcessor()
        sync.write(7, 3)
        assert sync.test_and_operate(7, SyncTestOp.GE, 3, OperateOp.READ).test_passed
        assert not sync.test_and_operate(7, SyncTestOp.GE, 4, OperateOp.READ).test_passed

    @pytest.mark.parametrize(
        "op,operand,expected",
        [
            (OperateOp.AND, 0b1100, 0b1000),
            (OperateOp.OR, 0b0001, 0b1011),
            (OperateOp.XOR, 0b1111, 0b0101),
            (OperateOp.WRITE, 42, 42),
        ],
    )
    def test_logical_and_write_ops(self, op, operand, expected):
        sync = SyncProcessor()
        sync.write(1, 0b1010)
        assert sync.test_and_operate(1, SyncTestOp.ALWAYS, 0, op, operand).new_value == expected

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
    def test_add_wraps_at_32_bits(self, start, operand):
        sync = SyncProcessor()
        sync.write(9, start)
        outcome = sync.test_and_operate(9, SyncTestOp.ALWAYS, 0, OperateOp.ADD, operand)
        assert outcome.new_value == (start + operand) % 2**32

    @given(st.sampled_from(list(SyncTestOp)), st.integers(0, 100), st.integers(0, 100))
    def test_relational_tests_match_python(self, test, value, key):
        import operator
        sync = SyncProcessor()
        sync.write(2, value)
        outcome = sync.test_and_operate(2, test, key, OperateOp.READ)
        expected = {
            SyncTestOp.ALWAYS: lambda a, b: True,
            SyncTestOp.EQ: operator.eq, SyncTestOp.NE: operator.ne,
            SyncTestOp.LT: operator.lt, SyncTestOp.LE: operator.le,
            SyncTestOp.GT: operator.gt, SyncTestOp.GE: operator.ge,
        }[test](value, key)
        assert outcome.test_passed == expected

    def test_operation_counter(self):
        sync = SyncProcessor()
        sync.test_and_set(0)
        sync.test_and_operate(1, SyncTestOp.ALWAYS, 0, OperateOp.ADD, 1)
        assert sync.operations_executed == 2
