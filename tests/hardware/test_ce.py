"""Tests for the computational element's micro-operations."""

import pytest

from repro.errors import SimulationError
from repro.hardware.ce import (
    Compute,
    GlobalLoads,
    GlobalStores,
    PostEvent,
    VectorCacheOp,
)
from repro.hardware.machine import CedarMachine


class TestCompute:
    def test_busy_for_requested_cycles(self, machine):
        marks = {}

        def kernel(ce):
            start = ce.engine.now
            yield Compute(100, flops=50.0)
            marks["elapsed"] = ce.engine.now - start
            marks["flops"] = ce.flops

        machine.run_kernel(kernel, num_ces=1)
        assert marks["elapsed"] == 100
        assert marks["flops"] == 50.0

    def test_negative_cycles_rejected(self, machine):
        def kernel(ce):
            yield Compute(-1)

        with pytest.raises(SimulationError):
            machine.run_kernel(kernel, num_ces=1)


class TestGlobalLoads:
    def test_window_of_two_outstanding_bounds_throughput(self, machine):
        marks = {}

        def kernel(ce):
            start = ce.engine.now
            yield GlobalLoads(start_address=0, length=26, stride=1)
            marks["elapsed"] = ce.engine.now - start

        machine.run_kernel(kernel, num_ces=1)
        # 26 words at 2 outstanding over a 13-cycle latency ~= 13 cyc/pair.
        assert marks["elapsed"] >= 26 / 2 * 12

    def test_flop_credit(self, machine):
        def kernel(ce):
            yield GlobalLoads(start_address=0, length=8, flops_per_element=2.0)

        machine.run_kernel(kernel, num_ces=1)
        assert machine.all_ces[0].flops == 16.0


class TestGlobalStores:
    def test_stores_do_not_wait_for_memory(self, machine):
        marks = {}

        def kernel(ce):
            start = ce.engine.now
            yield GlobalStores(start_address=0, length=8)
            marks["elapsed"] = ce.engine.now - start

        machine.run_kernel(kernel, num_ces=1)
        # Issue-limited, not latency-limited: well under 8 round trips.
        assert marks["elapsed"] < 8 * 13


class TestVectorCache:
    def test_pipeline_and_flops(self, machine):
        def kernel(ce):
            yield VectorCacheOp(length=32, flops_per_element=2.0)

        cycles = machine.run_kernel(kernel, num_ces=1)
        assert machine.all_ces[0].flops == 64.0
        assert cycles >= 32  # at least one element per cycle

    def test_zero_length_rejected(self, machine):
        def kernel(ce):
            yield VectorCacheOp(length=0)

        with pytest.raises(SimulationError):
            machine.run_kernel(kernel, num_ces=1)


class TestLifecycle:
    def test_unknown_operation_rejected(self, machine):
        def kernel(ce):
            yield "nonsense"

        with pytest.raises(SimulationError):
            machine.run_kernel(kernel, num_ces=1)

    def test_post_event_reaches_monitor(self, machine):
        def kernel(ce):
            tracer = ce.monitor.tracer("software")
            tracer.start()
            yield PostEvent("phase-start", value=3)

        machine.run_kernel(kernel, num_ces=1)
        events = machine.monitor.tracer("software").events("phase-start")
        assert len(events) == 1
        assert events[0].value == 3

    def test_cannot_run_two_kernels_at_once(self, machine):
        ce = machine.all_ces[0]

        def kernel(c):
            yield Compute(1000)

        ce.run(kernel)
        with pytest.raises(SimulationError):
            ce.run(kernel)

    def test_finished_flag(self, machine):
        def kernel(ce):
            yield Compute(5)

        end = machine.run_kernel(kernel, num_ces=2)
        for ce in machine.ces(2):
            assert ce.finished_at == end
