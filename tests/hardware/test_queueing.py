"""Tests for bounded word-queues and blocking links."""

import pytest

from repro.errors import SimulationError
from repro.hardware.engine import Engine
from repro.hardware.packet import Packet, PacketKind
from repro.hardware.queueing import BoundedWordQueue, Link


def packet(words=1, destination=0):
    return Packet(
        kind=PacketKind.READ_REQUEST, source=0, destination=destination,
        address=0, words=words,
    )


class TestBoundedWordQueue:
    def test_capacity_in_words_not_packets(self):
        queue = BoundedWordQueue(4)
        queue.push(packet(words=3))
        assert not queue.can_accept(packet(words=2))
        assert queue.can_accept(packet(words=1))

    def test_fifo_order(self):
        queue = BoundedWordQueue(8)
        first, second = packet(), packet()
        queue.push(first)
        queue.push(second)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_overflow_raises(self):
        queue = BoundedWordQueue(1)
        queue.push(packet())
        with pytest.raises(SimulationError):
            queue.push(packet())

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            BoundedWordQueue(2).pop()

    def test_item_listener_fires_on_push(self):
        queue = BoundedWordQueue(4)
        events = []
        queue.add_item_listener(lambda: events.append(len(queue)))
        queue.push(packet())
        queue.push(packet())
        assert events == [1, 2]

    def test_space_waiter_fires_once_on_pop(self):
        queue = BoundedWordQueue(1)
        queue.push(packet())
        woken = []
        queue.wait_for_space(lambda: woken.append("a"))
        queue.wait_for_space(lambda: woken.append("b"))
        queue.pop()
        assert woken == ["a"]  # one waiter per freed slot
        queue.push(packet())
        queue.pop()
        assert woken == ["a", "b"]

    def test_word_accounting(self):
        queue = BoundedWordQueue(8)
        queue.push(packet(words=3))
        assert queue.used_words == 3
        assert queue.free_words == 5
        queue.pop()
        assert queue.used_words == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BoundedWordQueue(0)


class TestLink:
    def test_transfers_at_one_word_per_cycle(self):
        engine = Engine()
        source = BoundedWordQueue(8)
        sink = BoundedWordQueue(8)
        Link(engine, source, sink)
        source.push(packet(words=3))
        engine.run_until_idle()
        assert len(sink) == 1
        assert engine.now == 3

    def test_blocks_on_full_sink_until_space(self):
        engine = Engine()
        source = BoundedWordQueue(8)
        sink = BoundedWordQueue(1)
        Link(engine, source, sink)
        blocker = packet()
        sink.push(blocker)
        source.push(packet())
        engine.run_until_idle()
        assert len(sink) == 1  # still just the blocker; link is waiting
        sink.pop()
        engine.run_until_idle()
        assert len(sink) == 1  # the delayed packet arrived

    def test_drains_backlog(self):
        engine = Engine()
        source = BoundedWordQueue(8)
        sink = BoundedWordQueue(64)
        Link(engine, source, sink)
        for _ in range(4):
            source.push(packet(words=2))
        engine.run_until_idle()
        assert len(sink) == 4
        assert engine.now == 8  # 4 packets x 2 words x 1 cycle


class TestHeadListener:
    def test_fires_on_push_into_empty_and_on_pop(self):
        queue = BoundedWordQueue(8)
        heads = []
        queue.set_head_listener(lambda: heads.append(queue.head()))
        first, second = packet(destination=1), packet(destination=2)
        queue.push(first)          # empty -> first
        queue.push(second)         # head unchanged: no notification
        assert heads == [first]
        queue.pop()                # head becomes second
        queue.pop()                # head becomes None
        assert heads == [first, second, None]

    def test_fires_before_item_listeners(self):
        queue = BoundedWordQueue(8)
        order = []
        queue.set_head_listener(lambda: order.append("head"))
        queue.add_item_listener(lambda: order.append("item"))
        queue.push(packet())
        assert order == ["head", "item"]

    def test_fires_before_space_waiters(self):
        queue = BoundedWordQueue(1)
        order = []
        queue.push(packet())
        queue.set_head_listener(lambda: order.append("head"))
        queue.wait_for_space(lambda: order.append("space"))
        queue.pop()
        assert order == ["head", "space"]

    def test_second_listener_rejected(self):
        queue = BoundedWordQueue(8)
        queue.set_head_listener(lambda: None)
        with pytest.raises(SimulationError, match="head listener"):
            queue.set_head_listener(lambda: None)

    def test_listener_registered_mid_push_fires_next_push(self):
        queue = BoundedWordQueue(8)
        calls = []
        queue.add_item_listener(
            lambda: queue.add_item_listener(lambda: calls.append("late"))
            if not calls and not queue._item_listeners[1:]
            else None
        )
        queue.push(packet())   # registers the late listener; must not fire yet
        assert calls == []
        queue.push(packet())
        assert calls == ["late"]
