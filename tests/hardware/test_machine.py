"""Tests for the assembled Cedar machine."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.errors import SimulationError
from repro.hardware.ce import Compute
from repro.hardware.machine import CedarMachine


class TestAssembly:
    def test_default_shape(self, machine):
        assert len(machine.clusters) == 4
        assert len(machine.all_ces) == 32
        assert len(machine.global_memory.modules) == 32

    def test_ces_fill_cluster_by_cluster(self, machine):
        selected = machine.ces(12)
        assert [ce.cluster_index for ce in selected] == [0] * 8 + [1] * 4

    def test_ces_bounds_checked(self, machine):
        with pytest.raises(SimulationError):
            machine.ces(0)
        with pytest.raises(SimulationError):
            machine.ces(33)

    def test_one_cluster_variant(self, one_cluster_machine):
        assert len(one_cluster_machine.all_ces) == 8


class TestRunning:
    def test_run_kernel_waits_for_all(self, machine):
        def kernel(ce):
            yield Compute(10 * (ce.global_port + 1))

        end = machine.run_kernel(kernel, num_ces=4)
        assert end >= 40

    def test_run_per_ce_distinct_kernels(self, machine):
        log = []

        def make(tag):
            def kernel(ce):
                log.append(tag)
                yield Compute(1)
            return kernel

        machine.run_per_ce([make("a"), make("b")])
        assert sorted(log) == ["a", "b"]

    def test_mflops_accounting(self, machine):
        def kernel(ce):
            yield Compute(100, flops=200.0)

        cycles = machine.run_kernel(kernel, num_ces=2)
        expected = 400.0 / (cycles * 170e-9) / 1e6
        assert machine.mflops(cycles) == pytest.approx(expected)

    def test_mflops_rejects_zero_window(self, machine):
        with pytest.raises(SimulationError):
            machine.mflops(0)

    def test_seconds_conversion(self, machine):
        assert machine.seconds(1_000_000) == pytest.approx(0.17)
