"""Property-based tests: Engine.schedule delay coercion and ordering.

The engine's integer cycle clock accepts integral floats (``5.0``) as a
convenience but must reject every non-integral delay -- a fractional
event would drift off the tie-ordered clock and break determinism.
"""

import math

from hypothesis import given, settings, strategies as st

import pytest

from repro.errors import SimulationError
from repro.hardware.engine import Engine


class TestDelayCoercion:
    @settings(max_examples=80, deadline=None)
    @given(delay=st.integers(0, 10_000))
    def test_integral_floats_accepted_like_ints(self, delay):
        as_int, as_float = Engine(), Engine()
        fired = []
        as_int.schedule(delay, lambda: fired.append(as_int.now))
        as_float.schedule(float(delay), lambda: fired.append(as_float.now))
        as_int.run_until_idle()
        as_float.run_until_idle()
        assert fired == [delay, delay]

    @settings(max_examples=80, deadline=None)
    @given(
        delay=st.floats(
            min_value=0.0, max_value=10_000.0,
            allow_nan=False, allow_infinity=False,
        ).filter(lambda f: not f.is_integer())
    )
    def test_non_integral_floats_always_rejected(self, delay):
        engine = Engine()
        with pytest.raises(SimulationError, match="integral"):
            engine.schedule(delay, lambda: None)
        assert engine.pending() == 0  # nothing half-scheduled

    @settings(max_examples=40, deadline=None)
    @given(
        delay=st.one_of(
            st.floats(allow_nan=True, allow_infinity=True).filter(
                lambda f: math.isnan(f) or math.isinf(f)
            ),
            st.booleans(),
            st.text(max_size=4),
            st.none(),
        )
    )
    def test_non_cycle_delays_always_rejected(self, delay):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.schedule(delay, lambda: None)
        assert engine.pending() == 0

    @settings(max_examples=40, deadline=None)
    @given(delays=st.lists(st.integers(0, 50), min_size=1, max_size=30))
    def test_dispatch_order_is_time_then_fifo(self, delays):
        """Both loops dispatch (cycle, arrival-order) sorted, exactly."""
        runs = []
        for fast in (True, False):
            engine = Engine(fast_path=fast)
            order = []
            for index, delay in enumerate(delays):
                engine.schedule(delay, lambda d=delay, i=index: order.append((d, i)))
            engine.run_until_idle()
            runs.append(order)
        expected = sorted((d, i) for i, d in enumerate(delays))
        assert runs[0] == expected
        assert runs[1] == expected
