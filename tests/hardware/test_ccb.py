"""Tests for the concurrency control bus."""

import pytest

from repro.errors import SimulationError
from repro.hardware.ccb import IterationCounter
from repro.hardware.ce import Compute
from repro.hardware.machine import CedarMachine


class TestIterationCounter:
    def test_claims_each_iteration_once(self):
        counter = IterationCounter(5)
        claimed = [counter.claim() for _ in range(6)]
        assert claimed == [0, 1, 2, 3, 4, None]

    def test_remaining(self):
        counter = IterationCounter(3)
        counter.claim()
        assert counter.remaining == 2

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            IterationCounter(-1)


class TestConcurrentStart:
    def _run_cdoall(self, iterations, static=False, work_cycles=10):
        machine = CedarMachine()
        cluster = machine.clusters[0]
        executed = []

        def body(ce, iteration):
            executed.append((ce.index_in_cluster, iteration))
            yield Compute(work_cycles)

        done = {}
        cluster.cdoall(iterations, body,
                       on_done=lambda: done.setdefault("at", machine.engine.now),
                       static=static)
        machine.engine.run_until_idle()
        return machine, executed, done

    def test_every_iteration_runs_exactly_once(self):
        _, executed, done = self._run_cdoall(100)
        iterations = sorted(i for _, i in executed)
        assert iterations == list(range(100))
        assert "at" in done

    def test_work_spreads_over_ces(self):
        _, executed, _ = self._run_cdoall(64)
        workers = {ce for ce, _ in executed}
        assert len(workers) == 8  # all CEs of the cluster participate

    def test_static_schedule_round_robin(self):
        _, executed, _ = self._run_cdoall(16, static=True)
        for ce, iteration in executed:
            assert iteration % 8 == ce

    def test_gang_start_cost_applied(self):
        machine, _, done = self._run_cdoall(1, work_cycles=0)
        start = machine.config.ccb.concurrent_start_cycles
        join = machine.config.ccb.join_cycles
        assert done["at"] >= start + join

    def test_self_scheduling_balances_uneven_work(self):
        machine = CedarMachine()
        cluster = machine.clusters[0]
        per_ce_iterations = {}

        def body(ce, iteration):
            per_ce_iterations.setdefault(ce.index_in_cluster, []).append(iteration)
            # One long iteration; the rest short.
            yield Compute(500 if iteration == 0 else 10)

        cluster.cdoall(33, body)
        machine.engine.run_until_idle()
        slow_worker = next(
            ce for ce, its in per_ce_iterations.items() if 0 in its
        )
        # The CE stuck on iteration 0 should claim fewer iterations.
        assert len(per_ce_iterations[slow_worker]) < 33 / 8
