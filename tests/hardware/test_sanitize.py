"""Tests for the hardware invariant sanitizer.

Two halves: clean runs must produce zero violations (and be byte-identical
to unsanitized runs), and every checker class must provably fire when its
invariant is deliberately broken (the fault drills in repro.validate).
"""

import pytest

from repro.errors import SanitizerError, SimulationError
from repro.hardware import sanitize
from repro.hardware.engine import Engine
from repro.hardware.machine import CedarMachine
from repro.hardware.queueing import BoundedWordQueue
from repro.kernels.vector_load import measure_vector_load
from repro.metrics.registry import MetricsRegistry
from repro.metrics.collector import collect_sanitizer
from repro.trace import Tracer, tracing
from repro.validate import FAULT_DRILLS, run_experiment_sanitized
from repro.validate.faults import _drill_engine_schedule


class TestAmbientContext:
    def test_disabled_by_default(self):
        assert sanitize.current() is None

    def test_sanitizing_installs_and_removes(self):
        with sanitize.sanitizing() as sanitizer:
            assert sanitize.current() is sanitizer
        assert sanitize.current() is None

    def test_innermost_block_wins(self):
        with sanitize.sanitizing() as outer:
            with sanitize.sanitizing() as inner:
                assert inner is not outer
                assert sanitize.current() is inner
            assert sanitize.current() is outer

    def test_env_flag_arms_a_process_global(self):
        previous = sanitize.set_enabled(True)
        try:
            first = sanitize.current()
            assert first is not None
            assert sanitize.current() is first  # stable across calls
        finally:
            sanitize.set_enabled(previous)

    def test_components_snapshot_at_construction(self):
        with sanitize.sanitizing():
            armed = BoundedWordQueue(4, name="armed")
        unarmed = BoundedWordQueue(4, name="unarmed")
        assert armed._sanitizer is not None
        assert unarmed._sanitizer is None

    def test_machine_adopts_ambient_sanitizer(self):
        with sanitize.sanitizing() as sanitizer:
            machine = CedarMachine()
        assert machine.sanitizer is sanitizer
        assert CedarMachine().sanitizer is None


class TestFaultDrills:
    """Every checker class must fire on its deliberately injected fault."""

    @pytest.mark.parametrize("invariant", sorted(FAULT_DRILLS))
    def test_drill_raises_its_own_invariant(self, invariant):
        with sanitize.sanitizing() as sanitizer:
            with pytest.raises(SanitizerError) as excinfo:
                FAULT_DRILLS[invariant]()
        assert excinfo.value.invariant == invariant
        assert sanitizer.violations == 1

    def test_error_is_structured(self):
        with sanitize.sanitizing():
            with pytest.raises(SanitizerError) as excinfo:
                FAULT_DRILLS["engine.schedule"]()
        error = excinfo.value
        assert error.invariant == "engine.schedule"
        assert error.component == "engine.schedule_after"
        assert isinstance(error.details, dict) and error.details
        assert "[engine.schedule]" in str(error)
        assert isinstance(error, SimulationError)  # catchable as usual

    def test_violation_carries_open_span_context(self):
        tracer = Tracer(enabled=True)
        tracer.set_clock(lambda: 0)
        with tracing(tracer):
            tracer.begin("drill", "outer_phase")
            with sanitize.sanitizing():
                with pytest.raises(SanitizerError) as excinfo:
                    _drill_engine_schedule()
            tracer.end("drill")
        assert "drill:outer_phase" in excinfo.value.span_context
        assert "outer_phase" in str(excinfo.value)


class TestCleanRuns:
    def test_small_kernel_runs_clean_and_identical(self):
        baseline = repr(measure_vector_load(4))
        with sanitize.sanitizing() as sanitizer:
            sanitized = repr(measure_vector_load(4))
        sanitizer.finalize()
        assert sanitized == baseline  # the sanitizer only observes
        assert sanitizer.violations == 0
        assert sanitizer.total_checks > 0
        # The hot invariant classes all saw traffic on a real kernel.
        for invariant in (
            "queue.capacity",
            "flow_control.credit",
            "network.conservation",
            "network.routing",
            "crossbar.arbiter",
            "queue.head",
            "engine.schedule",
            "memory.balance",
        ):
            assert sanitizer.checks.get(invariant, 0) > 0, invariant

    def test_summary_shape(self):
        with sanitize.sanitizing() as sanitizer:
            measure_vector_load(2)
        sanitizer.finalize()
        summary = sanitizer.summary()
        assert summary["enabled"] is True
        assert summary["violations"] == 0
        assert summary["total_checks"] == sum(summary["checks"].values())
        assert list(summary["checks"]) == sorted(summary["checks"])

    def test_collect_sanitizer_folds_into_registry(self):
        with sanitize.sanitizing() as sanitizer:
            measure_vector_load(2)
        sanitizer.finalize()
        registry = MetricsRegistry()
        collect_sanitizer(registry, sanitizer)
        flat = registry.as_flat_dict()
        assert flat["sanitizer_violations"] == 0
        checked = {
            name: value
            for name, value in flat.items()
            if name.startswith("sanitizer_checks_total")
        }
        assert checked and sum(checked.values()) == sanitizer.total_checks

    def test_run_experiment_sanitized_matches_unsanitized_render(self):
        from repro.experiments.registry import run_experiment

        rendered, _, summary = run_experiment_sanitized("table5")
        assert rendered == run_experiment("table5")
        assert summary["violations"] == 0


class TestFinalize:
    def test_flags_a_packet_vanishing_in_flight(self):
        from repro.config import DEFAULT_CONFIG
        from repro.hardware.network import OmegaNetwork
        from repro.hardware.packet import Packet, PacketKind

        with sanitize.sanitizing() as sanitizer:
            engine = Engine()
            network = OmegaNetwork(engine, 8, DEFAULT_CONFIG.network)
            packet = Packet(
                kind=PacketKind.READ_REQUEST, source=0, destination=3, address=3
            )
            network.try_inject(0, packet)
            engine.run_until_idle()
            # Vaporize the delivered-but-unpopped packet out of its queue.
            queue = network.delivery_queue(3)
            queue._packets.clear()
            queue._used_words = 0
        with pytest.raises(SanitizerError, match="vanished"):
            sanitizer.finalize()

    def test_clean_network_finalizes_quietly(self):
        from repro.config import DEFAULT_CONFIG
        from repro.hardware.network import OmegaNetwork
        from repro.hardware.packet import Packet, PacketKind

        with sanitize.sanitizing() as sanitizer:
            engine = Engine()
            network = OmegaNetwork(engine, 8, DEFAULT_CONFIG.network)
            received = []
            for port in range(8):
                network.attach_sink(port, received.append)
            packet = Packet(
                kind=PacketKind.READ_REQUEST, source=0, destination=3, address=3
            )
            network.try_inject(0, packet)
            engine.run_until_idle()
        sanitizer.finalize()
        assert [p.packet_id for p in received] == [packet.packet_id]
        assert sanitizer.violations == 0
