"""Tests for the explicit global<->cluster block moves."""

import pytest

from repro.hardware.cluster_memory import (
    move_cluster_to_global,
    move_global_to_cluster,
)
from repro.hardware.machine import CedarMachine


class TestGlobalToCluster:
    def test_block_lands_in_cache(self, machine):
        ce = machine.all_ces[0]

        def kernel(c):
            yield from move_global_to_cluster(c, 1000, 64)

        machine.run_kernel(kernel, num_ces=1)
        assert ce.cache.is_resident(1000)
        assert ce.cache.is_resident(1063)

    def test_large_move_chunks_through_the_pfu(self, machine):
        ce = machine.all_ces[0]
        buffer_words = machine.config.prefetch.buffer_words

        def kernel(c):
            yield from move_global_to_cluster(c, 0, buffer_words + 100)

        machine.run_kernel(kernel, num_ces=1)
        # Two prefetches: one full buffer plus the 100-word tail.
        assert len(ce.pfu.completed) == 2

    def test_negative_length_rejected(self, machine):
        ce = machine.all_ces[0]
        with pytest.raises(ValueError):
            list(move_global_to_cluster(ce, 0, -1))


class TestClusterToGlobal:
    def test_stores_reach_memory(self, machine):
        def kernel(ce):
            yield from move_cluster_to_global(ce, 2000, 16)

        machine.run_kernel(kernel, num_ces=1)
        machine.engine.run_until_idle()
        assert machine.global_memory.total_requests_served == 16

    def test_zero_length_is_a_noop(self, machine):
        def kernel(ce):
            yield from move_cluster_to_global(ce, 0, 0)

        machine.run_kernel(kernel, num_ces=1)
        assert machine.global_memory.total_requests_served == 0
