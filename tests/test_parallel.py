"""Tests for the process-per-task parallel runner (repro.parallel)."""

import os
import time

import pytest

from repro.errors import WorkerCrashError
from repro.parallel import parallel_map, run_in_process


def double(payload):
    return payload * 2


def raise_value_error(payload):
    raise ValueError(f"bad payload {payload}")


def exit_hard(payload):
    os._exit(payload)


def slow_double(payload):
    time.sleep(0.05)
    return payload * 2


def echo_with_events(payload, emit):
    for index in range(3):
        emit({"step": index})
    return payload + 1


def crash_after_event(payload, emit):
    emit({"step": 0})
    time.sleep(0.2)  # let the queue's feeder thread flush before dying
    os._exit(7)


class TestParallelMap:
    def test_all_results_delivered(self):
        tasks = [(f"k{i}", i) for i in range(6)]
        results = dict(parallel_map(double, tasks, jobs=3))
        assert results == {f"k{i}": i * 2 for i in range(6)}

    def test_single_job_serializes(self):
        tasks = [("a", 1), ("b", 2)]
        assert dict(parallel_map(slow_double, tasks, jobs=1)) == {"a": 2, "b": 4}

    def test_more_jobs_than_tasks(self):
        assert dict(parallel_map(double, [("only", 21)], jobs=8)) == {"only": 42}

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            list(parallel_map(double, [("a", 1)], jobs=0))

    def test_worker_exception_is_structured(self):
        with pytest.raises(WorkerCrashError) as info:
            dict(parallel_map(raise_value_error, [("table9", 1)], jobs=1))
        error = info.value
        assert error.experiment == "table9"
        assert "ValueError" in str(error)
        assert "bad payload 1" in error.worker_traceback
        assert error.exitcode is None

    def test_dead_worker_is_structured_not_a_hang(self):
        # A worker killed before reporting must surface as a structured
        # error carrying the experiment key -- the bare pool would wait
        # forever for a result that never comes.
        with pytest.raises(WorkerCrashError) as info:
            dict(parallel_map(exit_hard, [("ppt9", 5)], jobs=1))
        assert info.value.experiment == "ppt9"
        assert info.value.exitcode == 5

    def test_crash_does_not_lose_earlier_results(self):
        # Sequential (jobs=1): the first task completes and is yielded
        # before the crashing one is even started.
        seen = {}
        with pytest.raises(WorkerCrashError):
            for key, value in parallel_map(
                exit_if_negative, [("good", 3), ("bad", -1)], jobs=1
            ):
                seen[key] = value
        assert seen == {"good": 6}


def exit_if_negative(payload):
    if payload < 0:
        os._exit(2)
    return payload * 2


class TestRunInProcess:
    def test_result_and_events_in_order(self):
        events = []
        result = run_in_process(echo_with_events, "k", 41, on_event=events.append)
        assert result == 42
        assert events == [{"step": 0}, {"step": 1}, {"step": 2}]

    def test_events_optional(self):
        assert run_in_process(echo_with_events, "k", 1) == 2

    def test_crash_after_events(self):
        events = []
        with pytest.raises(WorkerCrashError) as info:
            run_in_process(crash_after_event, "exp", 0, on_event=events.append)
        assert events == [{"step": 0}]  # events before death still delivered
        assert info.value.experiment == "exp"
        assert info.value.exitcode == 7
