"""Tests for the [GJTV91] characterization suite and the [ZhYe87] DOACROSS."""

import pytest

from repro.kernels.doacross import run_doacross, serial_cycles
from repro.kernels.memory_characterization import (
    aggregate_bandwidth_megabytes,
    measure_stride,
    modules_touched,
    stride_sweep,
)


class TestModulesTouched:
    def test_stride_one_spreads_everywhere(self):
        assert modules_touched(1, 32) == 32

    def test_power_of_two_strides(self):
        assert modules_touched(2, 32) == 16
        assert modules_touched(8, 32) == 4
        assert modules_touched(32, 32) == 1

    def test_odd_strides_spread_fully(self):
        assert modules_touched(3, 32) == 32
        assert modules_touched(31, 32) == 32

    def test_zero_stride_rejected(self):
        with pytest.raises(ValueError):
            modules_touched(0, 32)


class TestStrideSweep:
    def test_stride_32_collapses_to_one_module(self):
        point = measure_stride(32, num_ces=4, blocks=4)
        assert point.modules_touched == 1
        # One module departs a word every (service + handoff) cycles.
        assert point.interarrival >= 3.5

    def test_unit_stride_near_full_rate(self):
        point = measure_stride(1, num_ces=4, blocks=4)
        assert point.interarrival <= 1.5

    def test_sweep_orders_by_interleave_structure(self):
        points = {p.stride: p for p in stride_sweep((1, 32), num_ces=4)}
        assert points[32].interarrival > points[1].interarrival * 2
        assert points[1].megabytes_per_second_per_ce > (
            points[32].megabytes_per_second_per_ce
        )

    def test_aggregate_bandwidth_grows_then_saturates(self):
        small = aggregate_bandwidth_megabytes(4, blocks=6)
        mid = aggregate_bandwidth_megabytes(16, blocks=6)
        large = aggregate_bandwidth_megabytes(32, blocks=6)
        assert mid > small  # more CEs, more aggregate
        # Saturation: doubling the CEs past 16 buys little, and the total
        # stays below the 768 MB/s interface peak -- "the observed maximum
        # bandwidth of memory system characterization benchmarks" sits
        # well under peak [GJTV91].
        assert large < 768.0
        assert large / mid < 1.3


class TestDoacross:
    def test_dependences_enforced(self):
        result = run_doacross(iterations=24, dependence_distance=1,
                              body_cycles=100, num_ces=4)
        assert result.enforced
        order = result.completion_order
        for i in range(1, 24):
            assert order.index(i - 1) < order.index(i)

    def test_distance_two_allows_pipelining(self):
        result = run_doacross(iterations=32, dependence_distance=2,
                              body_cycles=150, num_ces=8)
        assert result.enforced
        assert result.cycles < serial_cycles(32, 150)

    def test_distance_one_limits_speedup(self):
        """A distance-1 recurrence serializes the bodies: the DOACROSS can
        only hide the synchronization latency, never the body chain."""
        result = run_doacross(iterations=16, dependence_distance=1,
                              body_cycles=200, num_ces=8)
        assert result.cycles >= 16 * 200  # the critical path

    def test_larger_distance_is_faster(self):
        tight = run_doacross(iterations=24, dependence_distance=1,
                             body_cycles=150, num_ces=8)
        loose = run_doacross(iterations=24, dependence_distance=4,
                             body_cycles=150, num_ces=8)
        assert loose.cycles < tight.cycles

    def test_validation(self):
        with pytest.raises(ValueError):
            run_doacross(iterations=0, dependence_distance=1)
        with pytest.raises(ValueError):
            run_doacross(iterations=4, dependence_distance=0)
