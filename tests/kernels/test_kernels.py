"""Tests for the Section 4.1 kernels (fast, small windows only)."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.kernels.banded_matvec import BandedMatvec
from repro.kernels.common import BASE_ADDRESS_STRIDE, ce_base_address
from repro.kernels.rank_update import (
    RANK,
    RankUpdateVersion,
    measure_rank_update,
)
from repro.kernels.tridiag_matvec import measure_tridiag
from repro.kernels.vector_load import measure_vector_load


class TestVectorLoad:
    def test_small_run_reports_metrics(self):
        run = measure_vector_load(2, blocks=4)
        assert run.first_word_latency is not None
        assert run.first_word_latency >= 8
        assert run.interarrival >= 1.0
        assert run.flops == 0.0  # pure loads

    def test_contention_raises_interarrival(self):
        lone = measure_vector_load(1, blocks=6)
        crowd = measure_vector_load(16, blocks=6)
        assert crowd.interarrival > lone.interarrival


class TestTridiag:
    def test_flop_accounting(self):
        run = measure_tridiag(1, strips=2)
        block = DEFAULT_CONFIG.prefetch.compiler_block_words
        # Per strip: 2 chained streams (2 flops/elem) + register ops (2).
        assert run.flops == pytest.approx(2 * (3 * 2.0 * block))

    def test_lower_memory_demand_than_vl(self):
        vl = measure_vector_load(16, blocks=6)
        tm = measure_tridiag(16, strips=3)
        assert tm.interarrival <= vl.interarrival + 0.5


class TestRankUpdate:
    def test_versions_ordered_no_pref_slowest(self):
        runs = {
            version: measure_rank_update(version, 1, strips=1)
            for version in RankUpdateVersion
        }
        no_pref = runs[RankUpdateVersion.GM_NO_PREFETCH].mflops
        pref = runs[RankUpdateVersion.GM_PREFETCH].mflops
        assert pref > 2.0 * no_pref

    def test_flops_match_rank(self):
        run = measure_rank_update(RankUpdateVersion.GM_NO_PREFETCH, 1, strips=1)
        strip = DEFAULT_CONFIG.vector.register_length
        assert run.flops == pytest.approx(8 * RANK * strip * 2.0)  # 8 CEs


class TestBandedMatvec:
    def test_flop_count_tridiagonal(self):
        workload = BandedMatvec(n=100, bandwidth=3)
        # 2*bw*n minus the missing edge triangles.
        assert workload.flops == pytest.approx(2 * 3 * 100 - 2 * 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            BandedMatvec(n=0, bandwidth=3)
        with pytest.raises(ValueError):
            BandedMatvec(n=100, bandwidth=4)  # even
        with pytest.raises(ValueError):
            BandedMatvec(n=3, bandwidth=11)

    def test_halo_constant_per_processor(self):
        workload = BandedMatvec(n=4096, bandwidth=11)
        assert workload.halo_words(1) == 0.0
        assert workload.halo_words(16) == 2.0 * 5

    def test_words_touched_scale_with_band(self):
        narrow = BandedMatvec(n=1000, bandwidth=3)
        wide = BandedMatvec(n=1000, bandwidth=11)
        assert wide.words_touched > narrow.words_touched


class TestAddressing:
    def test_base_addresses_disjoint(self, machine):
        ces = machine.ces(4)
        bases = [ce_base_address(ce) for ce in ces]
        assert len(set(bases)) == 4
        assert all(b2 - b1 >= BASE_ADDRESS_STRIDE
                   for b1, b2 in zip(bases, bases[1:]))

    def test_regions_disjoint_within_ce(self, machine):
        ce = machine.all_ces[0]
        assert ce_base_address(ce, 0) != ce_base_address(ce, 1)
