"""Xylem OS study: scheduling, file service, and the TRFD paging story.

Three vignettes on the OS layer:

1. single-user mode vs multiprogramming (why the paper measured in
   single-user mode),
2. the BDNA formatted-I/O fix as a file-system query,
3. the TRFD multicluster TLB-fault storm as a memory-manager experiment.

Run:  python examples/xylem_os_study.py
"""

from repro.lang.placement import Placement
from repro.xylem import ClusterScheduler, FileSystem, MemoryManager, Task


def scheduling_vignette() -> None:
    print("1. Cluster scheduling")
    jobs = [Task(name=f"job{i}", clusters_wanted=2, seconds=30.0)
            for i in range(4)]
    single = ClusterScheduler(num_clusters=4, single_user=True)
    for job in jobs:
        single.submit(Task(name=job.name, clusters_wanted=2, seconds=30.0))
    shared = ClusterScheduler(num_clusters=4, single_user=False)
    for job in jobs:
        shared.submit(Task(name=job.name, clusters_wanted=2, seconds=30.0))
    print(f"   four 2-cluster jobs: single-user makespan "
          f"{single.run_to_completion():.0f}s, multiprogrammed "
          f"{shared.run_to_completion():.0f}s")
    print(f"   utilization: {single.utilization():.2f} vs "
          f"{shared.utilization():.2f} -- single-user mode trades "
          "throughput for determinism.")


def filesystem_vignette() -> None:
    print("2. File service (the BDNA fix)")
    fs = FileSystem()
    trajectory_bytes = 11.5e6
    formatted = fs.seconds_for(trajectory_bytes, formatted=True)
    unformatted = fs.seconds_for(trajectory_bytes, formatted=False)
    print(f"   11.5 MB trajectory: formatted {formatted:.0f}s, "
          f"unformatted {unformatted:.1f}s "
          f"(saves {fs.reformat_savings(trajectory_bytes):.0f}s of BDNA's "
          "70s hand-optimized run)")


def paging_vignette() -> None:
    print("3. Virtual memory (the TRFD pathology)")
    manager = MemoryManager()
    pages = 400
    manager.allocate("integrals", pages * manager.vm.page_words,
                     Placement.GLOBAL)
    ratio = manager.multicluster_fault_ratio("integrals")
    print(f"   walking the integral arrays from all four clusters takes "
          f"{ratio:.1f}x the faults of a one-cluster walk")
    print("   (the paper: 'almost four times the number of page faults "
          "relative to the one-cluster version') -- the distributed-memory "
          "rewrite removed them.")


if __name__ == "__main__":
    scheduling_vignette()
    filesystem_vignette()
    paging_vignette()
