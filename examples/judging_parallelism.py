"""Judging parallelism: apply the five Practical Parallelism Tests.

Evaluates PPT1 (delivered performance), PPT2 (stability), PPT3
(portability via compiler-delivered efficiency) and PPT4 (scalability) for
Cedar against the Cray Y-MP/8 and the CM-5, reproducing Section 4.3's
verdicts.

Run:  python examples/judging_parallelism.py
"""

from repro.baselines import CRAY_YMP8, CM5Model
from repro.core.metrics import CodeResult, Ensemble
from repro.core.ppt import (
    PracticalParallelismReport,
    evaluate_ppt1,
    evaluate_ppt2,
    evaluate_ppt3,
    evaluate_ppt4,
)
from repro.perfect.suite import run_suite
from repro.perfect.versions import Version


def cedar_ensemble(manual: bool) -> Ensemble:
    """Perfect results on the Cedar machine model as an Ensemble."""
    versions = (Version.SERIAL, Version.AUTOMATABLE, Version.HAND)
    grid = run_suite(versions=versions)
    ensemble = Ensemble(machine="cedar", processors=32)
    for code, results in grid.items():
        chosen = results[Version.HAND] if manual else results[Version.AUTOMATABLE]
        ensemble.add(
            CodeResult(
                code=code,
                machine="cedar",
                processors=32,
                serial_seconds=chosen.serial_seconds,
                parallel_seconds=chosen.seconds,
                flop_count=chosen.mflops * chosen.seconds * 1e6,
            )
        )
    return ensemble


def judge_cedar() -> None:
    manual = cedar_ensemble(manual=True)
    automatable = cedar_ensemble(manual=False)
    report = PracticalParallelismReport(machine="cedar")
    report.ppt1 = evaluate_ppt1(manual)
    report.ppt2 = evaluate_ppt2(automatable)
    report.ppt3 = evaluate_ppt3(automatable)

    from repro.experiments.ppt4_scalability import cedar_cg_points

    report.ppt4 = evaluate_ppt4("cedar", cedar_cg_points())

    print("Cedar verdicts:", report.verdicts())
    print(f"  PPT2: instability profile "
          f"{ {e: round(v, 1) for e, v in report.ppt2.instability_by_exclusions.items()} }, "
          f"stable after {report.ppt2.exclusions_needed} exclusions")
    print(f"  PPT3: {report.ppt3.high} high / {report.ppt3.intermediate} "
          f"intermediate / {report.ppt3.unacceptable} unacceptable")
    print(f"  PPT4: scalable at P = "
          f"{report.ppt4.scalable_processor_counts(min_problem_size=4096)} "
          "(production-sized problems)")


def judge_ymp() -> None:
    ensemble = CRAY_YMP8.ensemble()
    report = PracticalParallelismReport(machine="cray-ymp8")
    report.ppt1 = evaluate_ppt1(CRAY_YMP8.ensemble(manual=True))
    report.ppt2 = evaluate_ppt2(ensemble)
    report.ppt3 = evaluate_ppt3(ensemble)
    print("Y-MP/8 verdicts:", report.verdicts())
    print(f"  PPT2 needs {report.ppt2.exclusions_needed} exclusions "
          "(paper: six -- 'the YMP cannot be judged as passing PPT2')")


def judge_cm5() -> None:
    points = []
    for partition in (32, 256, 512):
        model = CM5Model(processors=partition)
        points.extend(model.scalability_points(11, [16384, 65536, 262144]))
    result = evaluate_ppt4("cm5", points)
    print("CM-5 PPT4: scalable at P =", result.scalable_processor_counts(),
          "(intermediate band throughout)")


if __name__ == "__main__":
    judge_cedar()
    judge_ymp()
    judge_cm5()
