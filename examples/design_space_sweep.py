"""Design-space exploration with the machine builder in ~40 lines.

Sweeps memory-system structure around the paper's Cedar -- module count,
interleave granularity, and network port-queue depth -- through the
deterministic stream workload, then prints the Pareto front over
delivered MFLOPS, speedup, and network conflicts.  The same sweep is
available from the command line::

    cedar-repro sweep --axis memory_modules=16,32,64 \\
                      --axis interleave_words=1,4 \\
                      --axis port_queue_words=2,8 --report

Run:  python examples/design_space_sweep.py          (a few seconds)
"""

from repro.builder import CEDAR_SPEC, describe, expand_grid, render_report, run_sweep


def sweep_memory_system() -> None:
    print("Sweeping the memory system around the paper's machine:\n")
    print(describe(CEDAR_SPEC))
    print()
    grid = expand_grid(
        {
            "memory_modules": [16, 32, 64],
            "interleave_words": [1, 4],
            "port_queue_words": [2, 8],
        }
    )
    artifact = run_sweep(grid, jobs=2)
    print(render_report(artifact))
    print(
        "\n-> doubling the modules buys more than deepening the queues: "
        "contention on Cedar is module-side, as Table 2's interarrival "
        "growth already hinted."
    )


if __name__ == "__main__":
    sweep_memory_system()
