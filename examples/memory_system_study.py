"""Memory-system study: reproduce the Section 4.1 story end to end.

Shows (1) the three rank-64 update versions of Table 1 on one and four
clusters -- latency-bound, prefetch-masked, and cache-blocked -- and (2) the
prefetch latency/interarrival degradation of Table 2 with an ablation
demonstrating that deeper queues and faster modules (implementation
constraints, not topology) recover most of it.

Run:  python examples/memory_system_study.py        (takes a few minutes)
"""

from dataclasses import replace

from repro.builder import CEDAR_SPEC, MachineSpec, build_config
from repro.kernels.rank_update import RankUpdateVersion, measure_rank_update
from repro.kernels.vector_load import measure_vector_load


def table1_story() -> None:
    print("Rank-64 update, C += A*B in global memory (Table 1):")
    paper = {
        RankUpdateVersion.GM_NO_PREFETCH: (14.5, 55.0),
        RankUpdateVersion.GM_PREFETCH: (50.0, 104.0),
        RankUpdateVersion.GM_CACHE: (52.0, 208.0),
    }
    for version in RankUpdateVersion:
        one = measure_rank_update(version, 1)
        four = measure_rank_update(version, 4)
        p1, p4 = paper[version]
        print(f"  {version.value:12s} 1 cluster {one.mflops:6.1f} MFLOPS "
              f"(paper {p1:.0f}); 4 clusters {four.mflops:6.1f} (paper {p4:.0f})")
    print("  -> only the cache version approaches the 274 MFLOPS "
          "effective peak; prefetch masks latency but not bandwidth.")


def contention_ablation() -> None:
    print("\nPrefetch stream under contention (Table 2 + [Turn93] ablation):")
    # Structure comes from the machine builder (deeper port queues are a
    # MachineSpec knob); the module speed-up is physics, not topology, so
    # it stays a dataclasses.replace refinement of the elaborated config.
    deep_queues = build_config(MachineSpec(port_queue_words=8))
    for name, config in (
        ("as built", build_config(CEDAR_SPEC)),
        (
            "deep queues + fast modules",
            replace(
                deep_queues,
                global_memory=replace(
                    deep_queues.global_memory, module_cycle_time=1
                ),
            ),
        ),
    ):
        for ces in (8, 32):
            run = measure_vector_load(ces, config)
            print(f"  {name:28s} {ces:2d} CEs: latency "
                  f"{run.first_word_latency:5.1f} cyc, interarrival "
                  f"{run.interarrival:4.2f} cyc")
    print("  -> the degradation tracks the implementation constraints, "
          "not the shuffle-exchange topology.")


if __name__ == "__main__":
    table1_story()
    contention_ablation()
