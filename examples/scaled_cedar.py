"""Scaled-up Cedar: the PPT5 study the paper deferred.

Rebuilds the Cedar design at 8 and 16 clusters (the shuffle-exchange
network grows a third stage past 64 ports) and asks whether the per-CE
prefetch stream survives the reimplementation.

Run:  python examples/scaled_cedar.py     (a few minutes of simulation)
"""

from repro.experiments import ppt5_scaling


def main() -> None:
    study = ppt5_scaling.run((4, 8, 16))
    print(ppt5_scaling.render(study))
    print()
    if study.passed:
        print("The design rescales: with memory modules grown alongside the")
        print("processors, the Table 2 degradation does not deepen -- it was")
        print("the as-built implementation constraints, not the topology")
        print("(the same conclusion [Turn93] reached for the 32-CE machine).")
    else:
        print("The reimplementation loses most of its per-CE bandwidth;")
        print("PPT5 fails for this parameter choice.")


if __name__ == "__main__":
    main()
