"""Quickstart: drive the Cedar simulator, the machine model, and the
methodology in ~60 lines.

Run:  python examples/quickstart.py
"""

from repro import classify_speedup
from repro.builder import CEDAR_SPEC, build
from repro.hardware.ce import ArmFirePrefetch, AwaitPrefetch, ConsumePrefetch
from repro.perfect.suite import run_code
from repro.perfect.versions import Version


def prefetch_roundtrip() -> None:
    """Fire one 32-word prefetch on one CE and read the monitor."""
    machine = build(CEDAR_SPEC)  # the paper's machine, from its spec

    def kernel(ce):
        handle = yield ArmFirePrefetch(length=32, stride=1, start_address=4096)
        yield AwaitPrefetch(handle)
        ce.monitor.record_prefetch(handle)

    machine.run_kernel(kernel, num_ces=1)
    latency, interarrival = machine.monitor.latency_summary()
    print(f"one CE, no contention: first-word latency {latency:.0f} cycles "
          f"(paper minimum: 8), interarrival {interarrival:.1f} (minimum: 1)")


def contention() -> None:
    """The same stream from all 32 CEs: contention raises both metrics."""
    machine = build(CEDAR_SPEC)

    def kernel(ce):
        base = ce.global_port * 1_048_579
        for block in range(8):
            handle = yield ArmFirePrefetch(
                length=32, stride=1, start_address=base + 32 * block
            )
            yield ConsumePrefetch(handle, flops_per_element=2.0)

    cycles = machine.run_kernel(kernel, num_ces=32)
    for ce in machine.all_ces:
        for handle in ce.pfu.completed:
            machine.monitor.record_prefetch(handle)
    latency, interarrival = machine.monitor.latency_summary()
    print(f"32 CEs streaming: latency {latency:.1f} cycles, interarrival "
          f"{interarrival:.2f}; delivered {machine.mflops(cycles):.0f} MFLOPS")


def perfect_code() -> None:
    """One Perfect code through the analytic model, with a band verdict."""
    result = run_code("TRFD", Version.AUTOMATABLE)
    band = classify_speedup(result.improvement, result.processors)
    print(f"TRFD automatable: {result.seconds:.1f}s, "
          f"{result.improvement:.1f}x over serial, {result.mflops:.1f} MFLOPS "
          f"-> {band.value} band at P={result.processors}")


if __name__ == "__main__":
    prefetch_roundtrip()
    contention()
    perfect_code()
