"""Restructuring demo: take Fortran-style loop nests through both
compilers and execute the winner on the analytic Cedar model.

Shows the Section 3.3 pipeline end to end: dependence analysis, the
automatable transformations, balanced stripmining, prefetch insertion,
lowering to a CEDAR FORTRAN DOALL, and execution.

Run:  python examples/restructure_loops.py
"""

from repro.compiler import CedarRestructurer, KapCompiler
from repro.compiler.ir import (
    ArrayRef,
    Assignment,
    Loop,
    LoopNest,
    ScalarRef,
    const,
    var,
)
from repro.lang.program import Program
from repro.model.machine_model import CedarMachineModel


def build_nest() -> LoopNest:
    """do i = 1, 8192:  t = a(i) * w;  s = s + t;  b(i) = t

    A scalar temporary *and* a sum reduction: 1988-KAP gives up; the
    automatable pipeline privatizes t, turns s into a parallel reduction,
    stripmines, and prefetches a and b.
    """
    i = var("i")
    body = (
        Assignment(lhs=ScalarRef("t", True),
                   reads=(ArrayRef("a", (i,)), ScalarRef("w"))),
        Assignment(lhs=ScalarRef("s", True),
                   reads=(ScalarRef("s"), ScalarRef("t")), reduction_op="+"),
        Assignment(lhs=ArrayRef("b", (i,), True), reads=(ScalarRef("t"),)),
    )
    return LoopNest("weighted-sum", Loop("i", const(1), const(8192), body=body))


def main() -> None:
    nest = build_nest()
    kap = KapCompiler().compile(nest)
    print(f"KAP-1988 parallelizes {nest.name!r}: {kap.parallelized}")

    restructurer = CedarRestructurer(processors=32)
    report = restructurer.compile(nest)
    print(f"automatable pipeline: parallel={report.parallelized}")
    print("  transformations:", ", ".join(report.applied))
    strips = report.strips or []
    lengths = sorted({s.length for s in strips})
    print(f"  balanced strips: {len(strips)} strips, lengths {lengths}")
    print(f"  prefetches: {[(p.array, p.length, p.stride) for p in report.prefetches]}")

    doall = restructurer.lower(report, flops_per_iteration=3.0,
                               words_per_iteration=3.0)
    model = CedarMachineModel()
    program = Program(name=nest.name, body=[doall])
    parallel = model.execute(program)
    serial = model.execute_serial(program)
    print(f"  model: serial {serial.seconds * 1e3:.2f} ms -> parallel "
          f"{parallel.seconds * 1e3:.2f} ms "
          f"({serial.seconds / parallel.seconds:.1f}x on 32 CEs)")


if __name__ == "__main__":
    main()
