"""Process-per-task parallel runner with structured crash reporting.

This replaces the bare ``multiprocessing.Pool`` behind ``--jobs N`` (both
``cedar-repro run`` and ``cedar-repro bench``) and backs the serving
tier's job execution.  Three properties matter and the stock pool gives
none of them:

* **A worker exception surfaces as a structured error.**  The child
  catches everything, ships ``(experiment, repr, traceback)`` back, and
  the parent raises :class:`~repro.errors.WorkerCrashError` carrying the
  experiment key -- not a pickled traceback proxy of unknown type.
* **A dead worker surfaces instead of wedging the queue.**  If a child is
  killed (OOM, segfault in an extension, ``os._exit``) before reporting,
  ``Pool.imap_unordered`` waits forever for a result that will never
  come.  Here the parent polls child liveness whenever the result queue
  is idle and raises :class:`WorkerCrashError` with the exit code.
* **Workers can stream events.**  :func:`run_in_process` gives the child
  an ``emit`` callback whose payloads are forwarded to the parent's
  ``on_event`` as they happen -- the transport for the serve tier's
  per-job progress stream off the trace bus.

Each task runs in a fresh process (the ``maxtasksperchild=1`` policy the
pool paths already used), so simulator state can never leak between
experiments.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import traceback
from typing import Callable, Iterator, Optional, Sequence, Tuple

from repro.errors import WorkerCrashError

#: How long the parent keeps draining the result queue after noticing a
#: dead child, before declaring the result lost.  A child that exited
#: cleanly flushes its queue feeder at interpreter exit, so anything it
#: reported becomes readable well within this window.
_DRAIN_SECONDS = 1.0

#: Poll interval for the combined "result or dead worker" wait.
_POLL_SECONDS = 0.1


def _child_main(worker, key, payload, channel, streams_events) -> None:
    """Child-process entry: run one task, report exactly one terminal message."""
    try:
        if streams_events:
            def emit(data: object) -> None:
                channel.put(("event", key, data))

            result = worker(payload, emit)
        else:
            result = worker(payload)
    except BaseException as error:  # report, don't let it vanish with the process
        channel.put(("error", key, repr(error), traceback.format_exc()))
    else:
        channel.put(("ok", key, result))


class _TaskProcesses:
    """Bookkeeping shared by :func:`run_in_process` and :func:`parallel_map`.

    ``daemon=False`` lets a worker spawn its own children (a partitioned
    run inside a serve job worker); such workers are still terminated by
    :meth:`terminate_all` on the error paths, so nothing outlives the
    parent in practice.
    """

    def __init__(self, daemon: bool = True) -> None:
        self.context = multiprocessing.get_context()
        self.channel = self.context.Queue()
        self.daemon = daemon
        self.active: dict = {}  # key -> Process
        self.done: set = set()  # keys whose terminal message arrived

    def spawn(self, worker, key, payload, streams_events: bool) -> None:
        process = self.context.Process(
            target=_child_main,
            args=(worker, key, payload, self.channel, streams_events),
            daemon=self.daemon,
        )
        process.start()
        self.active[key] = process

    def dead_worker(self) -> Optional[Tuple[str, int]]:
        """A (key, exitcode) whose process died without a terminal message."""
        for key, process in self.active.items():
            if key not in self.done and not process.is_alive():
                process.join()
                return key, process.exitcode
        return None

    def next_message(self) -> Tuple:
        """Block for the next message; raise on a silently dead worker."""
        while True:
            try:
                return self.channel.get(timeout=_POLL_SECONDS)
            except queue_mod.Empty:
                pass
            dead = self.dead_worker()
            if dead is None:
                continue
            # The child may have flushed its report into the pipe in the
            # instant before we saw it die -- drain before declaring loss.
            deadline = int(_DRAIN_SECONDS / _POLL_SECONDS)
            for _ in range(deadline):
                try:
                    return self.channel.get(timeout=_POLL_SECONDS)
                except queue_mod.Empty:
                    continue
            key, exitcode = dead
            del self.active[key]
            raise WorkerCrashError(
                key,
                "worker process died before reporting a result",
                exitcode=exitcode,
            )

    def reap(self, key) -> None:
        self.done.add(key)
        process = self.active.pop(key, None)
        if process is not None:
            process.join()

    def terminate_all(self) -> None:
        for process in self.active.values():
            if process.is_alive():
                process.terminate()
        for process in self.active.values():
            process.join()
        self.active.clear()
        self.channel.close()


def run_in_process(
    worker: Callable[[object, Callable[[object], None]], object],
    key: str,
    payload: object,
    on_event: Optional[Callable[[object], None]] = None,
    daemon: bool = True,
) -> object:
    """Run ``worker(payload, emit)`` in a fresh process; return its result.

    Every ``emit(data)`` call in the child is forwarded to ``on_event`` in
    the parent, in order, before the result is returned.  A worker
    exception or silent death raises :class:`WorkerCrashError` tagged with
    ``key``.  Blocking -- the serve tier calls this from an executor
    thread, one per in-flight job.  ``daemon=False`` allows the worker to
    spawn its own processes (partitioned simulation inside a serve job).
    """
    tasks = _TaskProcesses(daemon=daemon)
    try:
        tasks.spawn(worker, key, payload, streams_events=True)
        while True:
            message = tasks.next_message()
            kind = message[0]
            if kind == "event":
                if on_event is not None:
                    on_event(message[2])
                continue
            tasks.reap(message[1])
            if kind == "error":
                raise WorkerCrashError(
                    key, message[2], worker_traceback=message[3]
                )
            return message[2]
    finally:
        tasks.terminate_all()


def parallel_map(
    worker: Callable[[object], object],
    tasks: Sequence[Tuple[str, object]],
    jobs: int,
) -> Iterator[Tuple[str, object]]:
    """Run ``worker(payload)`` for every ``(key, payload)`` task.

    Up to ``jobs`` single-shot worker processes run at once; results are
    yielded ``(key, result)`` in completion order (collect into a dict and
    re-walk your key order for deterministic output, as the CLI and bench
    merge paths do).  The first worker exception or death raises
    :class:`WorkerCrashError` for its experiment; remaining workers are
    terminated.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    pool = _TaskProcesses()
    pending = list(tasks)
    pending.reverse()  # pop() from the front of the caller's order
    try:
        while pending and len(pool.active) < jobs:
            key, payload = pending.pop()
            pool.spawn(worker, key, payload, streams_events=False)
        remaining = len(pool.active) + len(pending)
        while remaining:
            message = pool.next_message()
            kind, key = message[0], message[1]
            pool.reap(key)
            if kind == "error":
                raise WorkerCrashError(key, message[2], worker_traceback=message[3])
            if pending:
                next_key, next_payload = pending.pop()
                pool.spawn(worker, next_key, next_payload, streams_events=False)
            remaining -= 1
            yield key, message[2]
    finally:
        pool.terminate_all()
