"""A Fortran-subset front end for the restructuring compiler.

Parses the dialect the Perfect kernels are written in -- counted DO loops
over assignments with affine subscripts -- into the loop-nest IR, so the
compiler gallery can be driven from source text rather than hand-built IR::

    DO 10 I = 1, N
       T = A(I)
       S = S + T * T
       B(I) = T
 10 CONTINUE

Supported: nested DO/CONTINUE (labelled or END DO), integer bounds or
symbolic names, affine subscripts (``A(2*I+1)``, ``B(I,J)``), scalar and
array assignments, ``+``/``-``/``*`` expressions (non-affine operand
structure is flattened to a read set, which is all the dependence passes
need), reduction forms ``S = S + expr`` and induction forms ``K = K + 3``.

This is a teaching-scale front end: no declarations, no control flow, no
I/O.  Anything outside the subset raises :class:`repro.errors.CompilerError`
with the offending line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler.ir import (
    AffineExpr,
    ArrayRef,
    Assignment,
    Loop,
    LoopNest,
    Reference,
    ScalarRef,
    const,
    var,
)
from repro.errors import CompilerError

_DO_RE = re.compile(
    r"^DO\s+(?:(?P<label>\d+)\s+)?(?P<index>[A-Z][A-Z0-9]*)\s*=\s*"
    r"(?P<lower>[^,]+),\s*(?P<upper>[^,]+?)(?:,\s*(?P<step>[^,]+))?$",
    re.IGNORECASE,
)
_ASSIGN_RE = re.compile(
    r"^(?P<lhs>[A-Z][A-Z0-9]*(?:\([^)]*\))?)\s*=\s*(?P<rhs>.+)$",
    re.IGNORECASE,
)
_REF_RE = re.compile(r"([A-Z][A-Z0-9]*)(\(([^()]*)\))?", re.IGNORECASE)
_NAME_RE = re.compile(r"^[A-Z][A-Z0-9]*$", re.IGNORECASE)
_INT_RE = re.compile(r"^[+-]?\d+$")


@dataclass
class _Line:
    number: int
    label: Optional[str]
    text: str


def _strip_lines(source: str) -> List[_Line]:
    lines: List[_Line] = []
    for number, raw in enumerate(source.splitlines(), start=1):
        text = raw.split("!", 1)[0].strip()
        if not text or text.upper().startswith("C "):
            continue
        label = None
        match = re.match(r"^(\d+)\s+(.*)$", text)
        if match and not text.upper().startswith("DO"):
            label, text = match.group(1), match.group(2).strip()
        lines.append(_Line(number=number, label=label, text=text))
    return lines


def parse_affine(text: str, line: int = 0) -> AffineExpr:
    """Parse ``2*I + J - 3`` into an affine expression."""
    expr = AffineExpr()
    # Tokenize into signed terms.
    cleaned = text.replace(" ", "")
    if not cleaned:
        raise CompilerError(f"line {line}: empty subscript expression")
    terms = re.findall(r"[+-]?[^+-]+", cleaned)
    for term in terms:
        sign = -1 if term.startswith("-") else 1
        body = term.lstrip("+-")
        if not body:
            raise CompilerError(f"line {line}: malformed term in {text!r}")
        factors = body.split("*")
        coefficient = sign
        name: Optional[str] = None
        for factor in factors:
            if _INT_RE.match(factor):
                coefficient *= int(factor)
            elif _NAME_RE.match(factor):
                if name is not None:
                    raise CompilerError(
                        f"line {line}: non-affine product {body!r}"
                    )
                name = factor.upper()
            else:
                raise CompilerError(
                    f"line {line}: cannot parse subscript factor {factor!r}"
                )
        expr = expr + (var(name) * coefficient if name else const(coefficient))
    return expr


def _parse_reference(text: str, line: int, is_write: bool) -> Reference:
    match = _REF_RE.fullmatch(text.strip())
    if not match:
        raise CompilerError(f"line {line}: cannot parse reference {text!r}")
    name = match.group(1).upper()
    if match.group(2) is None:
        return ScalarRef(name=name, is_write=is_write)
    subscripts = tuple(
        parse_affine(s, line) for s in match.group(3).split(",")
    )
    return ArrayRef(array=name, subscripts=subscripts, is_write=is_write)


def _reads_of(rhs: str, line: int) -> List[Reference]:
    reads: List[Reference] = []
    consumed = set()
    for match in _REF_RE.finditer(rhs):
        if match.start() in consumed:
            continue
        name = match.group(1).upper()
        if _INT_RE.match(name):
            continue
        if match.group(2) is None:
            reads.append(ScalarRef(name=name))
        else:
            subscripts = tuple(
                parse_affine(s, line) for s in match.group(3).split(",")
            )
            reads.append(ArrayRef(array=name, subscripts=subscripts))
    return reads


def _detect_self_update(
    lhs: Reference, rhs: str, line: int
) -> Tuple[Optional[str], Optional[int]]:
    """Recognize ``X = X op rest``: returns (reduction_op, increment)."""
    lhs_text = lhs.name if isinstance(lhs, ScalarRef) else None
    if lhs_text is None:
        return None, None
    cleaned = rhs.replace(" ", "")
    for op_char, op_name in (("+", "+"), ("*", "*")):
        prefix = f"{lhs_text.upper()}{op_char}"
        if cleaned.upper().startswith(prefix):
            rest = cleaned[len(prefix):]
            if op_name == "+" and _INT_RE.match(rest):
                return "+", int(rest)
            return op_name, None
    return None, None


def parse_nest(source: str, name: str = "nest",
               symbols: Optional[Dict[str, int]] = None) -> LoopNest:
    """Parse one top-level DO nest into a :class:`LoopNest`."""
    lines = _strip_lines(source)
    if not lines:
        raise CompilerError("empty source")
    position = {"index": 0}

    def parse_block(terminator: Optional[str]) -> List[object]:
        statements: List[object] = []
        while position["index"] < len(lines):
            line = lines[position["index"]]
            upper = line.text.upper()
            if terminator is not None:
                if upper in ("END DO", "ENDDO", "CONTINUE") or (
                    line.label == terminator and upper == "CONTINUE"
                ):
                    position["index"] += 1
                    return statements
            do_match = _DO_RE.match(line.text)
            if do_match:
                position["index"] += 1
                statements.append(_parse_loop(do_match, line))
                continue
            assign_match = _ASSIGN_RE.match(line.text)
            if assign_match:
                position["index"] += 1
                statements.append(_parse_assignment(assign_match, line))
                continue
            raise CompilerError(
                f"line {line.number}: unsupported statement {line.text!r}"
            )
        if terminator is not None:
            raise CompilerError("unterminated DO loop")
        return statements

    def _parse_loop(match: "re.Match[str]", line: _Line) -> Loop:
        step_text = match.group("step")
        step = int(step_text) if step_text else 1
        body = parse_block(match.group("label") or "END")
        return Loop(
            index=match.group("index").upper(),
            lower=parse_affine(match.group("lower"), line.number),
            upper=parse_affine(match.group("upper"), line.number),
            step=step,
            body=tuple(body),
        )

    def _parse_assignment(match: "re.Match[str]", line: _Line) -> Assignment:
        lhs = _parse_reference(match.group("lhs"), line.number, is_write=True)
        rhs = match.group("rhs")
        reads = _reads_of(rhs, line.number)
        reduction_op, increment = _detect_self_update(lhs, rhs, line.number)
        return Assignment(
            lhs=lhs,
            reads=tuple(reads),
            reduction_op=reduction_op,
            increment=increment,
        )

    statements = parse_block(None)
    loops = [s for s in statements if isinstance(s, Loop)]
    if len(loops) != 1 or len(statements) != 1:
        raise CompilerError(
            "expected exactly one top-level DO nest, got "
            f"{len(statements)} statements"
        )
    return LoopNest(name=name, root=loops[0], symbols=dict(symbols or {}))
