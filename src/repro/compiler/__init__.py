"""The Cedar restructuring compiler (Sections 3 and 3.3).

The project had two phases: retargeting the 1988 KAP restructurer
(:mod:`repro.compiler.kap`) and finding the *automatable* transformations
that make real applications fast (:mod:`repro.compiler.restructurer`):
"array privatization, parallel reductions, advanced induction variable
substitution, runtime data dependence tests, balanced stripmining, and
parallelization in the presence of SAVE and RETURN statements".

The compiler works on a small affine loop-nest IR (:mod:`repro.compiler.ir`)
with GCD/Banerjee dependence testing (:mod:`repro.compiler.dependence`),
and lowers parallelized nests to the :mod:`repro.lang` constructs the
machine model executes.
"""

from repro.compiler.dependence import (
    Dependence,
    DependenceKind,
    find_dependences,
    loop_carried_dependences,
)
from repro.compiler.ir import (
    Assignment,
    ArrayRef,
    AffineExpr,
    Loop,
    LoopNest,
    ScalarRef,
    const,
    var,
)
from repro.compiler.kap import KapCompiler
from repro.compiler.restructurer import CedarRestructurer, CompilationReport

__all__ = [
    "AffineExpr",
    "ArrayRef",
    "Assignment",
    "Loop",
    "LoopNest",
    "ScalarRef",
    "const",
    "var",
    "Dependence",
    "DependenceKind",
    "find_dependences",
    "loop_carried_dependences",
    "KapCompiler",
    "CedarRestructurer",
    "CompilationReport",
]
