"""Advanced induction-variable substitution.

A scalar updated by a loop-invariant amount every iteration (``k = k + 3``)
serializes the loop, but its value is the closed form
``k0 + 3 * (i - lower)``; substituting that form into every subscript that
uses it removes the dependence.  "Advanced" in the paper means doing this
through symbolic increments and across statements -- our IR captures the
single-increment core of the transformation.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Tuple

from repro.compiler.ir import (
    AffineExpr,
    ArrayRef,
    Assignment,
    Loop,
    ScalarRef,
    Statement,
    var,
)


def _find_induction_updates(loop: Loop) -> Dict[str, int]:
    """Scalars updated exactly once per iteration by an integer constant."""
    counts: Dict[str, int] = {}
    increments: Dict[str, int] = {}
    for statement in loop.body:  # only top-level updates are substituted
        if isinstance(statement, Loop):
            continue
        lhs = statement.lhs
        if not isinstance(lhs, ScalarRef):
            continue
        if statement.increment is None or statement.reduction_op != "+":
            continue
        counts[lhs.name] = counts.get(lhs.name, 0) + 1
        increments[lhs.name] = statement.increment
    return {
        name: inc
        for name, inc in increments.items()
        if counts[name] == 1 and name != loop.index
    }


def substitute_induction_variables(loop: Loop) -> Loop:
    """Rewrite subscripts using closed forms and drop the updates.

    The closed form assumes the variable enters the loop holding its
    symbolic initial value (kept under its own name), i.e.
    ``k == k_initial + inc * (i - lower)`` *after* the update in iteration
    ``i`` when the update precedes its uses; Cedar Fortran codes of this
    shape update the induction variable at the top of the body, which is
    the convention we implement.
    """
    inductions = _find_induction_updates(loop)
    if not inductions:
        return loop

    def closed_form(name: str, increment: int) -> AffineExpr:
        # k_initial + inc * (i - lower + 1), update-at-top convention.
        i = var(loop.index)
        return var(name) + (i - loop.lower + 1) * increment

    def rewrite_expr(expr: AffineExpr) -> AffineExpr:
        result = expr
        for name, increment in inductions.items():
            if result.coefficient(name) != 0:
                # Substitute the closed form for k, keeping `name` as the
                # symbolic initial value.
                coeff = result.coefficient(name)
                without = result.substitute(name, AffineExpr())
                result = without + closed_form(name, increment) * coeff
        return result

    new_body: List[Statement] = []
    for statement in loop.body:
        if isinstance(statement, Loop):
            new_body.append(substitute_induction_variables(statement))
            continue
        lhs = statement.lhs
        if (
            isinstance(lhs, ScalarRef)
            and lhs.name in inductions
            and statement.increment is not None
        ):
            continue  # the update disappears
        new_refs = []
        for ref in statement.reads:
            if isinstance(ref, ArrayRef):
                new_refs.append(
                    replace(
                        ref,
                        subscripts=tuple(rewrite_expr(s) for s in ref.subscripts),
                    )
                )
            else:
                new_refs.append(ref)
        new_lhs = statement.lhs
        if isinstance(new_lhs, ArrayRef):
            new_lhs = replace(
                new_lhs,
                subscripts=tuple(rewrite_expr(s) for s in new_lhs.subscripts),
            )
        new_body.append(
            replace(statement, lhs=new_lhs, reads=tuple(new_refs))
        )
    return loop.with_body(new_body)
