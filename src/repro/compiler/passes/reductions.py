"""Parallel reduction recognition.

``s = s + expr`` (or ``*``, ``max``, ``min``) carries a dependence through
``s``, but the operation is associative: each processor can accumulate a
private partial and the run-time library combines them -- on Cedar, with
Test-And-Add synchronization instructions in global memory.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Set

from repro.compiler.ir import ArrayRef, Assignment, Loop, ScalarRef

ASSOCIATIVE_OPS = {"+", "*", "max", "min"}


def _reads_itself(statement: Assignment) -> bool:
    lhs = statement.lhs
    for ref in statement.reads:
        if isinstance(lhs, ScalarRef) and isinstance(ref, ScalarRef):
            if ref.name == lhs.name:
                return True
        if isinstance(lhs, ArrayRef) and isinstance(ref, ArrayRef):
            if ref.array == lhs.array and ref.subscripts == lhs.subscripts:
                return True
    return False


def recognize_reductions(loop: Loop) -> Loop:
    """Mark scalar (and invariant array-element) reductions on ``loop``.

    A variable qualifies when every one of its writes in the loop is a
    self-update with one associative operator and it is not otherwise read.
    Induction updates (integer ``increment``) are left for the induction
    pass -- substituting them is more profitable than reducing them.
    """
    candidate_ops: dict = {}
    disqualified: Set[str] = set()
    for statement in loop.statements():
        lhs = statement.lhs
        name = lhs.array if isinstance(lhs, ArrayRef) else lhs.name
        is_reduction_shape = (
            statement.reduction_op in ASSOCIATIVE_OPS
            and statement.increment is None
            and _reads_itself(statement)
        )
        if is_reduction_shape:
            seen = candidate_ops.get(name)
            if seen is not None and seen != statement.reduction_op:
                disqualified.add(name)  # mixed operators: not associative
            candidate_ops[name] = statement.reduction_op
        else:
            disqualified.add(name)
            # A non-reduction statement observing any variable's running
            # value mid-loop disqualifies that variable.
            for ref in statement.reads:
                ref_name = ref.array if isinstance(ref, ArrayRef) else ref.name
                disqualified.add(ref_name)

    reductions: List[str] = [
        name for name in sorted(candidate_ops) if name not in disqualified
    ]
    if not reductions:
        return loop
    return replace(loop, reductions=tuple(reductions))
