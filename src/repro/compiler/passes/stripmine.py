"""Balanced stripmining.

Splitting an N-iteration DOALL into P strips of ceil(N/P) leaves the last
processor short-changed (or idle); *balanced* stripmining hands the first
``N mod P`` processors one extra iteration so the strip lengths differ by
at most one -- the shape the Cedar run-time library's static scheduling
expects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.compiler.ir import Loop
from repro.errors import CompilerError


@dataclass(frozen=True)
class Strip:
    """One processor's contiguous share of the iteration space."""

    processor: int
    start: int
    length: int

    @property
    def stop(self) -> int:
        """Exclusive end."""
        return self.start + self.length


def balanced_strips(trip_count: int, processors: int) -> List[Strip]:
    """Partition ``trip_count`` iterations over ``processors`` evenly.

    Every strip has length floor(N/P) or floor(N/P)+1 and the strips tile
    the space exactly.
    """
    if trip_count < 0:
        raise CompilerError(f"trip count must be >= 0, got {trip_count}")
    if processors < 1:
        raise CompilerError(f"processors must be >= 1, got {processors}")
    base = trip_count // processors
    extra = trip_count % processors
    strips: List[Strip] = []
    start = 0
    for p in range(processors):
        length = base + (1 if p < extra else 0)
        strips.append(Strip(processor=p, start=start, length=length))
        start += length
    return strips


def balanced_stripmine(
    loop: Loop, processors: int, symbols=None
) -> Tuple[Loop, List[Strip]]:
    """Annotate ``loop`` with its balanced strip decomposition.

    The IR keeps the loop intact (the run-time library applies the strip
    bounds at dispatch); the strip list is returned for the lowering and
    for load-balance verification.
    """
    trip = loop.trip_count(symbols)
    if trip is None:
        raise CompilerError(
            f"cannot stripmine loop over {loop.index}: symbolic trip count"
        )
    return loop, balanced_strips(trip, processors)
