"""Restructuring passes (the transformations of Section 3.3)."""

from repro.compiler.passes.induction import substitute_induction_variables
from repro.compiler.passes.parallelize import parallelize
from repro.compiler.passes.prefetch_insert import PrefetchDirective, insert_prefetches
from repro.compiler.passes.privatization import privatize
from repro.compiler.passes.reductions import recognize_reductions
from repro.compiler.passes.runtime_test import insert_runtime_tests
from repro.compiler.passes.stripmine import balanced_stripmine

__all__ = [
    "substitute_induction_variables",
    "privatize",
    "recognize_reductions",
    "insert_runtime_tests",
    "parallelize",
    "balanced_stripmine",
    "insert_prefetches",
    "PrefetchDirective",
]
