"""Run-time data dependence tests.

When subscripts involve values unknown at compile time (index arrays,
symbolic strides), the restructurer can emit both versions of the loop and
a cheap run-time check that picks the parallel one when the actual values
are conflict-free -- one of the automatable transformations the paper
credits for the Perfect improvements.
"""

from __future__ import annotations

from dataclasses import replace

from repro.compiler.dependence import loop_carried_dependences
from repro.compiler.ir import Loop
from repro.compiler.passes.parallelize import parallelize


def insert_runtime_tests(loop: Loop, symbols=None) -> Loop:
    """Parallelize ``loop`` under a run-time test when that is what it takes.

    Returns the loop with ``parallel=True, needs_runtime_test=True`` if the
    only obstacles are unprovable (symbolic) dependences; otherwise the
    loop is returned unchanged.
    """
    if loop.parallel:
        return loop
    with_tests = parallelize(loop, symbols, allow_runtime_tests=True)
    if with_tests.parallel and with_tests.needs_runtime_test:
        return with_tests
    return loop


def runtime_test_overhead_cycles(loop: Loop) -> int:
    """Cost of the inspector: one pass over the checked subscripts.

    Charged once per loop instance by the lowering; proportional to the
    trip count when known, else a nominal inspector length.
    """
    trip = loop.trip_count() or 128
    return 4 * trip  # compare/mark per iteration in the inspector loop
