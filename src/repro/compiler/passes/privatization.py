"""Array and scalar privatization.

"In all Perfect programs we have found loop-local data placement to be an
important factor" (Section 3.2) -- and privatization is the transformation
that legalizes it: a variable whose every use within an iteration is
preceded by a definition in that same iteration can be given one private
copy per processor, removing the false loop-carried dependence.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Set

from repro.compiler.ir import ArrayRef, Assignment, Loop, ScalarRef


def _first_access_is_write(loop: Loop) -> Dict[str, bool]:
    """Per variable: is the lexically first access in an iteration a write?

    Lexical order approximates execution order inside one iteration (the
    IR has no control flow), which is the classical sufficient condition
    for privatization.
    """
    first: Dict[str, bool] = {}
    for statement in loop.statements():
        # Reads of a statement happen before its write.
        for ref in statement.reads:
            name = ref.array if isinstance(ref, ArrayRef) else ref.name
            first.setdefault(name, False)
        lhs = statement.lhs
        name = lhs.array if isinstance(lhs, ArrayRef) else lhs.name
        first.setdefault(name, True)
    return first


def _varies_with(ref: ArrayRef, index: str) -> bool:
    return any(s.coefficient(index) != 0 for s in ref.subscripts)


def privatize(loop: Loop) -> Loop:
    """Mark privatizable variables of ``loop`` in its ``private`` tuple.

    Candidates:
    * scalars defined before use in the iteration (classic scalar
      expansion, realized as loop-local declarations on Cedar);
    * arrays whose references do not vary with the loop index (per-
      iteration work arrays) and are defined before use.
    """
    first_write = _first_access_is_write(loop)
    read_only: Set[str] = set()
    written: Set[str] = set()
    arrays_varying: Set[str] = set()
    for statement in loop.statements():
        for ref in statement.references:
            if isinstance(ref, ArrayRef):
                name = ref.array
                if _varies_with(ref, loop.index):
                    arrays_varying.add(name)
            else:
                name = ref.name
            if ref.is_write:
                written.add(name)
            else:
                read_only.add(name)

    private: List[str] = []
    for name in sorted(written):
        if name == loop.index:
            continue
        if not first_write.get(name, False):
            continue  # upward-exposed read: not privatizable
        if name in arrays_varying:
            continue  # indexed by the parallel loop: not a work array
        private.append(name)
    if not private:
        return loop
    return replace(loop, private=tuple(private))
