"""Compiler-directed prefetch insertion (Section 3.2, "Data Prefetching").

"The compiler backend inserts an explicit prefetch instruction, of length
32 words or less, before each vector operation which has a global memory
operand.  The compiler then attempts to float the prefetch instructions in
order to overlap prefetch operations with computation.  This rarely
succeeds and thus most of the time prefetch is started immediately before
the vector instruction."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.compiler.ir import ArrayRef, Assignment, Loop

#: Compiler-generated prefetches cover at most 32 words.
MAX_PREFETCH_WORDS = 32


@dataclass(frozen=True)
class PrefetchDirective:
    """One inserted prefetch: which operand, how long, and whether floated."""

    array: str
    statement_id: int
    length: int
    stride: int
    floated: bool

    def __post_init__(self) -> None:
        if not 1 <= self.length <= MAX_PREFETCH_WORDS:
            raise ValueError(
                f"prefetch length must be 1..{MAX_PREFETCH_WORDS}, "
                f"got {self.length}"
            )


def _innermost_index(loop: Loop) -> str:
    inner = loop
    for candidate in loop.inner_loops():
        inner = candidate
    return inner.index


def insert_prefetches(
    loop: Loop,
    global_arrays: Set[str],
    vector_length: int = MAX_PREFETCH_WORDS,
) -> List[PrefetchDirective]:
    """Plan prefetches for global-memory vector operands of ``loop``.

    A read of a global array whose innermost subscript coefficient is a
    (small) constant stride gets a prefetch of up to 32 words.  A prefetch
    *floats* -- starts ahead of the vector operation, fully overlapping --
    only when the same statement also has non-global operands to chew on;
    otherwise it issues immediately before the vector instruction (the
    common case the paper reports).
    """
    index = _innermost_index(loop)
    trip = loop.trip_count() or vector_length
    directives: List[PrefetchDirective] = []
    seen: Set[tuple] = set()
    for statement in loop.statements():
        has_local_operand = any(
            isinstance(ref, ArrayRef) and ref.array not in global_arrays
            for ref in statement.reads
        )
        for ref in statement.reads:
            if not isinstance(ref, ArrayRef) or ref.array not in global_arrays:
                continue
            stride = _vector_stride(ref, index)
            if stride is None:
                continue  # scalar or gather access: not prefetchable
            key = (statement.statement_id, ref.array, stride)
            if key in seen:
                continue
            seen.add(key)
            directives.append(
                PrefetchDirective(
                    array=ref.array,
                    statement_id=statement.statement_id,
                    length=min(MAX_PREFETCH_WORDS, vector_length, trip),
                    stride=stride,
                    floated=has_local_operand,
                )
            )
    return directives


def _vector_stride(ref: ArrayRef, index: str) -> Optional[int]:
    """The access stride along the vectorized index, if affine in it."""
    strides = [s.coefficient(index) for s in ref.subscripts]
    nonzero = [s for s in strides if s != 0]
    if not nonzero:
        return None
    if len(nonzero) > 1:
        return None  # coupled subscripts: treat as non-streaming
    return nonzero[0]
