"""The parallelization driver: decide whether a loop can run as a DOALL.

A loop parallelizes when every loop-carried dependence is neutralized by an
earlier transformation: privatized variables carry no dependence, reduction
variables are combined by the run-time library, and symbolic-subscript
dependences can be deferred to a run-time test.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.compiler.dependence import Dependence, loop_carried_dependences
from repro.compiler.ir import Loop


def blocking_dependences(
    loop: Loop,
    symbols: Optional[Dict[str, int]] = None,
    allow_runtime_tests: bool = False,
) -> List[Dependence]:
    """Loop-carried dependences not covered by private/reduction markers."""
    neutralized = set(loop.private) | set(loop.reductions)
    blocking = []
    for dependence in loop_carried_dependences(loop, symbols):
        if dependence.variable in neutralized:
            continue
        if allow_runtime_tests and dependence.distance is None:
            # Unprovable (symbolic) dependence: a run-time data dependence
            # test can check the actual subscript values before choosing
            # the parallel version.
            continue
        blocking.append(dependence)
    return blocking


def parallelize(
    loop: Loop,
    symbols: Optional[Dict[str, int]] = None,
    allow_runtime_tests: bool = False,
) -> Loop:
    """Set ``parallel`` (and ``needs_runtime_test``) when legal."""
    blocking = blocking_dependences(loop, symbols, allow_runtime_tests)
    if blocking:
        return replace(loop, parallel=False)
    if allow_runtime_tests:
        deferred = any(
            d.distance is None
            for d in loop_carried_dependences(loop, symbols)
            if d.variable not in set(loop.private) | set(loop.reductions)
        )
        return replace(loop, parallel=True, needs_runtime_test=deferred)
    return replace(loop, parallel=True)
