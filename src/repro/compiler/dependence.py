"""Data-dependence analysis: ZIV, strong-SIV/GCD, and Banerjee bounds.

The tests decide, for a pair of references to the same array inside a loop,
whether an iteration can touch a location another iteration touches.  Only
dependences *carried* by the candidate loop block parallelization; loop-
independent dependences are execution-order within one iteration.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.compiler.ir import (
    AffineExpr,
    ArrayRef,
    Assignment,
    Loop,
    Reference,
    ScalarRef,
)


class DependenceKind(enum.Enum):
    """Classic dependence taxonomy."""

    FLOW = "flow"  # write then read
    ANTI = "anti"  # read then write
    OUTPUT = "output"  # write then write


@dataclass(frozen=True)
class Dependence:
    """One (possible) dependence between two references."""

    kind: DependenceKind
    variable: str
    source: Reference
    sink: Reference
    carried_by: Optional[str]  # loop index carrying it; None = loop-independent
    distance: Optional[int] = None  # iteration distance when provable

    @property
    def loop_carried(self) -> bool:
        return self.carried_by is not None


def _pairs(
    statements: List[Assignment],
) -> Iterator[Tuple[Reference, Reference]]:
    refs: List[Reference] = []
    for statement in statements:
        refs.extend(statement.references)
    for i, a in enumerate(refs):
        for b in refs[i:]:
            if a.is_write or b.is_write:
                yield a, b


def _name_of(ref: Reference) -> str:
    return ref.array if isinstance(ref, ArrayRef) else ref.name


def _kind(a: Reference, b: Reference) -> DependenceKind:
    if a.is_write and b.is_write:
        return DependenceKind.OUTPUT
    return DependenceKind.FLOW if a.is_write else DependenceKind.ANTI


def _subscript_dependence(
    a: AffineExpr,
    b: AffineExpr,
    loop: Loop,
    symbols: Dict[str, int],
) -> Tuple[bool, Optional[int]]:
    """Can ``a`` at iteration i equal ``b`` at iteration i'?

    Returns (possible, distance): a strong-SIV pair yields a concrete
    distance; otherwise GCD and Banerjee-style bound checks may disprove
    the dependence, else it is conservatively assumed.
    """
    index = loop.index
    ca = a.coefficient(index)
    cb = b.coefficient(index)
    difference = a - b  # f(i) - g(i') with both in terms of `index`
    other_vars = [v for v in difference.variables if v != index]
    unresolved = [v for v in other_vars if v not in symbols]
    if unresolved:
        return True, None  # symbolic subscripts: assume dependence
    residual = difference.constant + sum(
        difference.coefficient(v) * symbols[v] for v in other_vars
    )

    # ZIV: neither subscript varies with the loop.
    if ca == 0 and cb == 0:
        return residual == 0, None

    # Strong SIV: a*i + c1 = a*i' + c2 -> distance = (c2 - c1) / a.
    if ca == cb != 0:
        if residual % ca != 0:
            return False, None
        distance = -residual // ca
        trip = loop.trip_count(symbols)
        if trip is not None and abs(distance) >= trip:
            return False, None
        return True, distance

    # General SIV/GCD: ca*i - cb*i' = -residual must be divisible by gcd.
    gcd = math.gcd(abs(ca), abs(cb))
    if gcd and residual % gcd != 0:
        return False, None

    # Banerjee-style extreme-value test over the iteration range.
    trip = loop.trip_count(symbols)
    if trip is not None:
        lower = loop.lower
        low = lower.constant + sum(
            lower.coefficient(v) * symbols.get(v, 0) for v in lower.variables
        )
        high = low + (trip - 1) * loop.step
        terms = [ca * low, ca * high, -cb * low, -cb * high]
        minimum = min(ca * low, ca * high) + min(-cb * low, -cb * high)
        maximum = max(ca * low, ca * high) + max(-cb * low, -cb * high)
        if not minimum <= -residual <= maximum:
            return False, None
    return True, None


def find_dependences(
    loop: Loop, symbols: Optional[Dict[str, int]] = None
) -> List[Dependence]:
    """All dependences among references in ``loop``'s body."""
    symbols = symbols or {}
    statements = list(loop.statements())
    found: List[Dependence] = []
    for a, b in _pairs(statements):
        if _name_of(a) != _name_of(b):
            continue
        if isinstance(a, ScalarRef) or isinstance(b, ScalarRef):
            # Scalars collide in every iteration unless privatized.
            found.append(
                Dependence(
                    kind=_kind(a, b),
                    variable=_name_of(a),
                    source=a,
                    sink=b,
                    carried_by=loop.index,
                    distance=None,
                )
            )
            continue
        assert isinstance(a, ArrayRef) and isinstance(b, ArrayRef)
        if len(a.subscripts) != len(b.subscripts):
            raise ValueError(
                f"array {a.array} referenced with inconsistent rank"
            )
        possible = True
        distance: Optional[int] = None
        for sa, sb in zip(a.subscripts, b.subscripts):
            dim_possible, dim_distance = _subscript_dependence(
                sa, sb, loop, symbols
            )
            if not dim_possible:
                possible = False
                break
            if dim_distance is not None:
                if distance is None:
                    distance = dim_distance
                elif distance != dim_distance:
                    possible = False  # inconsistent distances: no solution
                    break
        if not possible:
            continue
        carried = loop.index if distance != 0 else None
        found.append(
            Dependence(
                kind=_kind(a, b),
                variable=a.array,
                source=a,
                sink=b,
                carried_by=carried,
                distance=distance,
            )
        )
    return found


def loop_carried_dependences(
    loop: Loop, symbols: Optional[Dict[str, int]] = None
) -> List[Dependence]:
    """Only the dependences that forbid running ``loop`` as a DOALL."""
    return [d for d in find_dependences(loop, symbols) if d.loop_carried]
