"""A small affine loop-nest IR for the restructuring compiler.

Programs are Fortran-style loop nests over array assignments whose
subscripts are affine in the loop indices (the domain classical dependence
tests cover).  The IR is deliberately minimal: enough to demonstrate every
transformation Section 3.3 lists on realistic kernels, not a full Fortran
front end.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import CompilerError


# ---------------------------------------------------------------------------
# Affine expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AffineExpr:
    """``sum(coeff_i * var_i) + constant`` over loop indices and symbols."""

    coefficients: Tuple[Tuple[str, int], ...] = ()
    constant: int = 0

    @property
    def coeff_map(self) -> Dict[str, int]:
        return dict(self.coefficients)

    def coefficient(self, name: str) -> int:
        return self.coeff_map.get(name, 0)

    @property
    def variables(self) -> List[str]:
        return [name for name, coeff in self.coefficients if coeff != 0]

    @property
    def is_constant(self) -> bool:
        return not self.variables

    def __add__(self, other: Union["AffineExpr", int]) -> "AffineExpr":
        other = _as_expr(other)
        merged = self.coeff_map
        for name, coeff in other.coefficients:
            merged[name] = merged.get(name, 0) + coeff
        return AffineExpr(
            coefficients=tuple(
                sorted((n, c) for n, c in merged.items() if c != 0)
            ),
            constant=self.constant + other.constant,
        )

    def __radd__(self, other: int) -> "AffineExpr":
        return self + other

    def __sub__(self, other: Union["AffineExpr", int]) -> "AffineExpr":
        return self + (_as_expr(other) * -1)

    def __rsub__(self, other: int) -> "AffineExpr":
        return _as_expr(other) - self

    def __mul__(self, factor: int) -> "AffineExpr":
        if not isinstance(factor, int):
            raise CompilerError("affine expressions scale by integers only")
        return AffineExpr(
            coefficients=tuple(
                (n, c * factor) for n, c in self.coefficients if c * factor != 0
            ),
            constant=self.constant * factor,
        )

    def __rmul__(self, factor: int) -> "AffineExpr":
        return self * factor

    def substitute(self, name: str, value: "AffineExpr") -> "AffineExpr":
        """Replace a variable by an affine expression."""
        coeff = self.coefficient(name)
        if coeff == 0:
            return self
        without = AffineExpr(
            coefficients=tuple(
                (n, c) for n, c in self.coefficients if n != name
            ),
            constant=self.constant,
        )
        return without + value * coeff

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = [
            (f"{c}*{n}" if c != 1 else n) for n, c in self.coefficients
        ]
        if self.constant or not parts:
            parts.append(str(self.constant))
        return " + ".join(parts)


def var(name: str) -> AffineExpr:
    """An affine expression consisting of one variable."""
    return AffineExpr(coefficients=((name, 1),))


def const(value: int) -> AffineExpr:
    """A constant affine expression."""
    return AffineExpr(constant=value)


def _as_expr(value: Union[AffineExpr, int]) -> AffineExpr:
    if isinstance(value, AffineExpr):
        return value
    if isinstance(value, int):
        return const(value)
    raise CompilerError(f"cannot coerce {value!r} to an affine expression")


# ---------------------------------------------------------------------------
# References and statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ArrayRef:
    """A subscripted array reference."""

    array: str
    subscripts: Tuple[AffineExpr, ...]
    is_write: bool = False

    def __str__(self) -> str:  # pragma: no cover
        subs = ", ".join(str(s) for s in self.subscripts)
        return f"{self.array}({subs})"


@dataclass(frozen=True)
class ScalarRef:
    """A scalar variable reference."""

    name: str
    is_write: bool = False

    def __str__(self) -> str:  # pragma: no cover
        return self.name


Reference = Union[ArrayRef, ScalarRef]

_statement_ids = itertools.count()


@dataclass(frozen=True)
class Assignment:
    """``lhs = f(reads...)``.

    ``reduction_op`` marks ``s = s OP expr`` forms; when the update is by a
    loop-invariant integer amount, ``increment`` carries it (the shape the
    induction-variable substitution pass rewrites).
    """

    lhs: Reference
    reads: Tuple[Reference, ...] = ()
    reduction_op: Optional[str] = None  # "+", "*", "max", "min"
    increment: Optional[int] = None
    statement_id: int = field(default_factory=lambda: next(_statement_ids))

    def __post_init__(self) -> None:
        if not self.lhs.is_write:
            object.__setattr__(
                self, "lhs",
                replace(self.lhs, is_write=True),  # type: ignore[arg-type]
            )

    @property
    def references(self) -> Tuple[Reference, ...]:
        return (self.lhs,) + self.reads


Statement = Union[Assignment, "Loop"]


# ---------------------------------------------------------------------------
# Loops
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Loop:
    """A counted DO loop with unit logical structure.

    Attributes:
        index: Loop-index variable name.
        lower: Inclusive lower bound.
        upper: Inclusive upper bound (affine; symbolic bounds allowed).
        step: Positive integer step.
        body: Statements and nested loops.
        parallel: Set by the parallelizer when iterations are independent.
        private: Variables made private per iteration (privatization pass).
        reductions: Scalar names recognized as parallel reductions.
        needs_runtime_test: The parallelization is legal only under a
            run-time dependence test.
    """

    index: str
    lower: AffineExpr
    upper: AffineExpr
    step: int = 1
    body: Tuple[Statement, ...] = ()
    parallel: bool = False
    private: Tuple[str, ...] = ()
    reductions: Tuple[str, ...] = ()
    needs_runtime_test: bool = False

    def __post_init__(self) -> None:
        if self.step < 1:
            raise CompilerError("loop step must be a positive integer")

    def trip_count(self, symbols: Optional[Dict[str, int]] = None) -> Optional[int]:
        """Concrete trip count when the bounds are known."""
        lower = _evaluate(self.lower, symbols)
        upper = _evaluate(self.upper, symbols)
        if lower is None or upper is None:
            return None
        if upper < lower:
            return 0
        return (upper - lower) // self.step + 1

    def statements(self) -> Iterator[Assignment]:
        """All assignments in this loop, depth first."""
        for statement in self.body:
            if isinstance(statement, Loop):
                yield from statement.statements()
            else:
                yield statement

    def inner_loops(self) -> Iterator["Loop"]:
        for statement in self.body:
            if isinstance(statement, Loop):
                yield statement
                yield from statement.inner_loops()

    def with_body(self, body: Sequence[Statement]) -> "Loop":
        return replace(self, body=tuple(body))


def _evaluate(
    expr: AffineExpr, symbols: Optional[Dict[str, int]] = None
) -> Optional[int]:
    total = expr.constant
    for name, coeff in expr.coefficients:
        if symbols is None or name not in symbols:
            return None
        total += coeff * symbols[name]
    return total


@dataclass(frozen=True)
class LoopNest:
    """A named top-level loop nest (one subroutine's hot loop)."""

    name: str
    root: Loop
    symbols: Dict[str, int] = field(default_factory=dict)

    def trip_count(self) -> Optional[int]:
        return self.root.trip_count(self.symbols)
