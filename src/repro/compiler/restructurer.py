"""The automatable restructuring pipeline (Section 3.3, second phase).

Applies, in order: advanced induction-variable substitution, array/scalar
privatization, parallel-reduction recognition, parallelization with
run-time dependence tests, balanced stripmining, and prefetch insertion --
then lowers the result to the :mod:`repro.lang` constructs the machine
model executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.compiler.ir import ArrayRef, Loop, LoopNest
from repro.compiler.passes.induction import substitute_induction_variables
from repro.compiler.passes.parallelize import parallelize
from repro.compiler.passes.prefetch_insert import (
    PrefetchDirective,
    insert_prefetches,
)
from repro.compiler.passes.privatization import privatize
from repro.compiler.passes.reductions import recognize_reductions
from repro.compiler.passes.runtime_test import insert_runtime_tests
from repro.compiler.passes.stripmine import Strip, balanced_stripmine
from repro.lang.loops import Doall, LoopKind, Work
from repro.lang.placement import Placement


@dataclass
class CompilationReport:
    """What the restructurer did to one loop nest."""

    nest: LoopNest
    loop: Loop
    applied: List[str] = field(default_factory=list)
    strips: Optional[List[Strip]] = None
    prefetches: List[PrefetchDirective] = field(default_factory=list)

    @property
    def parallelized(self) -> bool:
        return self.loop.parallel


class CedarRestructurer:
    """The automatable pipeline."""

    name = "cedar-automatable"

    def __init__(self, processors: int = 32) -> None:
        if processors < 1:
            raise ValueError(f"processors must be >= 1, got {processors}")
        self.processors = processors

    def compile(
        self,
        nest: LoopNest,
        global_arrays: Optional[Set[str]] = None,
    ) -> CompilationReport:
        report = CompilationReport(nest=nest, loop=nest.root)
        loop = nest.root

        transformed = substitute_induction_variables(loop)
        if transformed is not loop:
            report.applied.append("induction-substitution")
        loop = transformed

        transformed = privatize(loop)
        if transformed.private:
            report.applied.append(
                "privatization(" + ", ".join(transformed.private) + ")"
            )
        loop = transformed

        transformed = recognize_reductions(loop)
        if transformed.reductions:
            report.applied.append(
                "reductions(" + ", ".join(transformed.reductions) + ")"
            )
        loop = transformed

        loop = parallelize(loop, nest.symbols)
        if not loop.parallel:
            loop = insert_runtime_tests(loop, nest.symbols)
            if loop.needs_runtime_test:
                report.applied.append("runtime-dependence-test")

        if loop.parallel:
            report.applied.append("parallelize")
            trip = loop.trip_count(nest.symbols)
            if trip is not None:
                loop, strips = balanced_stripmine(
                    loop.with_body(loop.body),
                    min(self.processors, max(trip, 1)),
                    nest.symbols,
                )
                report.strips = strips
                report.applied.append("balanced-stripmine")
            report.prefetches = insert_prefetches(
                loop,
                global_arrays
                if global_arrays is not None
                else self._default_globals(loop),
            )
            if report.prefetches:
                report.applied.append(
                    f"prefetch-insertion({len(report.prefetches)})"
                )
        report.loop = loop
        return report

    @staticmethod
    def _default_globals(loop: Loop) -> Set[str]:
        """Arrays indexed by the parallel loop are shared, hence GLOBAL."""
        shared: Set[str] = set()
        for statement in loop.statements():
            for ref in statement.references:
                if isinstance(ref, ArrayRef) and any(
                    s.coefficient(loop.index) != 0 for s in ref.subscripts
                ):
                    shared.add(ref.array)
        return shared

    # -- lowering -----------------------------------------------------------

    def lower(
        self,
        report: CompilationReport,
        flops_per_iteration: float = 10.0,
        words_per_iteration: float = 6.0,
    ) -> Doall:
        """Lower a parallelized nest to a lang-level DOALL for the model."""
        loop = report.loop
        if not loop.parallel:
            raise ValueError(
                f"loop nest {report.nest.name!r} was not parallelized"
            )
        trip = loop.trip_count(report.nest.symbols) or 1
        prefetchable = 0.0
        if report.prefetches:
            unit_stride = sum(1 for p in report.prefetches if abs(p.stride) == 1)
            prefetchable = 0.5 + 0.5 * unit_stride / len(report.prefetches)
        return Doall(
            kind=LoopKind.XDOALL,
            trip_count=trip,
            body=Work(
                flops=flops_per_iteration,
                memory_words=words_per_iteration,
                vector_fraction=0.9,
                vector_length=min(32, trip),
            ),
            placement=Placement.GLOBAL if report.prefetches else Placement.CLUSTER,
            prefetchable_fraction=prefetchable,
            label=report.nest.name,
        )
