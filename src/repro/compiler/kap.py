"""The 1988-KAP-level automatic parallelizer (Section 3.3, first phase).

"In the first phase we retargeted an early copy of KAP restructurer to
Cedar (KAP from KAI as released in 1988) ... with the original compiler
most programs have very limited performance improvement."  The model of
that compiler: dependence-test-based DOALL detection only -- no array
privatization, no parallel reductions, no induction substitution, no
run-time tests.  Scalar temporaries and accumulations therefore serialize
most real loops, which is exactly the paper's observation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.compiler.ir import Loop, LoopNest
from repro.compiler.passes.parallelize import parallelize


@dataclass
class KapResult:
    """What KAP made of one loop nest."""

    nest: LoopNest
    loop: Loop

    @property
    def parallelized(self) -> bool:
        return self.loop.parallel


class KapCompiler:
    """Dependence tests and DOALL marking; nothing else."""

    name = "kap-1988"

    def compile(self, nest: LoopNest) -> KapResult:
        loop = parallelize(nest.root, nest.symbols, allow_runtime_tests=False)
        return KapResult(nest=nest, loop=loop)

    def compile_all(self, nests: List[LoopNest]) -> Dict[str, KapResult]:
        return {nest.name: self.compile(nest) for nest in nests}
