"""Merging per-worker columnar trace buffers into one timeline.

``--jobs N`` runs (and, eventually, partitioned parallel simulation per
ROADMAP item 2) trace each experiment in its own worker process, so a run
produces N independent columnar buffers.  :class:`TraceMerger` splices
them into one coherent :class:`~repro.trace.columnar.TraceSnapshot`:

* **epochs are renumbered cumulatively** in the order snapshots are added
  (worker A's epochs 0..a, then worker B's as a+1..), so every machine run
  keeps its own Chrome-trace "process";
* **string ids are remapped** into one union interning table;
* **records are stably time-sorted** per kind by ``(epoch, cycle, seq)``,
  with the store-wide sequence number as the deterministic tiebreak;
* **aggregates are summed** (busy cycles, span counts, counter totals) or
  offset (elapsed-by-epoch), exactly as one shared tracer would have
  accumulated them.

Because the merge is a pure function of the added snapshots *in add
order*, feeding it the per-experiment buffers in experiment-key order
yields byte-identical exports whether those buffers came from one process
or from ``--jobs N`` workers -- the determinism contract CI's
merge-determinism smoke step pins down.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Tuple, Union

from repro.trace.columnar import (
    INSTANT_INT_COLUMNS,
    SAMPLE_INT_COLUMNS,
    SPAN_INT_COLUMNS,
    StringTable,
    TraceSnapshot,
    render_value,
)

#: Per kind: (int column names, time column used as the sort key).
_KIND_LAYOUT = {
    "spans": (SPAN_INT_COLUMNS, "start"),
    "instants": (INSTANT_INT_COLUMNS, "cycle"),
    "samples": (SAMPLE_INT_COLUMNS, "cycle"),
}


def _merge_sum(target: Dict[str, float], source: Dict[str, float]) -> None:
    for key, value in source.items():
        target[key] = target.get(key, 0) + value


class TraceMerger:
    """Accumulates per-worker snapshots; :meth:`merge` yields one timeline."""

    def __init__(self) -> None:
        self._snapshots: List[TraceSnapshot] = []

    def add(self, snapshot: Union[TraceSnapshot, bytes]) -> None:
        """Add one worker's buffer (a snapshot or its wire bytes).

        Add order is semantic: it assigns the epoch renumbering, so
        callers must add in a deterministic order (the CLI uses
        experiment-key order) for reproducible merges.
        """
        if isinstance(snapshot, (bytes, bytearray, memoryview)):
            snapshot = TraceSnapshot.from_bytes(bytes(snapshot))
        self._snapshots.append(snapshot)

    def __len__(self) -> int:
        return len(self._snapshots)

    def merge(self) -> TraceSnapshot:
        """One snapshot spanning every added buffer (see module docstring)."""
        merged = TraceSnapshot()
        strings = StringTable()
        merged.values_rendered = True

        rows: Dict[str, List[tuple]] = {kind: [] for kind in _KIND_LAYOUT}
        objs: Dict[str, List[object]] = {kind: [] for kind in _KIND_LAYOUT}
        epoch_offset = 0
        seq_offset = 0
        for snap in self._snapshots:
            id_map = [strings.intern(s) for s in snap.strings]
            for kind, (int_names, _) in _KIND_LAYOUT.items():
                columns = [snap.column(kind, name) for name in int_names]
                if kind == "spans":
                    obj_column = snap.column(kind, "args")
                elif kind == "instants":
                    obj_column = [
                        value if snap.values_rendered else render_value(value)
                        for value in snap.column(kind, "value")
                    ]
                else:
                    obj_column = snap.column(kind, "value")
                seq_at = int_names.index("seq")
                comp_at = int_names.index("component")
                name_at = int_names.index("name")
                epoch_at = int_names.index("epoch")
                for row in zip(*columns, obj_column):
                    row = list(row)
                    row[seq_at] += seq_offset
                    row[comp_at] = id_map[row[comp_at]]
                    row[name_at] = id_map[row[name_at]]
                    row[epoch_at] += epoch_offset
                    objs[kind].append(row.pop())
                    rows[kind].append(tuple(row))
            _merge_sum(merged.busy_cycles, snap.busy_cycles)
            _merge_sum(merged.span_counts, snap.span_counts)
            for component, totals in snap.counter_totals.items():
                _merge_sum(
                    merged.counter_totals.setdefault(component, {}), totals
                )
            for epoch, cycles in snap.elapsed_by_epoch.items():
                merged.elapsed_by_epoch[epoch + epoch_offset] = cycles
            merged.dropped += snap.dropped
            merged.records_seen += snap.records_seen
            merged.buffer_bytes += snap.buffer_bytes
            epoch_offset += snap.epochs
            seq_offset += max(snap.records_seen, 1)
        merged.epochs = epoch_offset or 1

        for kind, (int_names, time_name) in _KIND_LAYOUT.items():
            seq_at = int_names.index("seq")
            epoch_at = int_names.index("epoch")
            time_at = int_names.index(time_name)
            order = sorted(
                range(len(rows[kind])),
                key=lambda i: (
                    rows[kind][i][epoch_at],
                    rows[kind][i][time_at],
                    rows[kind][i][seq_at],
                ),
            )
            kind_rows = rows[kind]
            kind_objs = objs[kind]
            for index, name in enumerate(int_names):
                column = array("q", (kind_rows[i][index] for i in order))
                merged.int_columns[kind][name] = (memoryview(column),)
            if kind == "samples":
                merged.float_columns[kind]["value"] = (
                    memoryview(array("d", (kind_objs[i] for i in order))),
                )
            else:
                obj_name = "args" if kind == "spans" else "value"
                merged.obj_columns[kind][obj_name] = (
                    [kind_objs[i] for i in order],
                )
            merged.counts[kind] = len(kind_rows)

        merged.strings = strings.strings
        return merged
