"""The machine-wide instrumentation bus.

The paper's methodology rests on external hardware performance monitors:
event tracers and histogrammers cascaded across the machine, fed by hardware
signals from every subsystem (Section 2, "Performance monitoring").  This
module is the simulator-side generalization of that cabling: a single
:class:`Tracer` *bus* that every hardware component (crossbars, networks,
memory modules, caches, prefetch units, the concurrency control bus, the
synchronization processors) and the analytic machine model report into.

Three record kinds are collected:

* **counters** -- monotonically accumulated totals per (component, name),
  optionally with a bounded sampled timeline for utilization plots;
* **spans** -- [start, end) intervals (a memory module servicing a request,
  a prefetch in flight, one cost term of the analytic model);
* **instants** -- point events (software-posted events, bus signals).

Like the paper's 1M-event tracers, the record store is bounded
(``max_records``); overflowing records are counted in :attr:`Tracer.dropped`
rather than silently lost, while counter *totals* and busy-cycle aggregates
stay exact regardless.

Zero overhead when disabled: every recording entry point starts with an
``enabled`` check, and hot components hold ``tracer.if_enabled()`` -- ``None``
when tracing is off -- so the per-event cost of a disabled tracer is a single
``is not None`` test.

The bus side (:meth:`Tracer.publish` / :meth:`Tracer.subscribe`) always
delivers, independent of ``enabled``: the paper-faithful
:class:`~repro.hardware.monitor.PerformanceMonitor` consumes its Table 2
signals through subscriptions, and those measurements must not depend on
whether anyone is also recording a timeline.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import TraceError

Clock = Callable[[], int]

#: Default bound on stored records, matching the hardware tracers' 1M events.
DEFAULT_MAX_RECORDS = 1_000_000


@dataclass(frozen=True)
class Span:
    """One [start, end) interval on a component's timeline."""

    component: str
    name: str
    epoch: int
    start: int
    end: int
    depth: int = 0
    args: Optional[Dict[str, object]] = None

    @property
    def cycles(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class Instant:
    """A point event on a component's timeline."""

    component: str
    name: str
    epoch: int
    cycle: int
    value: object = None


@dataclass(frozen=True)
class CounterSample:
    """One sampled point of a counter's timeline."""

    component: str
    name: str
    epoch: int
    cycle: int
    value: float


class CounterSet:
    """Named counters belonging to one component.

    Totals are exact and unbounded; sampled timeline points go through the
    owning tracer's bounded record store.
    """

    def __init__(self, component: str, tracer: "Tracer") -> None:
        self.component = component
        self._tracer = tracer
        self.totals: Dict[str, float] = {}

    def add(self, name: str, delta: float = 1) -> float:
        """Accumulate ``delta`` into counter ``name``; returns the new total."""
        total = self.totals.get(name, 0) + delta
        self.totals[name] = total
        return total

    def sample(self, name: str, value: float, cycle: int) -> None:
        """Set counter ``name`` to ``value`` and record a timeline point."""
        self.totals[name] = value
        self._tracer._record_sample(self.component, name, cycle, value)

    def get(self, name: str) -> float:
        return self.totals.get(name, 0)


class Tracer:
    """The instrumentation event bus attached to a machine's clock.

    One tracer can observe several consecutive machine instances (e.g. the
    twelve kernel runs behind Table 2): each :meth:`set_clock` call opens a
    new *epoch*, so runs whose engines all start at cycle 0 stay separable
    in exports (one trace "process" per epoch).
    """

    def __init__(
        self,
        enabled: bool = True,
        clock: Optional[Clock] = None,
        max_records: int = DEFAULT_MAX_RECORDS,
    ) -> None:
        if max_records < 1:
            raise TraceError(f"max_records must be >= 1, got {max_records}")
        self.enabled = enabled
        self.clock = clock
        self.max_records = max_records
        self.epoch = 0
        self.dropped = 0
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self.samples: List[CounterSample] = []
        self._clock_was_set = clock is not None
        self._counter_sets: Dict[str, CounterSet] = {}
        self._span_stacks: Dict[str, List[Tuple[str, int, Optional[Dict[str, object]]]]] = {}
        self._subscribers: Dict[str, List[Callable[[object], None]]] = {}
        self._busy: Dict[str, int] = {}
        self._span_counts: Dict[str, int] = {}
        self._elapsed: Dict[int, int] = {}

    # -- lifecycle ---------------------------------------------------------

    def if_enabled(self) -> Optional["Tracer"]:
        """``self`` when recording, else ``None`` (the hot-path guard)."""
        return self if self.enabled else None

    def set_clock(self, clock: Clock) -> None:
        """Attach to a (new) machine clock, opening a fresh epoch."""
        if self._clock_was_set:
            self.epoch += 1
        self._clock_was_set = True
        self.clock = clock

    def now(self) -> int:
        if self.clock is None:
            raise TraceError("tracer has no clock; call set_clock() first")
        return self.clock()

    # -- counters ----------------------------------------------------------

    def counters(self, component: str) -> CounterSet:
        """Get or create the :class:`CounterSet` of ``component``."""
        counters = self._counter_sets.get(component)
        if counters is None:
            counters = self._counter_sets[component] = CounterSet(component, self)
        return counters

    def count(self, component: str, name: str, delta: float = 1) -> None:
        """Accumulate into a counter (no-op when disabled)."""
        if not self.enabled:
            return
        self.counters(component).add(name, delta)

    def sample(self, component: str, name: str, value: float, cycle: int) -> None:
        """Record a counter timeline point (no-op when disabled)."""
        if not self.enabled:
            return
        self.counters(component).sample(name, value, cycle)

    def counter_totals(self) -> Dict[str, Dict[str, float]]:
        """{component: {counter: total}} for every non-empty counter set."""
        return {
            component: dict(counters.totals)
            for component, counters in sorted(self._counter_sets.items())
            if counters.totals
        }

    # -- spans -------------------------------------------------------------

    def begin(self, component: str, name: str, **args: object) -> None:
        """Open a (nestable) span on ``component`` at the current clock."""
        if not self.enabled:
            return
        stack = self._span_stacks.setdefault(component, [])
        stack.append((name, self.now(), args or None))

    def end(self, component: str) -> None:
        """Close the innermost open span of ``component``."""
        if not self.enabled:
            return
        stack = self._span_stacks.get(component)
        if not stack:
            raise TraceError(f"end() without begin() on component {component!r}")
        name, start, args = stack.pop()
        self._record_span(
            Span(
                component=component,
                name=name,
                epoch=self.epoch,
                start=start,
                end=self.now(),
                depth=len(stack),
                args=args,
            )
        )

    @contextmanager
    def span(self, component: str, name: str, **args: object) -> Iterator[None]:
        """``with tracer.span("machine", "run_kernel"): ...``"""
        self.begin(component, name, **args)
        try:
            yield
        finally:
            self.end(component)

    def complete(
        self, component: str, name: str, start: int, end: int, **args: object
    ) -> None:
        """Record an already-timed interval (no clock or stack involved).

        This is the form hardware components use: they know their service
        intervals exactly and may have many in flight per component, where a
        begin/end stack would mis-nest.
        """
        if not self.enabled:
            return
        if end < start:
            raise TraceError(f"span {component}/{name} ends before it starts")
        self._record_span(
            Span(
                component=component,
                name=name,
                epoch=self.epoch,
                start=start,
                end=end,
                args=args or None,
            )
        )

    def open_spans(self, component: str) -> int:
        """Depth of the begin/end stack (for tests and sanity checks)."""
        return len(self._span_stacks.get(component, ()))

    def open_span_names(self, component: Optional[str] = None) -> List[str]:
        """Names of the currently open spans, outermost first.

        With ``component`` given, only that component's stack; otherwise
        every open span across the machine, prefixed with its component.
        The sanitizer embeds this context in :class:`SanitizerError`s so a
        violation reports *what the machine was doing* when it fired.
        """
        if component is not None:
            return [name for name, _, _ in self._span_stacks.get(component, ())]
        names: List[str] = []
        for comp in sorted(self._span_stacks):
            for name, _, _ in self._span_stacks[comp]:
                names.append(f"{comp}:{name}")
        return names

    # -- instants ----------------------------------------------------------

    def instant(
        self, component: str, name: str, cycle: Optional[int] = None, value: object = None
    ) -> None:
        """Record a point event (no-op when disabled)."""
        if not self.enabled:
            return
        if cycle is None:
            cycle = self.now() if self.clock is not None else 0
        self._note_cycle(cycle)
        self._record(Instant(component, name, self.epoch, cycle, value))

    # -- the bus (always on) -----------------------------------------------

    def subscribe(self, signal: str, handler: Callable[[object], None]) -> None:
        """Deliver every published ``signal`` value to ``handler``."""
        self._subscribers.setdefault(signal, []).append(handler)

    def publish(self, signal: str, value: object = None) -> None:
        """Deliver ``value`` to subscribers; also recorded when enabled."""
        handlers = self._subscribers.get(signal)
        if handlers:
            for handler in handlers:
                handler(value)
        if self.enabled:
            self.instant("bus", signal, value=value)

    # -- aggregates for reporting -------------------------------------------

    def busy_cycles(self) -> Dict[str, int]:
        """Total span cycles per component (exact, unaffected by drops)."""
        return dict(self._busy)

    def span_counts(self) -> Dict[str, int]:
        return dict(self._span_counts)

    def elapsed_by_epoch(self) -> Dict[int, int]:
        """Largest cycle observed per epoch (the utilization denominator)."""
        return dict(self._elapsed)

    @property
    def num_records(self) -> int:
        return len(self.spans) + len(self.instants) + len(self.samples)

    # -- internals ---------------------------------------------------------

    def _record_span(self, span: Span) -> None:
        self._busy[span.component] = self._busy.get(span.component, 0) + span.cycles
        self._span_counts[span.component] = self._span_counts.get(span.component, 0) + 1
        self._note_cycle(span.end)
        self._record(span)

    def _record_sample(self, component: str, name: str, cycle: int, value: float) -> None:
        self._note_cycle(cycle)
        self._record(CounterSample(component, name, self.epoch, cycle, value))

    def _record(self, record: object) -> None:
        if self.num_records >= self.max_records:
            self.dropped += 1
            return
        if isinstance(record, Span):
            self.spans.append(record)
        elif isinstance(record, Instant):
            self.instants.append(record)
        else:
            assert isinstance(record, CounterSample)
            self.samples.append(record)

    def _note_cycle(self, cycle: int) -> None:
        if cycle > self._elapsed.get(self.epoch, 0):
            self._elapsed[self.epoch] = cycle


# ---------------------------------------------------------------------------
# Ambient tracer: lets `cedar-repro trace` observe experiments whose drivers
# build machines internally, without threading a tracer through every call.
# ---------------------------------------------------------------------------

_ACTIVE: List[Tracer] = []


def current_tracer() -> Optional[Tracer]:
    """The innermost tracer installed by :func:`tracing`, if any."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def tracing(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the ambient tracer for the enclosed block.

    Every :class:`~repro.hardware.machine.CedarMachine` and
    :class:`~repro.model.machine_model.CedarMachineModel` constructed inside
    the block attaches to it by default.
    """
    _ACTIVE.append(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.pop()
