"""The machine-wide instrumentation bus.

The paper's methodology rests on external hardware performance monitors:
event tracers and histogrammers cascaded across the machine, fed by hardware
signals from every subsystem (Section 2, "Performance monitoring").  This
module is the simulator-side generalization of that cabling: a single
:class:`Tracer` *bus* that every hardware component (crossbars, networks,
memory modules, caches, prefetch units, the concurrency control bus, the
synchronization processors) and the analytic machine model report into.

Three record kinds are collected:

* **counters** -- monotonically accumulated totals per (component, name),
  optionally with a bounded sampled timeline for utilization plots;
* **spans** -- [start, end) intervals (a memory module servicing a request,
  a prefetch in flight, one cost term of the analytic model);
* **instants** -- point events (software-posted events, bus signals).

Like the paper's 1M-event tracers, the record store is bounded
(``max_records``); overflowing records are counted in :attr:`Tracer.dropped`
rather than silently lost, while counter *totals* and busy-cycle aggregates
stay exact regardless.

Records live in one of two stores:

* the default **columnar store** (:mod:`repro.trace.columnar`): flat
  preallocated ring-buffer columns with string-interned ids, oldest-first
  eviction at capacity, and zero-copy :meth:`Tracer.snapshot` export --
  roughly 2.5x cheaper per record than object storage and mergeable
  across worker processes;
* the **legacy object store** (one frozen dataclass per record,
  drop-newest at capacity), kept behind ``CEDAR_COLUMNAR=0`` as an A/B
  reference: exporters produce byte-identical output from either.

Zero overhead when disabled: every recording entry point starts with an
``enabled`` check, and hot components hold ``tracer.if_enabled()`` -- ``None``
when tracing is off -- so the per-event cost of a disabled tracer is a single
``is not None`` test.

The bus side (:meth:`Tracer.publish` / :meth:`Tracer.subscribe`) always
delivers, independent of ``enabled``: the paper-faithful
:class:`~repro.hardware.monitor.PerformanceMonitor` consumes its Table 2
signals through subscriptions, and those measurements must not depend on
whether anyone is also recording a timeline.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import TraceError
from repro.trace.columnar import ColumnarStore, StringTable, TraceSnapshot

Clock = Callable[[], int]

#: Default bound on stored records, matching the hardware tracers' 1M events.
DEFAULT_MAX_RECORDS = 1_000_000

#: Env var gating the columnar store; set to ``0`` for the legacy object
#: store (read once per Tracer, at construction).
COLUMNAR_ENV = "CEDAR_COLUMNAR"

#: Nominal heap bytes per object-store record (dataclass + list slot),
#: so both stores can report a comparable ``buffer_bytes``.
_OBJECT_RECORD_BYTES = 160


def columnar_enabled(env: Optional[Dict[str, str]] = None) -> bool:
    """Whether new tracers default to the columnar store."""
    return (env if env is not None else os.environ).get(COLUMNAR_ENV, "1") != "0"


@dataclass(frozen=True)
class Span:
    """One [start, end) interval on a component's timeline."""

    component: str
    name: str
    epoch: int
    start: int
    end: int
    depth: int = 0
    args: Optional[Dict[str, object]] = None

    @property
    def cycles(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class Instant:
    """A point event on a component's timeline."""

    component: str
    name: str
    epoch: int
    cycle: int
    value: object = None


@dataclass(frozen=True)
class CounterSample:
    """One sampled point of a counter's timeline."""

    component: str
    name: str
    epoch: int
    cycle: int
    value: float


class ObjectStore:
    """The legacy record store: one frozen dataclass per record.

    Kept as the ``CEDAR_COLUMNAR=0`` A/B reference.  At capacity it drops
    the *newest* record (the columnar rings evict the oldest); either way
    ``dropped`` counts exactly ``total_appended - max_records`` overflow
    records and aggregates stay exact.
    """

    columnar = False

    def __init__(self, max_records: int) -> None:
        if max_records < 1:
            raise TraceError(f"max_records must be >= 1, got {max_records}")
        self.max_records = max_records
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self.samples: List[CounterSample] = []
        self.dropped = 0
        self.total_appended = 0
        self._seqs: Dict[str, List[int]] = {
            "spans": [], "instants": [], "samples": []
        }

    def _admit(self, kind: str) -> bool:
        seq = self.total_appended
        self.total_appended = seq + 1
        if self.num_records >= self.max_records:
            self.dropped += 1
            return False
        self._seqs[kind].append(seq)
        return True

    def add_span(
        self,
        component: str,
        name: str,
        epoch: int,
        start: int,
        end: int,
        depth: int,
        args: Optional[Dict[str, object]],
    ) -> None:
        if self._admit("spans"):
            self.spans.append(
                Span(component, name, epoch, start, end, depth, args)
            )

    def add_instant(
        self, component: str, name: str, epoch: int, cycle: int, value: object
    ) -> None:
        if self._admit("instants"):
            self.instants.append(Instant(component, name, epoch, cycle, value))

    def add_sample(
        self, component: str, name: str, epoch: int, cycle: int, value: float
    ) -> None:
        if self._admit("samples"):
            self.samples.append(CounterSample(component, name, epoch, cycle, value))

    @property
    def num_records(self) -> int:
        return len(self.spans) + len(self.instants) + len(self.samples)

    @property
    def buffer_bytes(self) -> int:
        return self.num_records * _OBJECT_RECORD_BYTES

    def counts(self) -> Dict[str, int]:
        return {
            "spans": len(self.spans),
            "instants": len(self.instants),
            "samples": len(self.samples),
        }

    def snapshot(self) -> TraceSnapshot:
        """Columnarize the object records (copying; export-path only)."""
        from array import array

        snap = TraceSnapshot()
        table = StringTable()
        intern = table.intern

        def seg(typecode: str, values) -> Tuple[memoryview, ...]:
            return (memoryview(array(typecode, values)),)

        spans = self.spans
        snap.int_columns["spans"] = {
            "seq": seg("q", self._seqs["spans"]),
            "component": seg("q", (intern(s.component) for s in spans)),
            "name": seg("q", (intern(s.name) for s in spans)),
            "epoch": seg("q", (s.epoch for s in spans)),
            "start": seg("q", (s.start for s in spans)),
            "end": seg("q", (s.end for s in spans)),
            "depth": seg("q", (s.depth for s in spans)),
        }
        snap.obj_columns["spans"]["args"] = ([s.args for s in spans],)
        instants = self.instants
        snap.int_columns["instants"] = {
            "seq": seg("q", self._seqs["instants"]),
            "component": seg("q", (intern(i.component) for i in instants)),
            "name": seg("q", (intern(i.name) for i in instants)),
            "epoch": seg("q", (i.epoch for i in instants)),
            "cycle": seg("q", (i.cycle for i in instants)),
        }
        snap.obj_columns["instants"]["value"] = ([i.value for i in instants],)
        samples = self.samples
        snap.int_columns["samples"] = {
            "seq": seg("q", self._seqs["samples"]),
            "component": seg("q", (intern(c.component) for c in samples)),
            "name": seg("q", (intern(c.name) for c in samples)),
            "epoch": seg("q", (c.epoch for c in samples)),
            "cycle": seg("q", (c.cycle for c in samples)),
        }
        snap.float_columns["samples"]["value"] = seg(
            "d", (c.value for c in samples)
        )
        snap.strings = table.strings
        snap.counts = self.counts()
        snap.dropped = self.dropped
        snap.records_seen = self.total_appended
        snap.buffer_bytes = self.buffer_bytes
        return snap


class CounterSet:
    """Named counters belonging to one component.

    Totals are exact and unbounded, held in a flat ``values`` list indexed
    by interned :meth:`slot` ids -- hot call sites prebind a slot once and
    bump ``counters.values[slot] += delta`` with no per-event hashing.
    Sampled timeline points go through the owning tracer's bounded record
    store.
    """

    __slots__ = ("component", "_tracer", "_index", "_names", "values")

    def __init__(self, component: str, tracer: "Tracer") -> None:
        self.component = component
        self._tracer = tracer
        self._index: Dict[str, int] = {}
        self._names: List[str] = []
        self.values: List[float] = []

    def slot(self, name: str) -> int:
        """Intern counter ``name``, returning its index into ``values``.

        Slots are created on first use so never-bumped counters stay
        absent from :meth:`totals` (the reporting contract the bench
        baselines pin down).
        """
        index = self._index.get(name)
        if index is None:
            index = self._index[name] = len(self._names)
            self._names.append(name)
            self.values.append(0)
        return index

    def add(self, name: str, delta: float = 1) -> float:
        """Accumulate ``delta`` into counter ``name``; returns the new total."""
        index = self.slot(name)
        total = self.values[index] + delta
        self.values[index] = total
        return total

    def sample(self, name: str, value: float, cycle: int) -> None:
        """Set counter ``name`` to ``value`` and record a timeline point."""
        self.values[self.slot(name)] = value
        self._tracer._record_sample(self.component, name, cycle, value)

    def get(self, name: str) -> float:
        index = self._index.get(name)
        return self.values[index] if index is not None else 0

    def __len__(self) -> int:
        return len(self._names)

    @property
    def totals(self) -> Dict[str, float]:
        """{counter: total}, in first-use order (a fresh dict per call)."""
        return dict(zip(self._names, self.values))


class Tracer:
    """The instrumentation event bus attached to a machine's clock.

    One tracer can observe several consecutive machine instances (e.g. the
    twelve kernel runs behind Table 2): each :meth:`set_clock` call opens a
    new *epoch*, so runs whose engines all start at cycle 0 stay separable
    in exports (one trace "process" per epoch).
    """

    def __init__(
        self,
        enabled: bool = True,
        clock: Optional[Clock] = None,
        max_records: int = DEFAULT_MAX_RECORDS,
        columnar: Optional[bool] = None,
    ) -> None:
        if max_records < 1:
            raise TraceError(f"max_records must be >= 1, got {max_records}")
        self.enabled = enabled
        self.clock = clock
        self.max_records = max_records
        self.epoch = 0
        if columnar is None:
            columnar = columnar_enabled()
        self._store = (
            ColumnarStore(max_records) if columnar else ObjectStore(max_records)
        )
        self._clock_was_set = clock is not None
        self._counter_sets: Dict[str, CounterSet] = {}
        self._span_stacks: Dict[str, List[Tuple[str, int, Optional[Dict[str, object]]]]] = {}
        self._subscribers: Dict[str, List[Callable[[object], None]]] = {}
        self._busy: Dict[str, int] = {}
        self._span_counts: Dict[str, int] = {}
        self._elapsed: Dict[int, int] = {}

    # -- lifecycle ---------------------------------------------------------

    def if_enabled(self) -> Optional["Tracer"]:
        """``self`` when recording, else ``None`` (the hot-path guard)."""
        return self if self.enabled else None

    def set_clock(self, clock: Clock) -> None:
        """Attach to a (new) machine clock, opening a fresh epoch."""
        if self._clock_was_set:
            self.epoch += 1
        self._clock_was_set = True
        self.clock = clock

    def now(self) -> int:
        if self.clock is None:
            raise TraceError("tracer has no clock; call set_clock() first")
        return self.clock()

    @property
    def columnar(self) -> bool:
        """Whether this tracer records into the columnar store."""
        return self._store.columnar

    # -- counters ----------------------------------------------------------

    def counters(self, component: str) -> CounterSet:
        """Get or create the :class:`CounterSet` of ``component``."""
        counters = self._counter_sets.get(component)
        if counters is None:
            counters = self._counter_sets[component] = CounterSet(component, self)
        return counters

    def count(self, component: str, name: str, delta: float = 1) -> None:
        """Accumulate into a counter (no-op when disabled)."""
        if not self.enabled:
            return
        self.counters(component).add(name, delta)

    def sample(self, component: str, name: str, value: float, cycle: int) -> None:
        """Record a counter timeline point (no-op when disabled)."""
        if not self.enabled:
            return
        self.counters(component).sample(name, value, cycle)

    def counter_totals(self) -> Dict[str, Dict[str, float]]:
        """{component: {counter: total}} for every non-empty counter set."""
        return {
            component: counters.totals
            for component, counters in sorted(self._counter_sets.items())
            if len(counters)
        }

    # -- spans -------------------------------------------------------------

    def begin(self, component: str, name: str, **args: object) -> None:
        """Open a (nestable) span on ``component`` at the current clock."""
        if not self.enabled:
            return
        stack = self._span_stacks.setdefault(component, [])
        stack.append((name, self.now(), args or None))

    def end(self, component: str) -> None:
        """Close the innermost open span of ``component``."""
        if not self.enabled:
            return
        stack = self._span_stacks.get(component)
        if not stack:
            raise TraceError(f"end() without begin() on component {component!r}")
        name, start, args = stack.pop()
        self._record_span(component, name, start, self.now(), len(stack), args)

    @contextmanager
    def span(self, component: str, name: str, **args: object) -> Iterator[None]:
        """``with tracer.span("machine", "run_kernel"): ...``"""
        self.begin(component, name, **args)
        try:
            yield
        finally:
            self.end(component)

    def complete(
        self, component: str, name: str, start: int, end: int, **args: object
    ) -> None:
        """Record an already-timed interval (no clock or stack involved).

        This is the form hardware components use: they know their service
        intervals exactly and may have many in flight per component, where a
        begin/end stack would mis-nest.
        """
        if not self.enabled:
            return
        if end < start:
            raise TraceError(f"span {component}/{name} ends before it starts")
        self._record_span(component, name, start, end, 0, args or None)

    def open_spans(self, component: str) -> int:
        """Depth of the begin/end stack (for tests and sanity checks)."""
        return len(self._span_stacks.get(component, ()))

    def open_span_names(self, component: Optional[str] = None) -> List[str]:
        """Names of the currently open spans, outermost first.

        With ``component`` given, only that component's stack; otherwise
        every open span across the machine, prefixed with its component.
        The sanitizer embeds this context in :class:`SanitizerError`s so a
        violation reports *what the machine was doing* when it fired.
        """
        if component is not None:
            return [name for name, _, _ in self._span_stacks.get(component, ())]
        names: List[str] = []
        for comp in sorted(self._span_stacks):
            for name, _, _ in self._span_stacks[comp]:
                names.append(f"{comp}:{name}")
        return names

    # -- instants ----------------------------------------------------------

    def instant(
        self, component: str, name: str, cycle: Optional[int] = None, value: object = None
    ) -> None:
        """Record a point event (no-op when disabled)."""
        if not self.enabled:
            return
        if cycle is None:
            cycle = self.now() if self.clock is not None else 0
        self._note_cycle(cycle)
        self._store.add_instant(component, name, self.epoch, cycle, value)

    # -- the bus (always on) -----------------------------------------------

    def subscribe(self, signal: str, handler: Callable[[object], None]) -> None:
        """Deliver every published ``signal`` value to ``handler``."""
        self._subscribers.setdefault(signal, []).append(handler)

    def publish(self, signal: str, value: object = None) -> None:
        """Deliver ``value`` to subscribers; also recorded when enabled."""
        handlers = self._subscribers.get(signal)
        if handlers:
            for handler in handlers:
                handler(value)
        if self.enabled:
            self.instant("bus", signal, value=value)

    # -- aggregates for reporting -------------------------------------------

    def busy_cycles(self) -> Dict[str, int]:
        """Total span cycles per component (exact, unaffected by drops)."""
        return dict(self._busy)

    def span_counts(self) -> Dict[str, int]:
        return dict(self._span_counts)

    def elapsed_by_epoch(self) -> Dict[int, int]:
        """Largest cycle observed per epoch (the utilization denominator)."""
        return dict(self._elapsed)

    @property
    def num_records(self) -> int:
        return self._store.num_records

    @property
    def dropped(self) -> int:
        return self._store.dropped

    @property
    def records_seen(self) -> int:
        """Every record ever appended, including those since dropped."""
        return self._store.total_appended

    @property
    def buffer_bytes(self) -> int:
        """Bytes held (columnar) or estimated (legacy) by the record store."""
        return self._store.buffer_bytes

    def record_counts(self) -> Dict[str, int]:
        """Retained records per kind: {"spans", "instants", "samples"}."""
        return self._store.counts()

    @property
    def interned_strings(self) -> int:
        """Distinct component/name strings interned (0 for the legacy store)."""
        store = getattr(self._store, "inner", self._store)
        return len(store.strings) if store.columnar else 0

    # -- record views --------------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        """Stored spans as objects (materialized per access when columnar)."""
        store = self._store
        if not store.columnar:
            return store.spans
        snap = store.snapshot()
        strings = snap.strings
        component, name, epoch, start, end, depth = snap.columns(
            "spans", "component", "name", "epoch", "start", "end", "depth"
        )
        args = snap.column("spans", "args")
        return [
            Span(strings[c], strings[n], e, s, f, d, a)
            for c, n, e, s, f, d, a
            in zip(component, name, epoch, start, end, depth, args)
        ]

    @property
    def instants(self) -> List[Instant]:
        store = self._store
        if not store.columnar:
            return store.instants
        snap = store.snapshot()
        strings = snap.strings
        component, name, epoch, cycle, value = snap.columns(
            "instants", "component", "name", "epoch", "cycle", "value"
        )
        return [
            Instant(strings[c], strings[n], e, y, v)
            for c, n, e, y, v in zip(component, name, epoch, cycle, value)
        ]

    @property
    def samples(self) -> List[CounterSample]:
        store = self._store
        if not store.columnar:
            return store.samples
        snap = store.snapshot()
        strings = snap.strings
        component, name, epoch, cycle, value = snap.columns(
            "samples", "component", "name", "epoch", "cycle", "value"
        )
        return [
            CounterSample(strings[c], strings[n], e, y, v)
            for c, n, e, y, v in zip(component, name, epoch, cycle, value)
        ]

    # -- internals -----------------------------------------------------------

    def _record_span(
        self,
        component: str,
        name: str,
        start: int,
        end: int,
        depth: int,
        args: Optional[Dict[str, object]],
    ) -> None:
        self._busy[component] = self._busy.get(component, 0) + (end - start)
        self._span_counts[component] = self._span_counts.get(component, 0) + 1
        self._note_cycle(end)
        self._store.add_span(component, name, self.epoch, start, end, depth, args)

    def _record_sample(
        self, component: str, name: str, cycle: int, value: float
    ) -> None:
        self._note_cycle(cycle)
        self._store.add_sample(component, name, self.epoch, cycle, value)

    def _note_cycle(self, cycle: int) -> None:
        if cycle > self._elapsed.get(self.epoch, 0):
            self._elapsed[self.epoch] = cycle

    # -- snapshot / overhead -------------------------------------------------

    def snapshot(self) -> TraceSnapshot:
        """Zero-copy columnar view of this tracer's records + aggregates.

        The exporters (:mod:`repro.trace.export`) and the cross-worker
        :class:`~repro.trace.merge.TraceMerger` both consume snapshots, so
        a live tracer, a deserialized per-worker buffer, and a merged
        timeline all render through one code path.
        """
        snap = self._store.snapshot()
        snap.counter_totals = self.counter_totals()
        snap.busy_cycles = dict(self._busy)
        snap.span_counts = dict(self._span_counts)
        snap.elapsed_by_epoch = dict(self._elapsed)
        snap.epochs = self.epoch + 1
        return snap

    def overhead_estimate(self, wall_seconds: float) -> Dict[str, float]:
        """Estimated wall-clock share spent appending trace records.

        The per-record cost of this tracer's store class is calibrated
        once per process on a throwaway store (outside any timed region)
        and multiplied by the number of records appended -- an estimate,
        but one that moves with the store implementation, which is what
        the bench self-profile non-regression gate needs.
        """
        records = self._store.total_appended
        cost = _per_record_cost(type(getattr(self._store, "inner", self._store)))
        overhead = records * cost
        return {
            "records": float(records),
            "per_record_ns": round(cost * 1e9, 1),
            "overhead_seconds": overhead,
            "ratio": (overhead / wall_seconds) if wall_seconds > 0 else 0.0,
        }


#: Per-process cache of calibrated per-record append cost, by store class.
_PER_RECORD_COST: Dict[type, float] = {}

#: Synthetic appends per calibration run.
_CALIBRATION_RECORDS = 20_000


def _per_record_cost(store_class: type) -> float:
    cached = _PER_RECORD_COST.get(store_class)
    if cached is not None:
        return cached
    store = store_class(_CALIBRATION_RECORDS)
    began = time.perf_counter()
    for cycle in range(_CALIBRATION_RECORDS):
        store.add_span("calibration", "append", 0, cycle, cycle + 1, 0, None)
    cost = (time.perf_counter() - began) / _CALIBRATION_RECORDS
    _PER_RECORD_COST[store_class] = cost
    return cost


# ---------------------------------------------------------------------------
# Ambient tracer: lets `cedar-repro trace` observe experiments whose drivers
# build machines internally, without threading a tracer through every call.
# ---------------------------------------------------------------------------

_ACTIVE: List[Tracer] = []


def current_tracer() -> Optional[Tracer]:
    """The innermost tracer installed by :func:`tracing`, if any."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def tracing(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the ambient tracer for the enclosed block.

    Every :class:`~repro.hardware.machine.CedarMachine` and
    :class:`~repro.model.machine_model.CedarMachineModel` constructed inside
    the block attaches to it by default.
    """
    _ACTIVE.append(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.pop()
