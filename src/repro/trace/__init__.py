"""Machine-wide instrumentation: counters, spans, and trace export.

The simulator-side generalization of the paper's external performance-
monitoring hardware (Section 2): one :class:`Tracer` event bus per machine
collects per-component counters, utilization spans, and instants into a
flat columnar record store, and two exporters turn a finished run into
either a plain-text utilization report or Chrome trace-event JSON
(``chrome://tracing`` / Perfetto).

* :mod:`repro.trace.tracer` -- the bus, counter sets, spans, the ambient
  ``tracing()`` context used by ``cedar-repro trace``.
* :mod:`repro.trace.columnar` -- the ring-buffer column store, the string
  interning table, and the zero-copy :class:`TraceSnapshot` wire format.
* :mod:`repro.trace.merge` -- :class:`TraceMerger`, splicing per-worker
  buffers into one deterministic timeline.
* :mod:`repro.trace.export` -- Chrome trace-event and text-report exporters
  (accept a live tracer or any snapshot).
"""

from repro.trace.columnar import ColumnarStore, StringTable, TraceSnapshot
from repro.trace.merge import TraceMerger
from repro.trace.tracer import (
    CounterSample,
    CounterSet,
    Instant,
    ObjectStore,
    Span,
    Tracer,
    columnar_enabled,
    current_tracer,
    tracing,
)
from repro.trace.export import (
    chrome_trace_events,
    chrome_trace_json,
    utilization_report,
    write_chrome_trace,
)

__all__ = [
    "ColumnarStore",
    "CounterSample",
    "CounterSet",
    "Instant",
    "ObjectStore",
    "Span",
    "StringTable",
    "TraceMerger",
    "TraceSnapshot",
    "Tracer",
    "columnar_enabled",
    "current_tracer",
    "tracing",
    "chrome_trace_events",
    "chrome_trace_json",
    "utilization_report",
    "write_chrome_trace",
]
