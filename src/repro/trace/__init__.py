"""Machine-wide instrumentation: counters, spans, and trace export.

The simulator-side generalization of the paper's external performance-
monitoring hardware (Section 2): one :class:`Tracer` event bus per machine
collects per-component counters, utilization spans, and instants, and two
exporters turn a finished run into either a plain-text utilization report or
Chrome trace-event JSON (``chrome://tracing`` / Perfetto).

* :mod:`repro.trace.tracer` -- the bus, counter sets, spans, the ambient
  ``tracing()`` context used by ``cedar-repro trace``.
* :mod:`repro.trace.export` -- Chrome trace-event and text-report exporters.
"""

from repro.trace.tracer import (
    CounterSample,
    CounterSet,
    Instant,
    Span,
    Tracer,
    current_tracer,
    tracing,
)
from repro.trace.export import (
    chrome_trace_events,
    chrome_trace_json,
    utilization_report,
    write_chrome_trace,
)

__all__ = [
    "CounterSample",
    "CounterSet",
    "Instant",
    "Span",
    "Tracer",
    "current_tracer",
    "tracing",
    "chrome_trace_events",
    "chrome_trace_json",
    "utilization_report",
    "write_chrome_trace",
]
