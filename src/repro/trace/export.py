"""Exporters for trace-bus data.

Two output formats, mirroring the paper's workstation-side analysis flow
("software tools ... move the data collected by the performance hardware to
workstations for analysis", Section 2):

* :func:`chrome_trace_events` / :func:`chrome_trace_json` -- the Chrome
  trace-event format (the JSON ``chrome://tracing`` and Perfetto load):
  spans become ``"X"`` complete events, counter samples become ``"C"``
  counter events, instants become ``"i"`` events.  Each tracer epoch (one
  machine instance) is a separate pid with named component tids.
* :func:`utilization_report` -- a plain-text per-component utilization and
  counter summary, grouped by top-level component (``memory.m07`` rolls up
  under ``memory``).

Every exporter accepts either a live :class:`~repro.trace.tracer.Tracer`
or a :class:`~repro.trace.columnar.TraceSnapshot` (a zero-copy view, a
deserialized per-worker buffer, or a
:class:`~repro.trace.merge.TraceMerger` output) and renders through one
columnar code path -- which is what makes the legacy object store, the
columnar store, and ``--jobs N`` merges byte-identical in export.

Timestamps are emitted in microseconds (one CE cycle = 170 ns = 0.17 us).
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple, Union

from repro.config import CE_CYCLE_SECONDS
from repro.trace.columnar import TraceSnapshot, render_value
from repro.trace.tracer import Tracer

#: Microseconds per CE cycle.
_US_PER_CYCLE = CE_CYCLE_SECONDS * 1e6

Traceable = Union[Tracer, TraceSnapshot]


def _cycles_to_us(cycles: float) -> float:
    return round(cycles * _US_PER_CYCLE, 4)


def _as_snapshot(source: Traceable) -> TraceSnapshot:
    return source.snapshot() if isinstance(source, Tracer) else source


def chrome_trace_events(source: Traceable) -> List[dict]:
    """The ``traceEvents`` array for one tracer's (or snapshot's) records."""
    snap = _as_snapshot(source)
    strings = snap.strings
    components = snap.components()
    tids = {component: index + 1 for index, component in enumerate(components)}
    events: List[dict] = []
    for epoch in snap.record_epochs():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": epoch,
                "tid": 0,
                "args": {"name": f"machine run {epoch}"},
            }
        )
        for component, tid in tids.items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": epoch,
                    "tid": tid,
                    "args": {"name": component},
                }
            )
    component_col, name_col, epoch_col, start_col, end_col = snap.columns(
        "spans", "component", "name", "epoch", "start", "end"
    )
    args_col = snap.column("spans", "args")
    for component, name, epoch, start, end, span_args in zip(
        component_col, name_col, epoch_col, start_col, end_col, args_col
    ):
        cycles = end - start
        event = {
            "name": strings[name],
            "cat": strings[component],
            "ph": "X",
            "ts": _cycles_to_us(start),
            "dur": _cycles_to_us(cycles),
            "pid": epoch,
            "tid": tids[strings[component]],
        }
        args = dict(span_args or {})
        args["start_cycle"] = start
        args["cycles"] = cycles
        event["args"] = args
        events.append(event)
    component_col, name_col, epoch_col, cycle_col = snap.columns(
        "instants", "component", "name", "epoch", "cycle"
    )
    value_col = snap.column("instants", "value")
    for component, name, epoch, cycle, value in zip(
        component_col, name_col, epoch_col, cycle_col, value_col
    ):
        events.append(
            {
                "name": strings[name],
                "cat": strings[component],
                "ph": "i",
                "s": "t",
                "ts": _cycles_to_us(cycle),
                "pid": epoch,
                "tid": tids[strings[component]],
                "args": {
                    "value": value if snap.values_rendered else render_value(value)
                },
            }
        )
    component_col, name_col, epoch_col, cycle_col = snap.columns(
        "samples", "component", "name", "epoch", "cycle"
    )
    value_col = snap.column("samples", "value")
    for component, name, epoch, cycle, value in zip(
        component_col, name_col, epoch_col, cycle_col, value_col
    ):
        events.append(
            {
                "name": f"{strings[component]}.{strings[name]}",
                "cat": strings[component],
                "ph": "C",
                "ts": _cycles_to_us(cycle),
                "pid": epoch,
                "tid": tids[strings[component]],
                "args": {strings[name]: value},
            }
        )
    return events


def chrome_trace_json(source: Traceable, indent: int = 0) -> str:
    """Full Chrome trace-event JSON document (object form)."""
    snap = _as_snapshot(source)
    document = {
        "traceEvents": chrome_trace_events(snap),
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "cedar-repro trace bus",
            "cycle_ns": CE_CYCLE_SECONDS * 1e9,
            "epochs": len(snap.elapsed_by_epoch) or 1,
            "dropped_records": snap.dropped,
        },
    }
    return json.dumps(document, indent=indent or None)


def write_chrome_trace(source: Traceable, path: str) -> None:
    """Write the Chrome trace-event JSON for ``source`` to ``path``."""
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(chrome_trace_json(source))


# ---------------------------------------------------------------------------
# Text report
# ---------------------------------------------------------------------------


def _group(component: str) -> str:
    return component.split(".", 1)[0]


def utilization_report(source: Traceable) -> str:
    """Per-component utilization and counter totals, as plain text.

    Components are rolled up by their top-level name and listed by busy
    cycles descending, so the report reads as a hot-spot ranking.  Two
    rates are shown per group: ``%run`` is the group's share of all busy
    cycles in the run (where did the simulated time go), and ``util``
    divides busy cycles by wall cycles times the number of subunits, so 32
    memory modules each busy half the time report as 50%.

    Degenerate traces render defensively: a run with zero spans says so
    instead of emitting an empty table, a zero-cycle wall clock cannot
    divide, and overlapping spans (the analytic model records its cost
    terms on one timeline) are flagged when they push ``util`` past 100%.
    """
    snap = _as_snapshot(source)
    elapsed = snap.elapsed_by_epoch
    wall = sum(elapsed.values())
    busy = snap.busy_cycles
    span_counts = snap.span_counts

    groups: Dict[str, Dict[str, object]] = {}
    for component, cycles in busy.items():
        group = groups.setdefault(
            _group(component), {"subunits": set(), "busy": 0, "spans": 0}
        )
        group["subunits"].add(component)  # type: ignore[union-attr]
        group["busy"] += cycles  # type: ignore[operator]
        group["spans"] += span_counts.get(component, 0)  # type: ignore[operator]

    lines: List[str] = []
    epochs = len(elapsed) or 1
    lines.append(
        f"Trace report: {epochs} machine run(s), {wall} wall cycles, "
        f"{snap.num_records} records ({snap.dropped} dropped)"
    )
    lines.append("")
    overlapping = False
    if groups:
        total_busy = sum(group["busy"] for group in groups.values())
        lines.append(
            "Component utilization, hottest first "
            "(span busy-cycles / wall-cycles):"
        )
        header = (
            f"  {'component':<14} {'subunits':>8} {'spans':>9} "
            f"{'busy-cyc':>12} {'%run':>7} {'util':>8}"
        )
        lines.append(header)
        ranked = sorted(
            groups.items(), key=lambda item: (-item[1]["busy"], item[0])
        )
        for name, group in ranked:
            subunits = len(group["subunits"])  # type: ignore[arg-type]
            busy_cycles = group["busy"]
            share = (busy_cycles / total_busy * 100.0) if total_busy else 0.0
            capacity = wall * subunits
            util = (busy_cycles / capacity * 100.0) if capacity else 0.0
            overlapping = overlapping or util > 100.0
            lines.append(
                f"  {name:<14} {subunits:>8} {group['spans']:>9} "
                f"{busy_cycles:>12} {share:>6.1f}% {util:>7.1f}%"
            )
        if overlapping:
            lines.append(
                "  (util > 100%: overlapping spans share one timeline, "
                "e.g. analytic-model cost terms)"
            )
        lines.append("")
    else:
        lines.append("No spans recorded.")
        lines.append("")

    totals = snap.counter_totals
    if totals:
        rolled: Dict[Tuple[str, str], float] = {}
        for component, counters in totals.items():
            for name, value in counters.items():
                key = (_group(component), name)
                rolled[key] = rolled.get(key, 0) + value
        lines.append("Counters:")
        for (group, name), value in sorted(rolled.items()):
            rendered = f"{value:.0f}" if float(value).is_integer() else f"{value:.2f}"
            lines.append(f"  {group + '.' + name:<38} {rendered:>14}")
    return "\n".join(lines)
