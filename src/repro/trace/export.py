"""Exporters for trace-bus data.

Two output formats, mirroring the paper's workstation-side analysis flow
("software tools ... move the data collected by the performance hardware to
workstations for analysis", Section 2):

* :func:`chrome_trace_events` / :func:`chrome_trace_json` -- the Chrome
  trace-event format (the JSON ``chrome://tracing`` and Perfetto load):
  spans become ``"X"`` complete events, counter samples become ``"C"``
  counter events, instants become ``"i"`` events.  Each tracer epoch (one
  machine instance) is a separate pid with named component tids.
* :func:`utilization_report` -- a plain-text per-component utilization and
  counter summary, grouped by top-level component (``memory.m07`` rolls up
  under ``memory``).

Timestamps are emitted in microseconds (one CE cycle = 170 ns = 0.17 us).
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.config import CE_CYCLE_SECONDS
from repro.trace.tracer import Tracer

#: Microseconds per CE cycle.
_US_PER_CYCLE = CE_CYCLE_SECONDS * 1e6


def _cycles_to_us(cycles: float) -> float:
    return round(cycles * _US_PER_CYCLE, 4)


def chrome_trace_events(tracer: Tracer) -> List[dict]:
    """The ``traceEvents`` array for one tracer's records."""
    components = sorted(
        {s.component for s in tracer.spans}
        | {i.component for i in tracer.instants}
        | {c.component for c in tracer.samples}
    )
    tids = {component: index + 1 for index, component in enumerate(components)}
    epochs = sorted(
        {s.epoch for s in tracer.spans}
        | {i.epoch for i in tracer.instants}
        | {c.epoch for c in tracer.samples}
    )
    events: List[dict] = []
    for epoch in epochs:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": epoch,
                "tid": 0,
                "args": {"name": f"machine run {epoch}"},
            }
        )
        for component, tid in tids.items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": epoch,
                    "tid": tid,
                    "args": {"name": component},
                }
            )
    for span in tracer.spans:
        event = {
            "name": span.name,
            "cat": span.component,
            "ph": "X",
            "ts": _cycles_to_us(span.start),
            "dur": _cycles_to_us(span.cycles),
            "pid": span.epoch,
            "tid": tids[span.component],
        }
        args = dict(span.args or {})
        args["start_cycle"] = span.start
        args["cycles"] = span.cycles
        event["args"] = args
        events.append(event)
    for instant in tracer.instants:
        events.append(
            {
                "name": instant.name,
                "cat": instant.component,
                "ph": "i",
                "s": "t",
                "ts": _cycles_to_us(instant.cycle),
                "pid": instant.epoch,
                "tid": tids[instant.component],
                "args": {"value": repr(instant.value)},
            }
        )
    for sample in tracer.samples:
        events.append(
            {
                "name": f"{sample.component}.{sample.name}",
                "cat": sample.component,
                "ph": "C",
                "ts": _cycles_to_us(sample.cycle),
                "pid": sample.epoch,
                "tid": tids[sample.component],
                "args": {sample.name: sample.value},
            }
        )
    return events


def chrome_trace_json(tracer: Tracer, indent: int = 0) -> str:
    """Full Chrome trace-event JSON document (object form)."""
    document = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "cedar-repro trace bus",
            "cycle_ns": CE_CYCLE_SECONDS * 1e9,
            "epochs": len(tracer.elapsed_by_epoch()) or 1,
            "dropped_records": tracer.dropped,
        },
    }
    return json.dumps(document, indent=indent or None)


def write_chrome_trace(tracer: Tracer, path: str) -> None:
    """Write the Chrome trace-event JSON for ``tracer`` to ``path``."""
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(chrome_trace_json(tracer))


# ---------------------------------------------------------------------------
# Text report
# ---------------------------------------------------------------------------


def _group(component: str) -> str:
    return component.split(".", 1)[0]


def utilization_report(tracer: Tracer) -> str:
    """Per-component utilization and counter totals, as plain text.

    Components are rolled up by their top-level name and listed by busy
    cycles descending, so the report reads as a hot-spot ranking.  Two
    rates are shown per group: ``%run`` is the group's share of all busy
    cycles in the run (where did the simulated time go), and ``util``
    divides busy cycles by wall cycles times the number of subunits, so 32
    memory modules each busy half the time report as 50%.
    """
    elapsed = tracer.elapsed_by_epoch()
    wall = sum(elapsed.values())
    busy = tracer.busy_cycles()
    span_counts = tracer.span_counts()

    groups: Dict[str, Dict[str, object]] = {}
    for component, cycles in busy.items():
        group = groups.setdefault(
            _group(component), {"subunits": set(), "busy": 0, "spans": 0}
        )
        group["subunits"].add(component)  # type: ignore[union-attr]
        group["busy"] += cycles  # type: ignore[operator]
        group["spans"] += span_counts.get(component, 0)  # type: ignore[operator]

    lines: List[str] = []
    epochs = len(elapsed) or 1
    lines.append(
        f"Trace report: {epochs} machine run(s), {wall} wall cycles, "
        f"{tracer.num_records} records ({tracer.dropped} dropped)"
    )
    lines.append("")
    if groups:
        total_busy = sum(group["busy"] for group in groups.values())
        lines.append(
            "Component utilization, hottest first "
            "(span busy-cycles / wall-cycles):"
        )
        header = (
            f"  {'component':<14} {'subunits':>8} {'spans':>9} "
            f"{'busy-cyc':>12} {'%run':>7} {'util':>8}"
        )
        lines.append(header)
        ranked = sorted(
            groups.items(), key=lambda item: (-item[1]["busy"], item[0])
        )
        for name, group in ranked:
            subunits = len(group["subunits"])  # type: ignore[arg-type]
            busy_cycles = group["busy"]
            share = (busy_cycles / total_busy * 100.0) if total_busy else 0.0
            capacity = wall * subunits
            util = (busy_cycles / capacity * 100.0) if capacity else 0.0
            lines.append(
                f"  {name:<14} {subunits:>8} {group['spans']:>9} "
                f"{busy_cycles:>12} {share:>6.1f}% {util:>7.1f}%"
            )
        lines.append("")

    totals = tracer.counter_totals()
    if totals:
        rolled: Dict[Tuple[str, str], float] = {}
        for component, counters in totals.items():
            for name, value in counters.items():
                key = (_group(component), name)
                rolled[key] = rolled.get(key, 0) + value
        lines.append("Counters:")
        for (group, name), value in sorted(rolled.items()):
            rendered = f"{value:.0f}" if float(value).is_integer() else f"{value:.2f}"
            lines.append(f"  {group + '.' + name:<38} {rendered:>14}")
    return "\n".join(lines)
