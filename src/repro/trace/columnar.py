"""Columnar record storage for the trace bus.

The legacy tracer kept one Python object per record (a frozen dataclass in
a list), which is the scalability ceiling named in ROADMAP item 5: at
million-record scale the object store costs ~2.3 us and a few hundred
bytes per record, and per-worker timelines cannot be merged without
re-materializing every object.  This module stores records the way the
paper's hardware tracers do -- flat, preallocated, bounded:

* each record kind (span / instant / counter sample) is a **ring of flat
  ``array('q')`` / ``array('d')`` columns** (stdlib ``array``: the repo is
  dependency-free by policy) that grows geometrically to ``max_records``
  and then wraps, evicting the **oldest** record machine-wide;
* component and record names are **string-interned** -- columns hold
  integer ids into one :class:`StringTable` per store;
* :meth:`ColumnarStore.snapshot` exports **zero-copy memoryview segments**
  over the live columns (two segments when a ring has wrapped), so taking
  a snapshot never pauses or copies the simulation's timeline;
* :meth:`TraceSnapshot.to_bytes` / :meth:`TraceSnapshot.from_bytes` give
  the wire format that per-worker buffers travel through (``--jobs N``
  runs, serve-tier ``GET /jobs/<id>/trace``) before a
  :class:`~repro.trace.merge.TraceMerger` splices them into one timeline.

Record layout (all int64 unless noted):

=========  =====================================================
spans      seq, component, name, epoch, start, end, depth + args (object)
instants   seq, component, name, epoch, cycle + value (object)
samples    seq, component, name, epoch, cycle + value (float64)
=========  =====================================================

``seq`` is a store-wide monotonic sequence number: it orders eviction
(the globally-oldest record goes first, exactly like the legacy store's
single shared ``max_records`` budget) and gives merges a deterministic
tiebreak for records that share a cycle.
"""

from __future__ import annotations

import json
import struct
import sys
from array import array
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import TraceError

#: First ring allocation; doubles until ``max_records``.
INITIAL_CAPACITY = 1024

#: Wire-format magic; the trailing byte versions the layout.
WIRE_MAGIC = b"CEDARTRC\x01"

#: Column names per kind, in wire order.
SPAN_INT_COLUMNS = ("seq", "component", "name", "epoch", "start", "end", "depth")
INSTANT_INT_COLUMNS = ("seq", "component", "name", "epoch", "cycle")
SAMPLE_INT_COLUMNS = ("seq", "component", "name", "epoch", "cycle")
SAMPLE_FLOAT_COLUMNS = ("value",)

KINDS = ("spans", "instants", "samples")

#: Value types whose ``repr`` is stable across processes.
_STABLE_SCALARS = (int, float, str, bool, type(None))


def render_value(value: object) -> str:
    """Deterministic string form of an instant value.

    Scalars keep their ``repr``; anything else renders as its qualified
    type name, because the default object ``repr`` embeds a memory
    address and would make otherwise-identical traces differ between
    worker processes (breaking ``--jobs N`` merge determinism).
    """
    if isinstance(value, _STABLE_SCALARS):
        return repr(value)
    return f"<{type(value).__module__}.{type(value).__qualname__}>"


class StringTable:
    """Bidirectional string interner: name/component -> dense int id."""

    __slots__ = ("strings", "_ids")

    def __init__(self, strings: Optional[Iterable[str]] = None) -> None:
        self.strings: List[str] = list(strings or ())
        self._ids: Dict[str, int] = {s: i for i, s in enumerate(self.strings)}

    def intern(self, string: str) -> int:
        """The id of ``string``, assigning the next dense id on first use."""
        ident = self._ids.get(string)
        if ident is None:
            ident = self._ids[string] = len(self.strings)
            self.strings.append(string)
        return ident

    def __len__(self) -> int:
        return len(self.strings)


class _Ring:
    """One record kind's bounded ring of flat columns.

    Preallocated ``array('q')`` int columns (plus optional float and
    Python-object columns) with a logical ``tail``/``count`` window.
    Capacity doubles up to ``limit``; beyond that the caller pops the
    oldest record to make room, which is what makes it a ring.
    """

    __slots__ = (
        "int_cols", "float_cols", "obj_cols",
        "capacity", "limit", "tail", "count",
    )

    def __init__(
        self,
        num_ints: int,
        num_floats: int = 0,
        num_objs: int = 0,
        limit: int = 1,
    ) -> None:
        capacity = min(INITIAL_CAPACITY, limit)
        self.capacity = capacity
        self.limit = limit
        self.tail = 0
        self.count = 0
        self.int_cols = [array("q", bytes(8 * capacity)) for _ in range(num_ints)]
        self.float_cols = [array("d", bytes(8 * capacity)) for _ in range(num_floats)]
        self.obj_cols = [[None] * capacity for _ in range(num_objs)]

    # -- writes ------------------------------------------------------------

    def append(
        self,
        ints: Tuple[int, ...],
        floats: Tuple[float, ...] = (),
        objs: Tuple[object, ...] = (),
    ) -> None:
        if self.count == self.capacity:
            self._grow()
        index = self.tail + self.count
        if index >= self.capacity:
            index -= self.capacity
        for col, value in zip(self.int_cols, ints):
            col[index] = value
        for col, value in zip(self.float_cols, floats):
            col[index] = value
        for col, value in zip(self.obj_cols, objs):
            col[index] = value
        self.count += 1

    def pop_oldest(self) -> None:
        for col in self.obj_cols:
            col[self.tail] = None  # release the reference immediately
        self.tail += 1
        if self.tail == self.capacity:
            self.tail = 0
        self.count -= 1

    def oldest_seq(self) -> int:
        return self.int_cols[0][self.tail]

    def _grow(self) -> None:
        new_capacity = min(self.capacity * 2, self.limit)
        first = min(self.count, self.capacity - self.tail)
        rest = self.count - first
        for cols, typecode in ((self.int_cols, "q"), (self.float_cols, "d")):
            for i, col in enumerate(cols):
                grown = array(typecode, bytes(8 * new_capacity))
                view, old = memoryview(grown), memoryview(col)
                view[:first] = old[self.tail:self.tail + first]
                if rest:
                    view[first:self.count] = old[:rest]
                cols[i] = grown
        for i, col in enumerate(self.obj_cols):
            grown = [None] * new_capacity
            grown[:first] = col[self.tail:self.tail + first]
            if rest:
                grown[first:self.count] = col[:rest]
            self.obj_cols[i] = grown
        self.capacity = new_capacity
        self.tail = 0

    # -- reads -------------------------------------------------------------

    def _window(self) -> Tuple[int, int]:
        """(first-segment length, wrapped remainder length)."""
        first = min(self.count, self.capacity - self.tail)
        return first, self.count - first

    def int_segments(self, index: int) -> Tuple[memoryview, ...]:
        return self._segments(memoryview(self.int_cols[index]))

    def float_segments(self, index: int) -> Tuple[memoryview, ...]:
        return self._segments(memoryview(self.float_cols[index]))

    def obj_segments(self, index: int) -> Tuple[Sequence[object], ...]:
        col = self.obj_cols[index]
        first, rest = self._window()
        segments: Tuple[Sequence[object], ...] = (
            col[self.tail:self.tail + first],
        )
        if rest:
            segments += (col[:rest],)
        return segments

    def _segments(self, view: memoryview) -> Tuple[memoryview, ...]:
        first, rest = self._window()
        segments = (view[self.tail:self.tail + first],)
        if rest:
            segments += (view[:rest],)
        return segments

    @property
    def buffer_bytes(self) -> int:
        numeric = 8 * self.capacity * (len(self.int_cols) + len(self.float_cols))
        return numeric + 8 * self.capacity * len(self.obj_cols)


def _materialize(segments: Sequence[Sequence[object]]) -> List[object]:
    """Flatten column segments into one Python list (export-time only)."""
    out: List[object] = []
    for segment in segments:
        if isinstance(segment, memoryview):
            out.extend(segment.tolist())
        else:
            out.extend(segment)
    return out


class TraceSnapshot:
    """A columnar view of one tracer's records plus its exact aggregates.

    Produced zero-copy by :meth:`ColumnarStore.snapshot` (numeric columns
    are memoryview segments over the live rings -- take :meth:`to_bytes`
    to freeze one), by :meth:`from_bytes` when parsing the wire format,
    and by :class:`~repro.trace.merge.TraceMerger` for merged timelines.
    """

    __slots__ = (
        "strings", "counts", "int_columns", "float_columns", "obj_columns",
        "counter_totals", "busy_cycles", "span_counts", "elapsed_by_epoch",
        "epochs", "dropped", "records_seen", "values_rendered", "buffer_bytes",
    )

    def __init__(self) -> None:
        self.strings: List[str] = []
        self.counts: Dict[str, int] = {kind: 0 for kind in KINDS}
        #: kind -> column name -> segment tuple.
        self.int_columns: Dict[str, Dict[str, Sequence]] = {k: {} for k in KINDS}
        self.float_columns: Dict[str, Dict[str, Sequence]] = {k: {} for k in KINDS}
        self.obj_columns: Dict[str, Dict[str, Sequence]] = {k: {} for k in KINDS}
        self.counter_totals: Dict[str, Dict[str, float]] = {}
        self.busy_cycles: Dict[str, int] = {}
        self.span_counts: Dict[str, int] = {}
        self.elapsed_by_epoch: Dict[int, int] = {}
        self.epochs = 1
        self.dropped = 0
        self.records_seen = 0
        #: True once instant values have been flattened to their ``repr``
        #: (the wire format cannot carry arbitrary objects).
        self.values_rendered = False
        self.buffer_bytes = 0

    @property
    def num_records(self) -> int:
        return sum(self.counts.values())

    def column(self, kind: str, name: str) -> List[object]:
        """Materialize one column as a flat Python list."""
        for table in (self.int_columns, self.float_columns, self.obj_columns):
            if name in table[kind]:
                return _materialize(table[kind][name])
        raise TraceError(f"snapshot has no column {kind}/{name}")

    def columns(self, kind: str, *names: str) -> Tuple[List[object], ...]:
        return tuple(self.column(kind, name) for name in names)

    def components(self) -> List[str]:
        """Sorted distinct component names across all record kinds."""
        ids = set()
        for kind in KINDS:
            ids.update(self.column(kind, "component"))
        return sorted(self.strings[i] for i in ids)

    def record_epochs(self) -> List[int]:
        """Sorted distinct epochs that actually hold records."""
        epochs = set()
        for kind in KINDS:
            epochs.update(self.column(kind, "epoch"))
        return sorted(epochs)

    # -- wire format --------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize: magic, u32 header length, JSON header, raw columns.

        Numeric columns ship as native-endian int64/float64 (the header
        records byteorder so a cross-endian merge fails loudly instead of
        silently misreading); object columns (span args, instant values)
        ship inside the JSON header, instant values flattened to ``repr``.
        """
        header: Dict[str, object] = {
            "byteorder": sys.byteorder,
            "strings": self.strings,
            "counts": self.counts,
            "counter_totals": self.counter_totals,
            "busy_cycles": self.busy_cycles,
            "span_counts": self.span_counts,
            "elapsed_by_epoch": {str(k): v for k, v in self.elapsed_by_epoch.items()},
            "epochs": self.epochs,
            "dropped": self.dropped,
            "records_seen": self.records_seen,
            "span_args": _materialize(self.obj_columns["spans"]["args"]),
            "instant_values": [
                value if self.values_rendered else render_value(value)
                for value in _materialize(self.obj_columns["instants"]["value"])
            ],
        }
        blobs: List[bytes] = []
        for kind, names in (
            ("spans", SPAN_INT_COLUMNS),
            ("instants", INSTANT_INT_COLUMNS),
            ("samples", SAMPLE_INT_COLUMNS),
        ):
            for name in names:
                blobs.append(_segment_bytes(self.int_columns[kind][name]))
        for name in SAMPLE_FLOAT_COLUMNS:
            blobs.append(_segment_bytes(self.float_columns["samples"][name]))
        head = json.dumps(header, separators=(",", ":")).encode("utf-8")
        return b"".join(
            [WIRE_MAGIC, struct.pack("<I", len(head)), head] + blobs
        )

    @classmethod
    def from_bytes(cls, payload: bytes) -> "TraceSnapshot":
        """Parse the wire format; numeric columns stay zero-copy views."""
        if not payload.startswith(WIRE_MAGIC):
            raise TraceError("not a columnar trace snapshot (bad magic)")
        offset = len(WIRE_MAGIC)
        (head_len,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        try:
            header = json.loads(payload[offset:offset + head_len].decode("utf-8"))
        except ValueError as error:
            raise TraceError(f"corrupt snapshot header: {error}") from None
        offset += head_len
        if header.get("byteorder") != sys.byteorder:
            raise TraceError(
                f"snapshot byteorder {header.get('byteorder')!r} does not "
                f"match this host ({sys.byteorder})"
            )
        snap = cls()
        snap.strings = list(header["strings"])
        snap.counts = {kind: int(header["counts"][kind]) for kind in KINDS}
        snap.counter_totals = header["counter_totals"]
        snap.busy_cycles = header["busy_cycles"]
        snap.span_counts = header["span_counts"]
        snap.elapsed_by_epoch = {
            int(k): v for k, v in header["elapsed_by_epoch"].items()
        }
        snap.epochs = int(header["epochs"])
        snap.dropped = int(header["dropped"])
        snap.records_seen = int(header["records_seen"])
        snap.values_rendered = True
        view = memoryview(payload)
        for kind, names in (
            ("spans", SPAN_INT_COLUMNS),
            ("instants", INSTANT_INT_COLUMNS),
            ("samples", SAMPLE_INT_COLUMNS),
        ):
            count = snap.counts[kind]
            for name in names:
                segment = view[offset:offset + 8 * count].cast("q")
                snap.int_columns[kind][name] = (segment,)
                offset += 8 * count
        for name in SAMPLE_FLOAT_COLUMNS:
            count = snap.counts["samples"]
            segment = view[offset:offset + 8 * count].cast("d")
            snap.float_columns["samples"][name] = (segment,)
            offset += 8 * count
        snap.obj_columns["spans"]["args"] = (list(header["span_args"]),)
        snap.obj_columns["instants"]["value"] = (list(header["instant_values"]),)
        snap.buffer_bytes = len(payload)
        return snap


def _segment_bytes(segments: Sequence[memoryview]) -> bytes:
    return b"".join(
        seg.tobytes() if isinstance(seg, memoryview) else array("q", seg).tobytes()
        for seg in segments
    )


class ColumnarStore:
    """The flat bounded record store behind a columnar :class:`Tracer`.

    One shared ``max_records`` budget spans all three kinds, like the
    legacy object store -- but where the legacy store *dropped new*
    records at capacity, the rings *evict the oldest* record machine-wide
    (smallest ``seq``), so a long run always retains its most recent
    window.  Evictions are counted in :attr:`dropped`.
    """

    columnar = True

    def __init__(self, max_records: int) -> None:
        if max_records < 1:
            raise TraceError(f"max_records must be >= 1, got {max_records}")
        self.max_records = max_records
        self.strings = StringTable()
        self._spans = _Ring(len(SPAN_INT_COLUMNS), 0, 1, limit=max_records)
        self._instants = _Ring(len(INSTANT_INT_COLUMNS), 0, 1, limit=max_records)
        self._samples = _Ring(len(SAMPLE_INT_COLUMNS), 1, 0, limit=max_records)
        self._seq = 0
        self._retained = 0
        self.dropped = 0  # oldest-evicted, mirroring the legacy counter

    # -- hot appends ---------------------------------------------------------

    def _make_room(self) -> int:
        """Reserve one record slot, evicting the globally-oldest if full."""
        seq = self._seq
        self._seq = seq + 1
        if self._retained >= self.max_records:
            oldest = None
            for ring in (self._spans, self._instants, self._samples):
                if ring.count and (
                    oldest is None or ring.oldest_seq() < oldest.oldest_seq()
                ):
                    oldest = ring
            assert oldest is not None
            oldest.pop_oldest()
            self.dropped += 1
        else:
            self._retained += 1
        return seq

    def add_span(
        self,
        component: str,
        name: str,
        epoch: int,
        start: int,
        end: int,
        depth: int,
        args: Optional[Dict[str, object]],
    ) -> None:
        seq = self._make_room()
        intern = self.strings.intern
        self._spans.append(
            (seq, intern(component), intern(name), epoch, start, end, depth),
            objs=(args,),
        )

    def add_instant(
        self, component: str, name: str, epoch: int, cycle: int, value: object
    ) -> None:
        seq = self._make_room()
        intern = self.strings.intern
        self._instants.append(
            (seq, intern(component), intern(name), epoch, cycle), objs=(value,)
        )

    def add_sample(
        self, component: str, name: str, epoch: int, cycle: int, value: float
    ) -> None:
        seq = self._make_room()
        intern = self.strings.intern
        self._samples.append(
            (seq, intern(component), intern(name), epoch, cycle),
            floats=(value,),
        )

    # -- introspection -------------------------------------------------------

    @property
    def num_records(self) -> int:
        return self._retained

    @property
    def total_appended(self) -> int:
        return self._seq

    @property
    def buffer_bytes(self) -> int:
        return (
            self._spans.buffer_bytes
            + self._instants.buffer_bytes
            + self._samples.buffer_bytes
        )

    def counts(self) -> Dict[str, int]:
        return {
            "spans": self._spans.count,
            "instants": self._instants.count,
            "samples": self._samples.count,
        }

    def snapshot(self) -> TraceSnapshot:
        """Zero-copy columnar view of the retained records.

        Numeric columns are memoryview segments over the live rings (two
        segments where a ring has wrapped): nothing is copied and the
        simulation is never paused.  The views track the live buffer --
        serialize with :meth:`TraceSnapshot.to_bytes` before recording
        more if a frozen copy is needed.
        """
        snap = TraceSnapshot()
        snap.strings = self.strings.strings
        snap.counts = self.counts()
        snap.dropped = self.dropped
        snap.records_seen = self._seq
        snap.buffer_bytes = self.buffer_bytes
        for kind, ring, names in (
            ("spans", self._spans, SPAN_INT_COLUMNS),
            ("instants", self._instants, INSTANT_INT_COLUMNS),
            ("samples", self._samples, SAMPLE_INT_COLUMNS),
        ):
            for index, name in enumerate(names):
                snap.int_columns[kind][name] = ring.int_segments(index)
        snap.float_columns["samples"]["value"] = self._samples.float_segments(0)
        snap.obj_columns["spans"]["args"] = self._spans.obj_segments(0)
        snap.obj_columns["instants"]["value"] = self._instants.obj_segments(0)
        return snap
