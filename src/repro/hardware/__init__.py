"""Cycle-level discrete-event simulator of the Cedar hardware (Section 2).

The package models the machine bottom-up:

* :mod:`repro.hardware.engine` -- discrete-event core (cycle clock).
* :mod:`repro.hardware.packet` -- 1-4 word network packets.
* :mod:`repro.hardware.crossbar` / :mod:`repro.hardware.network` -- 8x8
  crossbar switches with two-word port queues, assembled into the forward and
  reverse multistage shuffle-exchange networks.
* :mod:`repro.hardware.memory` / :mod:`repro.hardware.sync_processor` --
  interleaved global-memory modules, each with a synchronization processor
  executing Test-And-Set / Test-And-Operate indivisibly.
* :mod:`repro.hardware.prefetch` -- per-CE prefetch units with 512-word
  buffers, full/empty bits and page-crossing suspension.
* :mod:`repro.hardware.cache` / :mod:`repro.hardware.cluster_memory` -- the
  Alliant cluster memory hierarchy.
* :mod:`repro.hardware.ce` / :mod:`repro.hardware.vector_unit` /
  :mod:`repro.hardware.ccb` / :mod:`repro.hardware.cluster` -- computational
  elements and the concurrency control bus.
* :mod:`repro.hardware.vm` -- Xylem virtual memory (4KB pages, TLBs).
* :mod:`repro.hardware.monitor` -- event tracers and histogrammers.
* :mod:`repro.hardware.machine` -- the four-cluster Cedar assembly.
"""

from repro.hardware.engine import Engine
from repro.hardware.machine import CedarMachine

__all__ = ["Engine", "CedarMachine"]
