"""Timing model of the Alliant CE vector unit (Section 2).

The CE is a pipelined 68020-compatible processor augmented with vector
instructions: eight 32-word vector registers, register-memory format with
one memory operand, 64-bit floating point, peak 11.8 MFLOPS.  The unit
produces one element result per cycle in steady state after a fixed
pipeline start-up -- the start-up is why the paper separates the 376 MFLOPS
absolute peak from the 274 MFLOPS "effective peak due to unavoidable vector
start-up".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.config import VectorUnitConfig


@dataclass(frozen=True)
class VectorTiming:
    """Cycle cost of one vector instruction operating on ``length`` elements."""

    startup_cycles: int
    element_cycles: int

    @property
    def total_cycles(self) -> int:
        return self.startup_cycles + self.element_cycles


class VectorUnit:
    """Pure timing calculator; the memory system supplies operand timing."""

    def __init__(self, config: VectorUnitConfig) -> None:
        self.config = config

    def strip_lengths(self, length: int) -> List[int]:
        """Split a vector of ``length`` into register-sized strips (<= 32)."""
        if length < 0:
            raise ValueError(f"vector length must be >= 0, got {length}")
        strips = []
        remaining = length
        while remaining > 0:
            strip = min(remaining, self.config.register_length)
            strips.append(strip)
            remaining -= strip
        return strips

    def instruction_timing(self, length: int) -> VectorTiming:
        """Start-up plus one cycle per element for a single instruction."""
        if length < 1:
            raise ValueError(f"vector instruction needs >= 1 element, got {length}")
        if length > self.config.register_length:
            raise ValueError(
                f"a single vector instruction covers at most "
                f"{self.config.register_length} elements, got {length}"
            )
        return VectorTiming(
            startup_cycles=self.config.startup_cycles,
            element_cycles=(length + self.config.elements_per_cycle - 1)
            // self.config.elements_per_cycle,
        )

    def stripmined_cycles(self, length: int) -> int:
        """Total cycles to process ``length`` elements via register strips."""
        return sum(self.instruction_timing(s).total_cycles for s in self.strip_lengths(length))

    def efficiency_at(self, length: int) -> float:
        """Fraction of peak achieved on ``length``-element strips."""
        if length < 1:
            raise ValueError(f"length must be >= 1, got {length}")
        cycles = self.stripmined_cycles(length)
        return length / cycles
