"""Network packets (Section 2, "Global Network").

"Each network packet consists of one to four 64-bit words, the first word
containing routing and control information and the memory address."
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

_packet_ids = itertools.count()

#: Packets carry one to four 64-bit words.
MAX_PACKET_WORDS = 4


class PacketKind(enum.Enum):
    """What a packet asks the far end to do."""

    READ_REQUEST = "read-request"
    WRITE_REQUEST = "write-request"
    READ_REPLY = "read-reply"
    WRITE_ACK = "write-ack"
    SYNC_REQUEST = "sync-request"
    SYNC_REPLY = "sync-reply"


@dataclass
class Packet:
    """One packet travelling the forward or reverse network.

    Attributes:
        kind: Request/reply type.
        source: Originating port (CE index on the forward network, memory
            module on the reverse network).
        destination: Target port on the network the packet rides.
        address: Global memory word address carried in the header word.
        words: Total packet length in 64-bit words including the header.
        issue_cycle: When the originator injected the packet (for latency
            measurement by the performance monitor).
        request_tag: Ties a reply back to the request (PFU slot, CE load id).
        payload_words: Data words carried (words - 1 header word).
    """

    kind: PacketKind
    source: int
    destination: int
    address: int
    words: int = 1
    issue_cycle: int = 0
    request_tag: Optional[int] = None
    #: Free-form control payload (synchronization operands, outcomes).  In
    #: hardware this rides in the packet's control word(s).
    payload: object = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if not 1 <= self.words <= MAX_PACKET_WORDS:
            raise ValueError(
                f"packets carry 1..{MAX_PACKET_WORDS} words, got {self.words}"
            )
        if self.source < 0 or self.destination < 0:
            raise ValueError("ports are non-negative indices")

    @property
    def payload_words(self) -> int:
        return self.words - 1

    def reply(
        self, kind: PacketKind, words: int, issue_cycle: int, payload: object = None
    ) -> "Packet":
        """Build the reverse-network packet answering this request."""
        return Packet(
            kind=kind,
            source=self.destination,
            destination=self.source,
            address=self.address,
            words=words,
            issue_cycle=issue_cycle,
            request_tag=self.request_tag,
            payload=payload if payload is not None else self.payload,
        )
