"""Analysis tools for performance-monitor data.

"Software tools start and stop the experiments and move the data collected
by the performance hardware to workstations for analysis" (Section 2).
These are those workstation-side tools: phase timelines from software
events, signal utilization, and latency distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import MonitorError
from repro.hardware.monitor import EventTracer, Histogrammer, PerformanceMonitor


@dataclass(frozen=True)
class Phase:
    """One program phase recovered from begin/end software events."""

    name: str
    start_cycle: int
    end_cycle: int

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle


def phase_timeline(tracer: EventTracer) -> List[Phase]:
    """Pair ``<name>-begin`` / ``<name>-end`` events into phases.

    Nested or repeated phases are supported; unmatched begins raise.
    """
    open_phases: Dict[str, List[int]] = {}
    phases: List[Phase] = []
    for event in tracer.events():
        if event.signal.endswith("-begin"):
            name = event.signal[: -len("-begin")]
            open_phases.setdefault(name, []).append(event.cycle)
        elif event.signal.endswith("-end"):
            name = event.signal[: -len("-end")]
            starts = open_phases.get(name)
            if not starts:
                raise MonitorError(f"phase {name!r} ended without beginning")
            phases.append(
                Phase(name=name, start_cycle=starts.pop(),
                      end_cycle=event.cycle)
            )
    dangling = [name for name, starts in open_phases.items() if starts]
    if dangling:
        raise MonitorError(f"phases never ended: {', '.join(sorted(dangling))}")
    return sorted(phases, key=lambda p: p.start_cycle)


def phase_summary(phases: Sequence[Phase]) -> Dict[str, int]:
    """Total cycles per phase name."""
    totals: Dict[str, int] = {}
    for phase in phases:
        totals[phase.name] = totals.get(phase.name, 0) + phase.cycles
    return totals


@dataclass(frozen=True)
class LatencyDistribution:
    """Summary of a latency histogram (Table 2's analysis view)."""

    mean: float
    p50: int
    p90: int
    maximum: int
    samples: int


def summarize_histogram(histogram: Histogrammer) -> LatencyDistribution:
    """Mean/percentile/extreme view of a histogrammer's contents."""
    counts = histogram.counts()
    if not counts:
        raise MonitorError("cannot summarize an empty histogram")
    maximum = max(counts) * histogram.bin_width
    return LatencyDistribution(
        mean=histogram.mean(),
        p50=histogram.percentile(0.5),
        p90=histogram.percentile(0.9),
        maximum=maximum,
        samples=histogram.total,
    )


def utilization(
    busy_cycles: float, elapsed_cycles: float
) -> float:
    """Fraction of time a monitored unit was busy."""
    if elapsed_cycles <= 0:
        raise MonitorError("elapsed window must be positive")
    if busy_cycles < 0 or busy_cycles > elapsed_cycles:
        raise MonitorError(
            f"busy cycles {busy_cycles} outside [0, {elapsed_cycles}]"
        )
    return busy_cycles / elapsed_cycles


def module_utilizations(machine, elapsed_cycles: int) -> List[float]:
    """Per-memory-module utilization over a finished run."""
    return [
        utilization(min(m.busy_cycles, elapsed_cycles), elapsed_cycles)
        for m in machine.global_memory.modules
    ]


def hot_modules(machine, elapsed_cycles: int, threshold: float = 0.8) -> List[int]:
    """Module indices whose utilization exceeds ``threshold``."""
    return [
        index
        for index, value in enumerate(module_utilizations(machine, elapsed_cycles))
        if value > threshold
    ]
