"""Explicit data movement between global and cluster memory.

"Data can be moved between cluster and global shared memory only via
explicit moves under software control" (Section 2).  Coherence between
copies of globally shared data residing in cluster memories is maintained in
software; the helpers here are the simulator-side equivalent of the run-time
library's block-move routines, written as micro-operation generators that a
kernel coroutine can ``yield from``.
"""

from __future__ import annotations

from typing import Iterator

from repro.hardware.ce import (
    ArmFirePrefetch,
    AwaitPrefetch,
    ComputationalElement,
    GlobalStores,
)


def move_global_to_cluster(
    ce: ComputationalElement,
    start_address: int,
    length: int,
    stride: int = 1,
    install_dirty: bool = False,
) -> Iterator[object]:
    """Copy a block from global memory into the cluster's cached work array.

    The move streams through the CE's prefetch unit in buffer-sized chunks
    (the PFU issues up to 512 requests without pausing) and installs the
    destination lines in the cluster cache, which is how the GM/cache rank-64
    version gets its submatrix into "a cached work array in each cluster".
    """
    if length < 0:
        raise ValueError(f"move length must be >= 0, got {length}")
    buffer_words = ce.config.prefetch.buffer_words
    moved = 0
    while moved < length:
        chunk = min(buffer_words, length - moved)
        handle = yield ArmFirePrefetch(
            length=chunk,
            stride=stride,
            start_address=start_address + moved * stride,
        )
        yield AwaitPrefetch(handle)
        ce.cache.install_block(start_address + moved * stride, chunk * abs(stride),
                               dirty=install_dirty)
        moved += chunk


def move_cluster_to_global(
    ce: ComputationalElement,
    start_address: int,
    length: int,
    stride: int = 1,
) -> Iterator[object]:
    """Copy a block from the cluster work array back to global memory.

    Reads hit the cluster cache (reserving its bandwidth) and the writes
    stream into the forward network; global writes are not acknowledged
    (weak ordering), so the move completes when the last store is issued.
    """
    if length < 0:
        raise ValueError(f"move length must be >= 0, got {length}")
    if length == 0:
        return
    ce.cache.stream(length, resident=True)
    yield GlobalStores(start_address=start_address, length=length, stride=stride)
