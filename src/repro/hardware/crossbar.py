"""An 8x8 crossbar switch with queued ports (Section 2, "Global Network").

Each switch has a bounded word-queue per input port and a round-robin
arbiter per output port.  An arbiter takes ``packet.words`` cycles (one word
per cycle over the 64-bit data path) to move the head packet of an input
queue to the downstream queue, and blocks -- exerting back-pressure through
the flow control -- when the downstream queue is full.

Modelling note: the hardware has a two-word queue on the input *and* output
side of every port.  We fold each output queue into the downstream stage's
input queue (doubling its capacity) so that a hop costs one arbitration
rather than two; the total buffering per port pair and the back-pressure
behaviour are preserved.

Fast path: every input queue reports head changes to the switch, which keeps
a per-output count of head packets routed to that output (``_heads_for``).
A wake of an arbiter with no head routed to it is observationally a no-op --
the round-robin scan would find nothing, count nothing and register
nothing -- so masked wakes skip straight past it in O(1).  Scans that *can*
see a candidate run exactly as before (including re-scans that re-count a
port conflict), so arbitration order, port-conflict counts and all timing
are byte-identical to the unmasked implementation (``CEDAR_FASTPATH=0``
switches the masking off to prove it).  The deferred post-pop re-scan event
is always scheduled, exactly as the plain implementation does: whether it
finds work is only known at dispatch time, after same-cycle arrivals.
"""

from __future__ import annotations

from heapq import heappush
from typing import Callable, List, Optional

from repro.hardware import fastpath, sanitize
from repro.hardware.engine import Engine
from repro.hardware.packet import Packet
from repro.hardware.queueing import BoundedWordQueue

RouteFunction = Callable[[Packet], int]


class _OutputArbiter:
    """Round-robin arbiter for one crossbar output."""

    __slots__ = (
        "engine",
        "switch",
        "output_index",
        "cycles_per_word",
        "_busy",
        "_next_input",
        "_in_flight",
        "_sink",
        "_fast",
        "_heads",
        "_queues",
        "_head_route",
        "_sanitizer",
    )

    def __init__(
        self,
        engine: Engine,
        switch: "CrossbarSwitch",
        output_index: int,
        cycles_per_word: int,
    ) -> None:
        self.engine = engine
        self.switch = switch
        self.output_index = output_index
        self.cycles_per_word = cycles_per_word
        self._busy = False
        self._next_input = 0
        self._in_flight: Optional[Packet] = None
        self._sink: Optional[BoundedWordQueue] = None
        # Hot-path prebinds: wake()/_select_input() run once or more per
        # event on the network's critical path.
        self._fast = switch._fast
        self._heads = switch._heads_for
        self._queues = switch.input_queues
        self._head_route = switch._head_route
        self._sanitizer = switch._sanitizer

    def attach(self, sink: BoundedWordQueue) -> None:
        self._sink = sink

    def wake(self) -> None:
        """Try to start a transfer; called on input pushes and sink drains."""
        sink = self._sink
        if self._busy or sink is None:
            return
        switch = self.switch
        queues = self._queues
        radix = switch.radix
        start = self._next_input
        chosen = -1
        if self._fast:
            # The head-route array already holds route(head) per input
            # (None when empty), so the scan needs no head()/route() calls
            # until it lands on a match -- same order, same outcome.  The
            # scan is inlined here because wake() fires for every push on
            # the network's critical path.
            output_index = self.output_index
            if not self._heads[output_index]:
                if self._sanitizer is not None:
                    # The skip is only legal if the reference scan would
                    # also have found nothing; prove it.
                    self._sanitizer.check_masked_skip(self)
                return  # no head routed here: the scan could find nothing
            head_route = self._head_route
            for offset in range(radix):
                index = start + offset
                if index >= radix:
                    index -= radix
                if head_route[index] != output_index:
                    continue
                head = queues[index]._packets[0]
                if head.words <= sink.capacity_words - sink._used_words:
                    chosen = index
                    break
                self._count_conflict(sink, head)
                return
            if chosen < 0:
                return
        else:
            selected = self._select_input()
            if selected is None:
                return
            chosen = selected
        if self._sanitizer is not None:
            # Before any mutation: the grant must match the shadow
            # reference arbiter and the round-robin pointer must be fair.
            self._sanitizer.check_arbiter_grant(self, start, chosen)
        self._busy = True
        packet = queues[chosen].pop()
        self._next_input = (chosen + 1) % radix
        self._in_flight = packet
        delay = packet.words * self.cycles_per_word
        # Inlined Engine.schedule_after: two heap entries per transfer make
        # this the single hottest scheduling site in the machine.
        engine = self.engine
        now = engine._now
        sequence = engine._sequence
        event_queue = engine._queue
        heappush(
            event_queue,
            [now + (delay if delay > 0 else 1), next(sequence), self._finish],
        )
        # Popping may have exposed a new head packet bound for a sibling
        # output; let the other arbiters re-scan (deferred to avoid deep
        # recursion chains through listener callbacks).  Never elided: a
        # packet arriving later in this same cycle can give the re-scan
        # real work (and conflict counts) only visible at dispatch time.
        heappush(event_queue, [now, next(sequence), switch.wake_all])

    def _select_input(self) -> Optional[int]:
        """Next input (round-robin) whose head routes here and fits downstream."""
        switch = self.switch
        queues = switch.input_queues
        sink = self._sink
        output_index = self.output_index
        radix = switch.radix
        start = self._next_input
        assert sink is not None
        route = switch.route
        for offset in range(radix):
            index = start + offset
            if index >= radix:
                index -= radix
            head = queues[index].head()
            if head is None or route(head) != output_index:
                continue
            if sink.can_accept(head):
                return index
            self._count_conflict(sink, head)
            return None
        return None

    def _count_conflict(self, sink: BoundedWordQueue, head: Packet) -> None:
        # Head routed here but downstream is full: wait for space.  The
        # space waiter re-wakes this arbiter, which re-scans fairly.  Every
        # re-scan that hits the full sink counts another conflict, exactly
        # like the plain implementation.
        if self._sanitizer is not None:
            self._sanitizer.check_port_conflict(self, head)
        switch = self.switch
        counters = switch._trace_counters
        if counters is not None:
            slot = switch._slot_conflicts
            if slot < 0:
                slot = switch._slot_conflicts = counters.slot("port_conflicts")
            counters.values[slot] += 1
        sink.wait_for_space(self.wake)

    def _finish(self) -> None:
        packet = self._in_flight
        sink = self._sink
        assert packet is not None and sink is not None
        # Space was checked before the transfer started and only this
        # arbiter pushes into its sink slot contribution, but a merged sink
        # queue can be shared with other switches' arbiters -- re-check.
        if packet.words <= sink.capacity_words - sink._used_words:
            sink.push(packet)
            self._in_flight = None
            self._busy = False
            switch = self.switch
            counters = switch._trace_counters
            if counters is not None:
                slot = switch._slot_packets
                if slot < 0:
                    slot = switch._slot_packets = counters.slot(
                        "packets_forwarded"
                    )
                    switch._slot_words = counters.slot("words_forwarded")
                values = counters.values
                values[slot] += 1
                values[switch._slot_words] += packet.words
            self.wake()
        else:
            sink.wait_for_space(self._finish)


class CrossbarSwitch:
    """A radix-N crossbar: N input queues, N output arbiters."""

    def __init__(
        self,
        engine: Engine,
        radix: int,
        route: RouteFunction,
        queue_words: int,
        cycles_per_word: int = 1,
        name: str = "",
        tracer=None,
    ) -> None:
        if radix < 2:
            raise ValueError(f"crossbar radix must be >= 2, got {radix}")
        self.engine = engine
        self.radix = radix
        self.route = route
        self.name = name
        #: Enabled trace bus or None; a single None-check per event keeps the
        #: disabled path free (this is the hottest component in the machine).
        self.trace = tracer.if_enabled() if tracer is not None else None
        #: Pre-bound counter set: the dispatch-critical methods accumulate
        #: into it directly instead of re-resolving component dicts per event.
        self._trace_counters = (
            self.trace.counters(name or "crossbar")
            if self.trace is not None
            else None
        )
        #: Interned counter slots into ``_trace_counters.values``; bound
        #: lazily on first bump (-1 until then) so counters this switch
        #: never fires stay absent from the reported totals.
        self._slot_conflicts = -1
        self._slot_packets = -1
        self._slot_words = -1
        self._fast = fastpath.enabled()
        #: Armed invariant checker or None; the arbiters prebind it.
        self._sanitizer = sanitize.current()
        #: How many input-queue heads currently route to each output.
        self._heads_for: List[int] = [0] * radix
        #: Route of each input queue's head packet (None when empty).
        self._head_route: List[Optional[int]] = [None] * radix
        self.input_queues: List[BoundedWordQueue] = [
            BoundedWordQueue(queue_words, name=f"{name}.in[{i}]")
            for i in range(radix)
        ]
        self.arbiters: List[_OutputArbiter] = [
            _OutputArbiter(engine, self, o, cycles_per_word) for o in range(radix)
        ]
        for index, queue in enumerate(self.input_queues):
            queue.set_head_listener(self._make_head_listener(index, queue))
            queue.add_item_listener(self.wake_all)

    def _make_head_listener(
        self, index: int, queue: BoundedWordQueue
    ) -> Callable[[], None]:
        """Closure that maintains the head-route masks for one input queue.

        Fired by the queue on any head change; a closure over the mask
        arrays (rather than a bound method taking the index) because it
        runs once per push-into-empty and once per pop.
        """
        packets = queue._packets
        route = self.route
        head_route = self._head_route
        heads_for = self._heads_for

        def head_changed() -> None:
            new_route = route(packets[0]) if packets else None
            old_route = head_route[index]
            if new_route == old_route:
                return
            head_route[index] = new_route
            if old_route is not None:
                heads_for[old_route] -= 1
            if new_route is not None:
                heads_for[new_route] += 1

        return head_changed

    def wake_all(self) -> None:
        """Give every output arbiter a chance to pick up a head packet."""
        if self._sanitizer is not None:
            # One pass per wake_all: the derived head-route masks must
            # mirror the actual queue heads before any arbiter trusts them.
            self._sanitizer.check_crossbar_masks(self)
        if self._fast:
            for count, arbiter in zip(self._heads_for, self.arbiters):
                if count and not arbiter._busy:
                    arbiter.wake()
        else:
            for arbiter in self.arbiters:
                arbiter.wake()

    def connect_output(self, output_index: int, sink: BoundedWordQueue) -> None:
        """Wire output ``output_index`` into a downstream queue."""
        self.arbiters[output_index].attach(sink)

    def occupancy_words(self) -> int:
        """Words currently buffered in this switch's input queues."""
        return sum(q.used_words for q in self.input_queues)
