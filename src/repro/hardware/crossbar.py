"""An 8x8 crossbar switch with queued ports (Section 2, "Global Network").

Each switch has a bounded word-queue per input port and a round-robin
arbiter per output port.  An arbiter takes ``packet.words`` cycles (one word
per cycle over the 64-bit data path) to move the head packet of an input
queue to the downstream queue, and blocks -- exerting back-pressure through
the flow control -- when the downstream queue is full.

Modelling note: the hardware has a two-word queue on the input *and* output
side of every port.  We fold each output queue into the downstream stage's
input queue (doubling its capacity) so that a hop costs one arbitration
rather than two; the total buffering per port pair and the back-pressure
behaviour are preserved.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.hardware.engine import Engine
from repro.hardware.packet import Packet
from repro.hardware.queueing import BoundedWordQueue

RouteFunction = Callable[[Packet], int]


class _OutputArbiter:
    """Round-robin arbiter for one crossbar output."""

    def __init__(
        self,
        engine: Engine,
        switch: "CrossbarSwitch",
        output_index: int,
        cycles_per_word: int,
    ) -> None:
        self.engine = engine
        self.switch = switch
        self.output_index = output_index
        self.cycles_per_word = cycles_per_word
        self._busy = False
        self._next_input = 0
        self._in_flight: Optional[Packet] = None
        self._sink: Optional[BoundedWordQueue] = None

    def attach(self, sink: BoundedWordQueue) -> None:
        self._sink = sink

    def wake(self) -> None:
        """Try to start a transfer; called on input pushes and sink drains."""
        if self._busy or self._sink is None:
            return
        chosen = self._select_input()
        if chosen is None:
            return
        self._busy = True
        packet = self.switch.input_queues[chosen].pop()
        self._next_input = (chosen + 1) % len(self.switch.input_queues)
        self._in_flight = packet
        self.engine.schedule(
            max(1, packet.words * self.cycles_per_word), self._finish
        )
        # Popping may have exposed a new head packet bound for a sibling
        # output; let the other arbiters re-scan (deferred to avoid deep
        # recursion chains through listener callbacks).
        self.engine.schedule(0, self.switch.wake_all)

    def _select_input(self) -> Optional[int]:
        """Next input (round-robin) whose head routes here and fits downstream."""
        queues = self.switch.input_queues
        assert self._sink is not None
        for offset in range(len(queues)):
            index = (self._next_input + offset) % len(queues)
            head = queues[index].head()
            if head is None:
                continue
            if self.switch.route(head) != self.output_index:
                continue
            if self._sink.can_accept(head):
                return index
            # Head routed here but downstream is full: wait for space.  The
            # space waiter re-wakes this arbiter, which re-scans fairly.
            trace = self.switch.trace
            if trace is not None:
                trace.count(self.switch.name or "crossbar", "port_conflicts")
            self._sink.wait_for_space(self.wake)
            return None
        return None

    def _finish(self) -> None:
        packet = self._in_flight
        assert packet is not None and self._sink is not None
        # Space was checked before the transfer started and only this
        # arbiter pushes into its sink slot contribution, but a merged sink
        # queue can be shared with other switches' arbiters -- re-check.
        if self._sink.can_accept(packet):
            self._sink.push(packet)
            self._in_flight = None
            self._busy = False
            trace = self.switch.trace
            if trace is not None:
                name = self.switch.name or "crossbar"
                trace.count(name, "packets_forwarded")
                trace.count(name, "words_forwarded", packet.words)
            self.wake()
        else:
            self._sink.wait_for_space(self._finish)


class CrossbarSwitch:
    """A radix-N crossbar: N input queues, N output arbiters."""

    def __init__(
        self,
        engine: Engine,
        radix: int,
        route: RouteFunction,
        queue_words: int,
        cycles_per_word: int = 1,
        name: str = "",
        tracer=None,
    ) -> None:
        if radix < 2:
            raise ValueError(f"crossbar radix must be >= 2, got {radix}")
        self.engine = engine
        self.radix = radix
        self.route = route
        self.name = name
        #: Enabled trace bus or None; a single None-check per event keeps the
        #: disabled path free (this is the hottest component in the machine).
        self.trace = tracer.if_enabled() if tracer is not None else None
        self.input_queues: List[BoundedWordQueue] = [
            BoundedWordQueue(queue_words, name=f"{name}.in[{i}]")
            for i in range(radix)
        ]
        self.arbiters: List[_OutputArbiter] = [
            _OutputArbiter(engine, self, o, cycles_per_word) for o in range(radix)
        ]
        for queue in self.input_queues:
            queue.add_item_listener(self._on_arrival)

    def _on_arrival(self) -> None:
        self.wake_all()

    def wake_all(self) -> None:
        """Give every output arbiter a chance to pick up a head packet."""
        for arbiter in self.arbiters:
            arbiter.wake()

    def connect_output(self, output_index: int, sink: BoundedWordQueue) -> None:
        """Wire output ``output_index`` into a downstream queue."""
        self.arbiters[output_index].attach(sink)

    def occupancy_words(self) -> int:
        """Words currently buffered in this switch's input queues."""
        return sum(q.used_words for q in self.input_queues)
