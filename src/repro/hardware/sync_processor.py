"""Synchronization processors in the global-memory modules (Section 2).

"Cedar implements a set of indivisible synchronization instructions in each
memory module ... performed by a special processor in each memory module."
A Cedar synchronization instruction is a *Test-And-Operate*: Test is any
relational operation on 32-bit data and Operate is a Read, Write, Add,
Subtract, or Logical operation, executed indivisibly when the test passes
(the [ZhYe87] scheme for enforcing data dependences).
"""

from __future__ import annotations

import enum
import operator
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.hardware import sanitize


class TestOp(enum.Enum):
    """Relational tests available to Test-And-Operate."""

    ALWAYS = "always"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


class OperateOp(enum.Enum):
    """Operations performed when the test succeeds."""

    READ = "read"
    WRITE = "write"
    ADD = "add"
    SUBTRACT = "subtract"
    AND = "and"
    OR = "or"
    XOR = "xor"


_TESTS: Dict[TestOp, Callable[[int, int], bool]] = {
    TestOp.ALWAYS: lambda value, key: True,
    TestOp.EQ: operator.eq,
    TestOp.NE: operator.ne,
    TestOp.LT: operator.lt,
    TestOp.LE: operator.le,
    TestOp.GT: operator.gt,
    TestOp.GE: operator.ge,
}

_MASK32 = 0xFFFFFFFF


@dataclass(frozen=True)
class SyncOutcome:
    """Result of one indivisible synchronization instruction.

    Attributes:
        test_passed: Whether the relational test succeeded.
        old_value: The 32-bit value read before any operation.
        new_value: The value stored afterwards (== old_value if unchanged).
    """

    test_passed: bool
    old_value: int
    new_value: int


class SyncProcessor:
    """The per-module processor executing sync instructions indivisibly.

    It owns the synchronization view of the module's words: a plain dict of
    32-bit integers keyed by word address.  Because the discrete-event
    simulator serializes each module, every call here is naturally atomic --
    exactly the property the hardware provides.
    """

    def __init__(self, tracer=None) -> None:
        self._words: Dict[int, int] = {}
        self.operations_executed = 0
        self.trace = tracer.if_enabled() if tracer is not None else None
        self._sanitizer = sanitize.current()

    def read(self, address: int) -> int:
        """Current 32-bit value at ``address`` (0 if never written)."""
        return self._words.get(address, 0)

    def write(self, address: int, value: int) -> None:
        self._words[address] = value & _MASK32

    def test_and_set(self, address: int) -> SyncOutcome:
        """Classic Test-And-Set: returns the old value, sets the word to 1."""
        self.operations_executed += 1
        if self.trace is not None:
            self.trace.count("sync", "test_and_set")
        old = self.read(address)
        self.write(address, 1)
        outcome = SyncOutcome(test_passed=(old == 0), old_value=old, new_value=1)
        if self._sanitizer is not None:
            self._sanitizer.check_sync(
                self, address, "test_and_set", None, 0, None, 0, outcome
            )
        return outcome

    def test_and_operate(
        self,
        address: int,
        test: TestOp,
        key: int,
        op: OperateOp,
        operand: int = 0,
    ) -> SyncOutcome:
        """Cedar's Test-And-Operate, indivisible at the module.

        The test compares the memory word against ``key``; only when it
        passes is the operation applied.
        """
        self.operations_executed += 1
        if self.trace is not None:
            self.trace.count("sync", "test_and_operate")
        old = self.read(address)
        if not _TESTS[test](old, key & _MASK32):
            outcome = SyncOutcome(test_passed=False, old_value=old, new_value=old)
        else:
            new = self._apply(op, old, operand & _MASK32)
            if op is not OperateOp.READ:
                self.write(address, new)
            outcome = SyncOutcome(
                test_passed=True, old_value=old, new_value=new & _MASK32
            )
        if self._sanitizer is not None:
            self._sanitizer.check_sync(
                self, address, "test_and_operate",
                test.value, key, op.value, operand, outcome,
            )
        return outcome

    @staticmethod
    def _apply(op: OperateOp, old: int, operand: int) -> int:
        if op is OperateOp.READ:
            return old
        if op is OperateOp.WRITE:
            return operand
        if op is OperateOp.ADD:
            return (old + operand) & _MASK32
        if op is OperateOp.SUBTRACT:
            return (old - operand) & _MASK32
        if op is OperateOp.AND:
            return old & operand
        if op is OperateOp.OR:
            return old | operand
        if op is OperateOp.XOR:
            return old ^ operand
        raise ValueError(f"unknown operate op {op!r}")
