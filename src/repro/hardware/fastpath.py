"""Global switch for the simulator's behavior-preserving fast paths.

The engine's batched dispatch loop and the hot components' wake-slimming
(crossbar head-route masks, skipped no-op wake events) are *observationally
equivalent* to the straightforward implementations: every simulated result,
machine counter and monitor histogram is byte-identical either way.  The only
visible difference is the simulator's own self-profile (wall clock, engine
dispatch counts).

This module is the single place that equivalence claim can be switched off --
``CEDAR_FASTPATH=0`` in the environment, or :func:`set_enabled` from tests --
so the determinism suite can run both variants against each other.
Components snapshot the flag at construction time; flipping it does not
affect machines that already exist.
"""

from __future__ import annotations

import os


def _from_env() -> bool:
    # The sanctioned snapshot-once pattern: read at import into a module
    # switch; components then snapshot the switch at construction.
    return os.environ.get(  # cedar: noqa[det.env-read]
        "CEDAR_FASTPATH", "1"
    ).strip().lower() not in (
        "0", "off", "false", "no",
    )


_enabled = _from_env()


def enabled() -> bool:
    """Whether newly constructed engines/components use the fast paths."""
    return _enabled


def set_enabled(flag: bool) -> bool:
    """Set the flag (for tests); returns the previous value."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous
