"""The concurrency control bus (Section 2, "Alliant clusters").

"Concurrency control instructions implement fast fork, join and
synchronization operations.  For example: concurrent start is a single
instruction that 'spreads' the iterations of a parallel loop from one to all
the CEs in a cluster ... The whole cluster is thus 'gang-scheduled'.  CEs
within a cluster can then 'self-schedule' iterations of the parallel loop
among themselves."
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

from repro.config import ConcurrencyBusConfig
from repro.errors import SimulationError
from repro.hardware import sanitize
from repro.hardware.ce import Compute, ComputationalElement, KernelCoroutine


class IterationCounter:
    """The shared loop-iteration dispenser behind self-scheduling."""

    def __init__(self, num_iterations: int) -> None:
        if num_iterations < 0:
            raise ValueError(f"iteration count must be >= 0, got {num_iterations}")
        self.num_iterations = num_iterations
        self._next = 0

    def claim(self) -> Optional[int]:
        """Next unclaimed iteration, or None when the loop is exhausted."""
        if self._next >= self.num_iterations:
            return None
        iteration = self._next
        self._next += 1
        return iteration

    @property
    def remaining(self) -> int:
        return self.num_iterations - self._next


BodyFactory = Callable[[ComputationalElement, int], KernelCoroutine]


class ConcurrencyControlBus:
    """Gang-scheduling and self-scheduling for one cluster's CEs."""

    def __init__(
        self,
        config: ConcurrencyBusConfig,
        ces: List[ComputationalElement],
        tracer=None,
        name: str = "ccb",
    ) -> None:
        if not ces:
            raise SimulationError("a concurrency control bus needs CEs")
        self.config = config
        self.ces = ces
        self.engine = ces[0].engine
        self.name = name
        self.trace = tracer.if_enabled() if tracer is not None else None
        self._sanitizer = sanitize.current()
        self.loops_started = 0

    def concurrent_start(
        self,
        num_iterations: int,
        body: BodyFactory,
        on_done: Optional[Callable[[], None]] = None,
        static: bool = False,
    ) -> None:
        """Spread a parallel loop across all CEs of the cluster.

        Args:
            num_iterations: Trip count of the CDOALL.
            body: Generator factory producing the micro-operations of one
                iteration on a given CE.
            on_done: Invoked once every CE has passed the join.
            static: Pre-assign iterations round-robin instead of
                self-scheduling (the run-time library supports both).
        """
        self.loops_started += 1
        counter = IterationCounter(num_iterations)
        remaining = {"ces": len(self.ces)}
        trace = self.trace
        sanitizer = self._sanitizer
        start_cycle = self.engine.now
        if trace is not None:
            trace.count(self.name, "concurrent_starts")
        if sanitizer is not None:
            sanitizer.register_cdoall(counter, num_iterations, len(self.ces))

        def ce_finished() -> None:
            remaining["ces"] -= 1
            if remaining["ces"] == 0:
                if sanitizer is not None:
                    sanitizer.ccb_join(counter, static)
                if trace is not None:
                    trace.complete(
                        self.name,
                        f"cdoall[{num_iterations} iters x {len(self.ces)} ces]",
                        start_cycle, self.engine.now,
                        static=static,
                    )
                if on_done is not None:
                    on_done()

        for position, ce in enumerate(self.ces):
            kernel = self._make_worker(position, counter, body, static)
            ce.run(kernel, on_done=ce_finished)

    def _make_worker(
        self,
        position: int,
        counter: IterationCounter,
        body: BodyFactory,
        static: bool,
    ):
        config = self.config
        num_ces = len(self.ces)
        trace = self.trace
        name = self.name
        sanitizer = self._sanitizer

        def worker(ce: ComputationalElement) -> KernelCoroutine:
            # Concurrent-start broadcast: program counter + private stacks.
            yield Compute(config.concurrent_start_cycles)
            if static:
                iteration = position
                while iteration < counter.num_iterations:
                    yield from body(ce, iteration)
                    iteration += num_ces
            else:
                while True:
                    iteration = counter.claim()
                    if iteration is None:
                        break
                    if sanitizer is not None:
                        sanitizer.ccb_claimed(counter, iteration)
                    if trace is not None:
                        trace.count(name, "iterations_acquired")
                    yield Compute(config.self_schedule_cycles)
                    yield from body(ce, iteration)
            yield Compute(config.join_cycles)

        return worker
