"""The Cedar multistage shuffle-exchange network (Section 2).

Two of these are instantiated per machine: a *forward* network carrying
requests from the 32 CEs to the 32 global-memory modules and a *reverse*
network carrying replies back.  The network is self-routing (destination-tag
scheme of [Lawr75]), buffered, and packet-switched, built from 8x8 crossbars
with two-word port queues and inter-stage flow control.

Topology: with radix ``r`` and ``S = ceil(log_r ports)`` stages, line labels
are S-digit base-r numbers.  Stage ``s`` groups lines that agree on every
digit except position ``S-1-s``; the switch replaces that digit with the
corresponding digit of the destination tag.  After the last stage every
digit has been rewritten, so the packet emerges on its destination line --
the generalized butterfly, contention-equivalent to the omega/shuffle
network Cedar used.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, List, Optional

from repro.config import NetworkConfig, network_stages_for
from repro.errors import ConfigurationError
from repro.hardware import sanitize
from repro.hardware.engine import Engine
from repro.hardware.packet import Packet
from repro.hardware.crossbar import CrossbarSwitch
from repro.hardware.queueing import BoundedWordQueue

DeliveryHandler = Callable[[Packet], None]


def _digit(value: int, position: int, radix: int) -> int:
    return (value // radix**position) % radix


def _with_digit(value: int, position: int, radix: int, digit: int) -> int:
    base = radix**position
    return value - _digit(value, position, radix) * base + digit * base


class OmegaNetwork:
    """A unidirectional multistage network of 8x8 crossbar switches."""

    def __init__(
        self,
        engine: Engine,
        num_ports: int,
        config: NetworkConfig,
        name: str = "net",
        tracer=None,
    ) -> None:
        if num_ports < 2:
            raise ConfigurationError(f"network needs >= 2 ports, got {num_ports}")
        self.engine = engine
        self.config = config
        self.name = name
        self._tracer = tracer
        self.trace = tracer.if_enabled() if tracer is not None else None
        # Pre-bound counter set for the injection/delivery hot paths.
        self._trace_counters = (
            self.trace.counters(name) if self.trace is not None else None
        )
        #: Lazily bound counter slots (-1 until the first bump).
        self._slot_rejected = -1
        self._slot_packets = -1
        self._slot_words = -1
        self._injections = 0
        self.radix = config.switch_radix
        # Stage count shared with CedarConfig.network_stages and the
        # machine builder's routing-tag derivation (config.py owns it).
        self.num_stages = network_stages_for(num_ports, self.radix)
        self.num_lines = self.radix**self.num_stages
        self.num_ports = num_ports
        self._sinks: Dict[int, DeliveryHandler] = {}
        self._delivery_queues: List[BoundedWordQueue] = []
        self._sanitizer = sanitize.current()
        self._build()
        if self._sanitizer is not None:
            # Registers the delivery queues so pops from them count as
            # deliveries in the packet-conservation ledger.
            self._sanitizer.register_network(self)

    # -- construction ----------------------------------------------------

    def _build(self) -> None:
        radix, stages = self.radix, self.num_stages
        switches_per_stage = self.num_lines // radix
        # Input queues of a stage-s switch double as the upstream stage's
        # output queues, hence 2x the per-port capacity (see crossbar.py).
        queue_words = 2 * self.config.port_queue_words
        self.stages: List[List[CrossbarSwitch]] = []
        for stage in range(stages):
            digit_position = stages - 1 - stage
            row = [
                CrossbarSwitch(
                    engine=self.engine,
                    radix=radix,
                    route=self._router(digit_position),
                    queue_words=queue_words,
                    cycles_per_word=self.config.stage_latency_cycles,
                    name=f"{self.name}.s{stage}.x{sw}",
                    tracer=self._tracer,
                )
                for sw in range(switches_per_stage)
            ]
            self.stages.append(row)
        # Wire stage s outputs to stage s+1 inputs.
        for stage in range(stages - 1):
            for sw_index, switch in enumerate(self.stages[stage]):
                for output in range(radix):
                    line = self._line_for(stage, sw_index, output)
                    nsw, nin = self._switch_for(stage + 1, line)
                    switch.connect_output(
                        output, self.stages[stage + 1][nsw].input_queues[nin]
                    )
        # Last stage outputs feed per-port delivery queues.  Endpoints either
        # pull from these (memory modules, preserving back-pressure into the
        # network) or attach a greedy sink handler (prefetch buffers, which
        # bound their own occupancy by never over-issuing requests).
        last = stages - 1
        for line in range(self.num_lines):
            sw, port = self._switch_for(last, line)
            queue = BoundedWordQueue(queue_words, name=f"{self.name}.out[{line}]")
            self.stages[last][sw].connect_output(port, queue)
            self._delivery_queues.append(queue)
        # Entry queues are looked up on every injection attempt; resolve the
        # stage-0 switch arithmetic once per line instead of per packet.
        self._entry_queues: List[BoundedWordQueue] = []
        for line in range(self.num_lines):
            sw, index = self._switch_for(0, line)
            self._entry_queues.append(self.stages[0][sw].input_queues[index])

    def _router(self, digit_position: int) -> Callable[[Packet], int]:
        # route() runs once per packet per arbitration scan -- one of the
        # hottest closures in the simulator -- so hoist the power out.
        radix = self.radix
        base = radix**digit_position

        def route(packet: Packet) -> int:
            return (packet.destination // base) % radix

        return route

    def _switch_for(self, stage: int, line: int) -> "tuple[int, int]":
        """(switch index, port index) of ``line`` at ``stage``.

        At stage ``s`` the varying digit is position ``S-1-s``; the switch
        index is the line with that digit removed, the port index is the
        digit itself.
        """
        position = self.num_stages - 1 - stage
        digit = _digit(line, position, self.radix)
        below = line % self.radix**position
        above = line // self.radix ** (position + 1)
        switch = above * self.radix**position + below
        return switch, digit

    def _line_for(self, stage: int, switch: int, port: int) -> int:
        """Inverse of :meth:`_switch_for`: output line label."""
        position = self.num_stages - 1 - stage
        below = switch % self.radix**position
        above = switch // self.radix**position
        return above * self.radix ** (position + 1) + port * self.radix**position + below

    # -- endpoints -------------------------------------------------------

    def delivery_queue(self, port: int) -> BoundedWordQueue:
        """The exit queue of ``port``, for pull-based endpoints.

        Together with :meth:`attach_sink` this is the network's entire
        endpoint surface -- partition boundary channels duck-type exactly
        these two methods to stand in for a network across the cut.
        """
        if not 0 <= port < self.num_lines:
            raise ConfigurationError(f"port {port} out of range")
        return self._delivery_queues[port]

    def attach_sink(self, port: int, handler: DeliveryHandler) -> None:
        """Drain ``port`` greedily, handing each packet to ``handler``.

        Endpoint delivery is free at this granularity (the port-interface
        costs sit at the injection side and the memory-module handoff),
        which yields the paper's 8-cycle minimum first-word latency.
        """
        queue = self.delivery_queue(port)
        if port in self._sinks:
            raise ConfigurationError(f"port {port} already has a sink")
        self._sinks[port] = handler

        counters = self._trace_counters
        engine = self.engine
        slot_delivered = -1  # lazily interned on the first delivery

        def drain() -> None:
            nonlocal slot_delivered
            while queue._packets:
                packet = queue.pop()
                if counters is not None:
                    if slot_delivered < 0:
                        slot_delivered = counters.slot("packets_delivered")
                    counters.values[slot_delivered] += 1
                # Delivery stays deferred: handlers may re-enter the network.
                # partial() dispatches without an intermediate lambda frame.
                engine.schedule_after(0, partial(handler, packet))

        queue.add_item_listener(drain)

    def entry_queue(self, port: int) -> BoundedWordQueue:
        """The first-stage input queue fed by source ``port``."""
        return self._entry_queues[port]

    def try_inject(self, port: int, packet: Packet) -> bool:
        """Offer a packet at a source port; False when the entry queue is full."""
        queue = self._entry_queues[port]
        counters = self._trace_counters
        if not queue.can_accept(packet):
            if counters is not None:
                slot = self._slot_rejected
                if slot < 0:
                    slot = self._slot_rejected = counters.slot(
                        "injection_rejections"
                    )
                counters.values[slot] += 1
            return False
        if self._sanitizer is not None:
            self._sanitizer.network_injected(self, packet)
        queue.push(packet)
        if counters is not None:
            slot = self._slot_packets
            if slot < 0:
                slot = self._slot_packets = counters.slot("packets_injected")
                self._slot_words = counters.slot("words_injected")
            values = counters.values
            values[slot] += 1
            values[self._slot_words] += packet.words
            # Sample the buffered-word gauge sparsely: a full occupancy scan
            # per injection would dominate the traced run.
            self._injections += 1
            if self._injections % 64 == 1:
                self.trace.sample(
                    self.name, "occupancy_words",
                    self.occupancy_words(), self.engine.now,
                )
        return True

    def on_entry_space(self, port: int, waiter: Callable[[], None]) -> None:
        """One-shot callback when the entry queue at ``port`` frees space."""
        self.entry_queue(port).wait_for_space(waiter)

    @property
    def routing_tag_bits(self) -> int:
        """Bits of destination tag the network consumes end to end.

        Each stage rewrites one base-``radix`` digit, so the tag is
        ``num_stages * log2(radix)`` bits -- the quantity the machine
        builder bounds against the packet header's tag-field budget.
        """
        return self.num_stages * (self.radix - 1).bit_length()

    def occupancy_words(self) -> int:
        """Total words buffered inside the network (for tests/ablation)."""
        total = sum(s.occupancy_words() for row in self.stages for s in row)
        total += sum(q.used_words for q in self._delivery_queues)
        return total
