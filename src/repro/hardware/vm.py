"""Xylem virtual memory: 4KB pages, per-cluster TLBs, PTEs in global memory.

Section 4.2's TRFD study found that the improved multicluster version "was
shown to have almost four times the number of page faults relative to the
one-cluster version and was spending close to 50% of the time in virtual
memory activity.  The extra faults are TLB miss faults as each additional
cluster of a multicluster version first accesses pages for which a valid PTE
exists in global memory."  This module reproduces that mechanism: every
cluster has its own TLB, so a page first touched by cluster A still TLB-miss
faults on clusters B, C, D even though its PTE is valid.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Set

from repro.config import VirtualMemoryConfig, WORD_BYTES


@dataclass
class VMStatistics:
    """Per-cluster translation outcome counts and their cycle cost."""

    tlb_hits: int = 0
    tlb_miss_faults: int = 0  # PTE valid in global memory, TLB refill only
    page_faults: int = 0  # page not yet materialized anywhere

    def cost_cycles(self, config: VirtualMemoryConfig) -> int:
        return (
            self.tlb_miss_faults * config.tlb_miss_cycles
            + self.page_faults * config.page_fault_cycles
        )


class TranslationBuffer:
    """An LRU TLB with a fixed number of entries."""

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise ValueError(f"TLB needs >= 1 entry, got {entries}")
        self.entries = entries
        self._pages: "OrderedDict[int, None]" = OrderedDict()

    def lookup(self, page: int) -> bool:
        if page in self._pages:
            self._pages.move_to_end(page)
            return True
        return False

    def insert(self, page: int) -> None:
        self._pages[page] = None
        self._pages.move_to_end(page)
        if len(self._pages) > self.entries:
            self._pages.popitem(last=False)

    def __len__(self) -> int:
        return len(self._pages)


class VirtualMemory:
    """System-wide VM state: one TLB per cluster, one PTE set in global memory."""

    def __init__(self, config: VirtualMemoryConfig, num_clusters: int) -> None:
        self.config = config
        self.num_clusters = num_clusters
        self._tlbs: List[TranslationBuffer] = [
            TranslationBuffer(config.tlb_entries) for _ in range(num_clusters)
        ]
        self._valid_ptes: Set[int] = set()
        self.stats: List[VMStatistics] = [VMStatistics() for _ in range(num_clusters)]

    @property
    def page_words(self) -> int:
        return self.config.page_bytes // WORD_BYTES

    def page_of(self, word_address: int) -> int:
        return word_address // self.page_words

    def translate(self, cluster: int, word_address: int) -> int:
        """Translate one access; returns the cycle cost of translation.

        0 on a TLB hit; ``tlb_miss_cycles`` when the PTE is valid in global
        memory (the TRFD multicluster case); ``page_fault_cycles`` when the
        page has never been touched (Xylem must build the mapping).
        """
        if not 0 <= cluster < self.num_clusters:
            raise ValueError(f"cluster {cluster} out of range")
        page = self.page_of(word_address)
        stats = self.stats[cluster]
        tlb = self._tlbs[cluster]
        if tlb.lookup(page):
            stats.tlb_hits += 1
            return 0
        tlb.insert(page)
        if page in self._valid_ptes:
            stats.tlb_miss_faults += 1
            return self.config.tlb_miss_cycles
        self._valid_ptes.add(page)
        stats.page_faults += 1
        return self.config.page_fault_cycles

    def touch_range(self, cluster: int, start_word: int, num_words: int) -> int:
        """Translate a contiguous range; returns total translation cycles."""
        if num_words <= 0:
            return 0
        first = self.page_of(start_word)
        last = self.page_of(start_word + num_words - 1)
        return sum(
            self.translate(cluster, page * self.page_words)
            for page in range(first, last + 1)
        )

    def total_faults(self) -> Dict[str, int]:
        """Aggregate fault counts across clusters."""
        return {
            "tlb_miss_faults": sum(s.tlb_miss_faults for s in self.stats),
            "page_faults": sum(s.page_faults for s in self.stats),
            "tlb_hits": sum(s.tlb_hits for s in self.stats),
        }
