"""One Alliant FX/8 cluster: eight CEs, shared cache, cluster memory, CCB."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.config import CedarConfig
from repro.hardware.cache import ClusterCache
from repro.hardware.ccb import BodyFactory, ConcurrencyControlBus
from repro.hardware.ce import ComputationalElement, KernelFactory
from repro.hardware.engine import Engine
from repro.hardware.memory import module_for_address
from repro.hardware.network import OmegaNetwork


class Cluster:
    """A slightly modified Alliant FX/8, as integrated into Cedar.

    ``reverse`` is passed straight through to each CE's
    :class:`~repro.hardware.ce.NetworkPort` and may be a boundary-channel
    fabric rather than the reverse network in partitioned machines.
    """

    def __init__(
        self,
        engine: Engine,
        config: CedarConfig,
        index: int,
        forward: OmegaNetwork,
        reverse: OmegaNetwork,
        monitor=None,
        tracer=None,
    ) -> None:
        self.engine = engine
        self.config = config
        self.index = index
        self.cache = ClusterCache(
            engine, config.cache, config.cluster_memory, name=f"cl{index}.cache",
            tracer=tracer,
        )
        # Address steering shares memory.module_for_address so the CE-side
        # port choice and the module-side ownership can never disagree,
        # whatever interleave a builder spec declares.
        num_modules = config.global_memory.num_modules
        interleave_words = config.global_memory.interleave_words
        self.ces: List[ComputationalElement] = [
            ComputationalElement(
                engine=engine,
                config=config,
                global_port=index * config.ces_per_cluster + ce,
                forward=forward,
                reverse=reverse,
                cache=self.cache,
                memory_port_of=lambda a: module_for_address(
                    a, num_modules, interleave_words
                ),
                monitor=monitor,
                cluster_index=index,
                index_in_cluster=ce,
                tracer=tracer,
            )
            for ce in range(config.ces_per_cluster)
        ]
        self.ccb = ConcurrencyControlBus(
            config.ccb, self.ces, tracer=tracer, name=f"ccb.cl{index}"
        )

    def cdoall(
        self,
        num_iterations: int,
        body: BodyFactory,
        on_done: Optional[Callable[[], None]] = None,
        static: bool = False,
    ) -> None:
        """Run a CDOALL over this cluster via the concurrency control bus."""
        self.ccb.concurrent_start(num_iterations, body, on_done=on_done, static=static)

    def run_on_all(self, kernel: KernelFactory, on_done=None) -> None:
        """Run the same kernel coroutine on every CE of the cluster."""
        remaining = {"count": len(self.ces)}

        def one_done() -> None:
            remaining["count"] -= 1
            if remaining["count"] == 0 and on_done is not None:
                on_done()

        for ce in self.ces:
            ce.run(kernel, on_done=one_done)

    @property
    def total_flops(self) -> float:
        return sum(ce.flops for ce in self.ces)
