"""Bounded word-queues and blocking links, the plumbing of the Cedar networks.

"A two word queue is used on each crossbar input and output port and flow
control between stages prevents queue overflow" (Section 2).  Queues are
measured in 64-bit words, so a four-word packet occupies four queue slots,
and a link forwards one word per cycle.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.errors import SimulationError
from repro.hardware import sanitize
from repro.hardware.engine import Engine
from repro.hardware.packet import Packet

Notification = Callable[[], None]


class BoundedWordQueue:
    """FIFO of packets with a capacity measured in words.

    Components interested in new arrivals register *item listeners*;
    components blocked on a full queue register one-shot *space waiters*
    that fire (in order) whenever words are freed.
    """

    def __init__(self, capacity_words: int, name: str = "") -> None:
        if capacity_words < 1:
            raise ValueError(f"queue capacity must be >= 1 word, got {capacity_words}")
        self.capacity_words = capacity_words
        self.name = name
        self._packets: Deque[Packet] = deque()
        self._used_words = 0
        # A tuple snapshot: push() iterates it directly (no per-push copy);
        # add_item_listener rebuilds it, so a listener registered during a
        # push is first called on the next push -- the same semantics the
        # old copy-then-iterate list gave.
        self._item_listeners: Tuple[Notification, ...] = ()
        self._head_listener: Optional[Notification] = None
        self._space_waiters: Deque[Notification] = deque()
        #: Armed invariant checker or None; one is-not-None test per
        #: push/pop keeps the unsanitized path pay-for-use.
        self._sanitizer = sanitize.current()

    def __len__(self) -> int:
        return len(self._packets)

    @property
    def used_words(self) -> int:
        return self._used_words

    @property
    def free_words(self) -> int:
        return self.capacity_words - self._used_words

    def head(self) -> Optional[Packet]:
        """The packet at the front, or None when empty."""
        return self._packets[0] if self._packets else None

    def can_accept(self, packet: Packet) -> bool:
        return packet.words <= self.free_words

    def push(self, packet: Packet) -> None:
        """Enqueue; the caller must have checked :meth:`can_accept`."""
        words = packet.words
        if words > self.capacity_words - self._used_words:
            raise SimulationError(
                f"queue {self.name or '<anonymous>'} overflow: "
                f"{words} words into {self.free_words} free"
            )
        packets = self._packets
        packets.append(packet)
        self._used_words += words
        if self._sanitizer is not None:
            # Checked before listeners fire, so the sanitizer sees the
            # settled queue state rather than cascading reactions to it.
            self._sanitizer.queue_pushed(self, packet)
        if len(packets) == 1 and self._head_listener is not None:
            self._head_listener()
        for listener in self._item_listeners:
            listener()

    def pop(self) -> Packet:
        """Dequeue the head packet and wake one blocked upstream writer."""
        packets = self._packets
        if not packets:
            raise SimulationError(
                f"pop from empty queue {self.name or '<anonymous>'}"
            )
        packet = packets.popleft()
        self._used_words -= packet.words
        if self._sanitizer is not None:
            self._sanitizer.queue_popped(self, packet)
        if self._head_listener is not None:
            self._head_listener()
        if self._space_waiters:
            self._space_waiters.popleft()()
        return packet

    def add_item_listener(self, listener: Notification) -> None:
        """Call ``listener`` after every push (permanent subscription)."""
        self._item_listeners += (listener,)

    def set_head_listener(self, listener: Optional[Notification]) -> None:
        """Call ``listener`` whenever the head packet changes.

        Fires on a push into an empty queue and on every pop (the head
        becomes the next packet, or None), *before* item listeners and
        space waiters run -- so derived head state (the crossbar's
        head-route masks) is consistent by the time anyone reacts.  One
        listener per queue: only the queue's owning component may observe
        head changes.
        """
        if listener is not None and self._head_listener is not None:
            raise SimulationError(
                f"queue {self.name or '<anonymous>'} already has a head listener"
            )
        self._head_listener = listener

    def wait_for_space(self, waiter: Notification) -> None:
        """Call ``waiter`` once, the next time words are freed."""
        self._space_waiters.append(waiter)


class Link:
    """A one-word-per-cycle conduit from one queue into another.

    Models a crossbar output port driving the wire to the next stage: it
    pulls the head packet of ``source``, is busy for ``packet.words`` cycles
    (times ``cycle_per_word``), then delivers into ``sink`` -- blocking, and
    retrying on the sink's space notification, when the sink is full.
    """

    def __init__(
        self,
        engine: Engine,
        source: BoundedWordQueue,
        sink: BoundedWordQueue,
        cycles_per_word: int = 1,
        name: str = "",
    ) -> None:
        self.engine = engine
        self.source = source
        self.sink = sink
        self.cycles_per_word = cycles_per_word
        self.name = name
        self._busy = False
        self._in_flight: Optional[Packet] = None
        source.add_item_listener(self._wake)

    def _wake(self) -> None:
        if not self._busy and self.source.head() is not None:
            self._start(self.source.pop())

    def _start(self, packet: Packet) -> None:
        self._busy = True
        self._in_flight = packet
        self.engine.schedule(packet.words * self.cycles_per_word, self._finish)

    def _finish(self) -> None:
        packet = self._in_flight
        assert packet is not None
        if self.sink.can_accept(packet):
            self._deliver(packet)
        else:
            self.sink.wait_for_space(lambda: self._retry())

    def _retry(self) -> None:
        packet = self._in_flight
        assert packet is not None
        if self.sink.can_accept(packet):
            self._deliver(packet)
        else:  # another writer won the freed space; keep waiting
            self.sink.wait_for_space(lambda: self._retry())

    def _deliver(self, packet: Packet) -> None:
        self.sink.push(packet)
        self._in_flight = None
        self._busy = False
        if self.source.head() is not None:
            self._start(self.source.pop())
