"""The computational element (CE) and its network port.

A CE in this simulator runs a *kernel coroutine*: a Python generator that
yields micro-operations (compute for N cycles, arm/fire a prefetch, consume
a prefetch stream through the vector unit, issue direct global loads or
stores, run a vector instruction against the cluster cache, execute a
synchronization instruction) and is resumed with each operation's result.
This is the instruction-level interface the Section 4.1 kernels are written
against; the paper's timing constraints -- two outstanding global requests
without prefetch, non-stalling writes, one input stream per vector
instruction -- are enforced here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional

from repro.config import CedarConfig
from repro.errors import SimulationError
from repro.hardware import sanitize
from repro.hardware.engine import Engine
from repro.hardware.network import OmegaNetwork
from repro.hardware.packet import Packet, PacketKind
from repro.hardware.prefetch import PrefetchHandle, PrefetchUnit
from repro.hardware.sync_processor import OperateOp, TestOp
from repro.hardware.vector_unit import VectorUnit


# ---------------------------------------------------------------------------
# Micro-operations a kernel coroutine may yield
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Compute:
    """Keep the CE busy for ``cycles`` (scalar work, register-register ops)."""

    cycles: int
    flops: float = 0.0


@dataclass(frozen=True)
class ArmFirePrefetch:
    """Arm the PFU with (length, stride) and fire at ``start_address``.

    Resumes immediately with the :class:`PrefetchHandle`; the fetch proceeds
    autonomously and can be overlapped with computation (the paper's
    "completely autonomous" mode).
    """

    length: int
    stride: int
    start_address: int


@dataclass(frozen=True)
class ConsumePrefetch:
    """Vector instruction streaming the prefetch buffer in request order.

    The full/empty bits let the CE consume each word as it arrives, at most
    one per cycle; ``flops_per_element`` chained operations are credited per
    word (the rank-64 kernels chain two).
    """

    handle: PrefetchHandle
    flops_per_element: float = 2.0


@dataclass(frozen=True)
class GlobalLoads:
    """Direct (non-prefetched) global loads, the GM/no-pref access mode.

    The CE allows only ``max_outstanding`` concurrent misses (two, from the
    lockup-free cache design), which is exactly why this mode is latency
    bound.
    """

    start_address: int
    length: int
    stride: int = 1
    max_outstanding: int = 2
    flops_per_element: float = 2.0


@dataclass(frozen=True)
class GlobalStores:
    """Global stores issued one per cycle; writes never stall the CE beyond
    forward-network back-pressure."""

    start_address: int
    length: int
    stride: int = 1


@dataclass(frozen=True)
class VectorCacheOp:
    """Vector instruction whose memory operand streams the cluster cache."""

    length: int
    flops_per_element: float = 1.0
    resident: bool = True
    write: bool = False


@dataclass(frozen=True)
class SyncInstruction:
    """Memory-mapped Cedar synchronization instruction (Test-And-Operate)."""

    address: int
    test: TestOp = TestOp.ALWAYS
    key: int = 0
    op: OperateOp = OperateOp.READ
    operand: int = 0
    test_and_set: bool = False


@dataclass(frozen=True)
class PostEvent:
    """Post a software event to the performance-monitoring hardware."""

    signal: str
    value: int = 0


@dataclass(frozen=True)
class AwaitPrefetch:
    """Block until a previously fired prefetch has completely returned."""

    handle: PrefetchHandle


KernelCoroutine = Generator[object, object, None]
KernelFactory = Callable[["ComputationalElement"], KernelCoroutine]


# ---------------------------------------------------------------------------
# Network port: tag allocation and reply dispatch for one CE
# ---------------------------------------------------------------------------


class NetworkPort:
    """One CE's interface to the forward/reverse global networks.

    ``reverse`` is a delivery seam: only ``reverse.attach_sink(port,
    handler)`` is called, so partitioned machines substitute a
    :class:`~repro.partition.boundary.BoundaryChannel` that hands replies
    across the partition cut (see DESIGN.md §10).
    """

    def __init__(
        self,
        engine: Engine,
        port: int,
        forward: OmegaNetwork,
        reverse: OmegaNetwork,
    ) -> None:
        self.engine = engine
        self.port = port
        self.forward = forward
        self.reverse = reverse
        self._next_tag = 0
        self._callbacks: Dict[int, Callable[[Packet], None]] = {}
        reverse.attach_sink(port, self._deliver)

    def new_tag(self, callback: Callable[[Packet], None]) -> int:
        tag = self._next_tag
        self._next_tag += 1
        self._callbacks[tag] = callback
        return tag

    def send(self, packet: Packet) -> bool:
        return self.forward.try_inject(self.port, packet)

    def on_space(self, waiter: Callable[[], None]) -> None:
        self.forward.on_entry_space(self.port, waiter)

    def _deliver(self, packet: Packet) -> None:
        tag = packet.request_tag
        callback = self._callbacks.pop(tag, None)
        if callback is None:
            raise SimulationError(f"reply with unknown tag {tag} at port {self.port}")
        callback(packet)


# ---------------------------------------------------------------------------
# The CE proper
# ---------------------------------------------------------------------------


class ComputationalElement:
    """One Alliant CE: scalar/vector engine plus PFU and network port."""

    def __init__(
        self,
        engine: Engine,
        config: CedarConfig,
        global_port: int,
        forward: OmegaNetwork,
        reverse: OmegaNetwork,
        cache,
        memory_port_of: Callable[[int], int],
        monitor=None,
        cluster_index: int = 0,
        index_in_cluster: int = 0,
        tracer=None,
    ) -> None:
        self.engine = engine
        self.config = config
        self.global_port = global_port
        self.cluster_index = cluster_index
        self.index_in_cluster = index_in_cluster
        self.cache = cache
        self.monitor = monitor
        self.tracer = tracer
        self.trace = tracer.if_enabled() if tracer is not None else None
        self.vector_unit = VectorUnit(config.vector)
        self.port = NetworkPort(engine, global_port, forward, reverse)
        self.pfu = PrefetchUnit(
            engine=engine,
            config=config.prefetch,
            send=self.port.send,
            on_send_space=self.port.on_space,
            new_tag=self.port.new_tag,
            port=global_port,
            memory_port_of=memory_port_of,
            tracer=tracer,
        )
        self._sanitizer = sanitize.current()
        self.flops = 0.0
        self.busy_until = 0
        self.finished_at: Optional[int] = None
        self._coroutine: Optional[KernelCoroutine] = None
        self._done_callbacks: List[Callable[[], None]] = []

    # -- lifecycle ---------------------------------------------------------

    def run(self, kernel: KernelFactory, on_done: Optional[Callable[[], None]] = None) -> None:
        """Start executing a kernel coroutine on this CE."""
        if self._coroutine is not None and self.finished_at is None:
            raise SimulationError(f"CE {self.global_port} is already running a kernel")
        self._coroutine = kernel(self)
        self.finished_at = None
        if on_done is not None:
            self._done_callbacks.append(on_done)
        self.engine.schedule(0, lambda: self._advance(None))

    @property
    def idle(self) -> bool:
        return self._coroutine is None or self.finished_at is not None

    def _advance(self, value: object) -> None:
        assert self._coroutine is not None
        try:
            operation = self._coroutine.send(value)
        except StopIteration:
            self.finished_at = self.engine.now
            callbacks, self._done_callbacks = self._done_callbacks, []
            for callback in callbacks:
                callback()
            return
        self._dispatch(operation)

    # -- dispatch ------------------------------------------------------------

    def _dispatch(self, operation: object) -> None:
        if isinstance(operation, Compute):
            self._do_compute(operation)
        elif isinstance(operation, ArmFirePrefetch):
            self._do_arm_fire(operation)
        elif isinstance(operation, ConsumePrefetch):
            self._do_consume(operation)
        elif isinstance(operation, AwaitPrefetch):
            self._do_await(operation)
        elif isinstance(operation, GlobalLoads):
            self._do_loads(operation)
        elif isinstance(operation, GlobalStores):
            self._do_stores(operation)
        elif isinstance(operation, VectorCacheOp):
            self._do_vector_cache(operation)
        elif isinstance(operation, SyncInstruction):
            self._do_sync(operation)
        elif isinstance(operation, PostEvent):
            self._do_post(operation)
        else:
            raise SimulationError(f"CE cannot execute {operation!r}")

    def _do_compute(self, op: Compute) -> None:
        if op.cycles < 0:
            raise SimulationError(f"negative compute time {op.cycles}")
        self.flops += op.flops
        self.engine.schedule(op.cycles, lambda: self._advance(None))

    def _do_arm_fire(self, op: ArmFirePrefetch) -> None:
        self.pfu.arm(op.length, op.stride)
        handle = self.pfu.fire(op.start_address)
        # Arming and firing cost one instruction issue.
        self.engine.schedule(1, lambda: self._advance(handle))

    def _do_consume(self, op: ConsumePrefetch) -> None:
        handle = op.handle
        startup = self.config.vector.startup_cycles
        state = {"index": 0, "ready_at": self.engine.now + startup}

        def step() -> None:
            index = state["index"]
            if index >= handle.length:
                self.flops += op.flops_per_element * handle.length
                delay = max(0, state["ready_at"] - self.engine.now)
                self.engine.schedule(delay, lambda: self._advance(self.engine.now))
                return
            if handle.is_available(index):
                if self._sanitizer is not None:
                    # Read-side full/empty protocol: consuming a word
                    # requires its full bit to be set.
                    self._sanitizer.check_fullempty_read(
                        f"ce{self.global_port:02d}", handle, index
                    )
                # One element per cycle once the datum is in the buffer.
                state["index"] = index + 1
                state["ready_at"] = max(state["ready_at"], self.engine.now) + 1
                self.engine.schedule(0, step)
            else:
                handle.wait_for_word(index, step)

        self.engine.schedule(startup, step)

    def _do_await(self, op: AwaitPrefetch) -> None:
        handle = op.handle

        def check(index: int = handle.length - 1) -> None:
            if handle.complete:
                self._advance(self.engine.now)
            else:
                first_missing = next(
                    i for i in range(handle.length) if not handle.is_available(i)
                )
                handle.wait_for_word(first_missing, check)

        check()

    def _do_loads(self, op: GlobalLoads) -> None:
        startup = self.config.vector.startup_cycles
        state = {"issued": 0, "arrived": 0, "outstanding": 0}

        def issue() -> None:
            while (
                state["issued"] < op.length
                and state["outstanding"] < op.max_outstanding
            ):
                index = state["issued"]
                address = op.start_address + index * op.stride
                tag = self.port.new_tag(on_reply)
                packet = Packet(
                    kind=PacketKind.READ_REQUEST,
                    source=self.global_port,
                    destination=self._memory_port_of(address),
                    address=address,
                    words=1,
                    issue_cycle=self.engine.now,
                    request_tag=tag,
                )
                if not self.port.send(packet):
                    self.port._callbacks.pop(tag)
                    self.port.on_space(issue)
                    return
                state["issued"] += 1
                state["outstanding"] += 1

        def on_reply(packet: Packet) -> None:
            # Moving the datum from the interface into a register costs the
            # CE-side portion of the 13-cycle latency and holds the request
            # slot: without a prefetch buffer the CE is throughput-bound at
            # max_outstanding words per 13 cycles (the GM/no-pref regime).
            self.engine.schedule(
                self.config.global_memory.ce_buffer_cycles, lambda: landed()
            )

        def landed() -> None:
            state["arrived"] += 1
            state["outstanding"] -= 1
            if state["arrived"] == op.length:
                self.flops += op.flops_per_element * op.length
                self._advance(self.engine.now)
            else:
                issue()

        self.engine.schedule(startup, issue)

    def _memory_port_of(self, address: int) -> int:
        return address % self.config.global_memory.num_modules

    def _do_stores(self, op: GlobalStores) -> None:
        state = {"issued": 0}

        def issue() -> None:
            while state["issued"] < op.length:
                index = state["issued"]
                address = op.start_address + index * op.stride
                packet = Packet(
                    kind=PacketKind.WRITE_REQUEST,
                    source=self.global_port,
                    destination=self._memory_port_of(address),
                    address=address,
                    words=2,  # header + datum
                    issue_cycle=self.engine.now,
                )
                if not self.port.send(packet):
                    self.port.on_space(issue)
                    return
                state["issued"] += 1
            self.engine.schedule(1, lambda: self._advance(self.engine.now))

        issue()

    def _do_vector_cache(self, op: VectorCacheOp) -> None:
        if op.length < 1:
            raise SimulationError("vector cache op needs length >= 1")
        startup = self.config.vector.startup_cycles
        finish = self.cache.stream(op.length, resident=op.resident)
        # The instruction retires when both the pipeline (startup + one
        # element/cycle) and the cache stream are done.
        pipeline_done = self.engine.now + startup + op.length
        done = max(finish, pipeline_done)
        self.flops += op.flops_per_element * op.length
        self.engine.schedule(done - self.engine.now, lambda: self._advance(self.engine.now))

    def _do_sync(self, op: SyncInstruction) -> None:
        tag = self.port.new_tag(lambda packet: self._advance(packet.payload))
        payload = {
            "test_and_set": op.test_and_set,
            "test": op.test,
            "key": op.key,
            "op": op.op,
            "operand": op.operand,
        }
        packet = Packet(
            kind=PacketKind.SYNC_REQUEST,
            source=self.global_port,
            destination=self._memory_port_of(op.address),
            address=op.address,
            words=2,
            issue_cycle=self.engine.now,
            request_tag=tag,
            payload=payload,
        )

        def send() -> None:
            if not self.port.send(packet):
                self.port.on_space(send)

        send()

    def _do_post(self, op: PostEvent) -> None:
        # Software events travel the trace bus when one is cabled up (the
        # monitor's software tracer subscribes to them there); a monitor
        # without a bus is fed directly, as before.
        if self.tracer is not None:
            self.tracer.publish(
                "software.event", (self.engine.now, op.signal, op.value)
            )
            if self.trace is not None:
                self.trace.instant(
                    f"ce{self.global_port:02d}", op.signal,
                    cycle=self.engine.now, value=op.value,
                )
        elif self.monitor is not None:
            self.monitor.tracer("software").post(self.engine.now, op.signal, op.value)
        self.engine.schedule(0, lambda: self._advance(None))
