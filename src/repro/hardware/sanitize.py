"""Opt-in runtime invariant checking for the simulated Cedar hardware.

The fast-path rewrites (batched dispatch, head-route masks, idle
fast-forward) give the simulator two code paths whose equivalence the
determinism suite pins on a handful of kernels.  This module makes the
underlying *hardware invariants* machine-checked on any workload: with the
sanitizer armed, the hot components call into a :class:`Sanitizer` at every
state transition and a violation raises a structured
:class:`~repro.errors.SanitizerError` carrying the component, the cycle and
the trace-bus span context.

Checked invariant classes (see DESIGN.md for the paper justification):

* ``network.conservation`` -- every packet injected into a shuffle-exchange
  network is delivered exactly once or still physically queued; none are
  duplicated or dropped (Section 2, packet-switched flow control).
* ``network.routing`` -- a packet leaves the network on the line its
  destination tag names (the [Lawr75] destination-tag scheme).
* ``queue.capacity`` -- a :class:`BoundedWordQueue` never holds more words
  than its capacity, and its word count equals the sum of its packets.
* ``flow_control.credit`` -- per queue, words pushed minus words popped
  equals words buffered (credits are conserved; Section 2, "flow control
  between stages prevents queue overflow").
* ``queue.head`` -- the crossbar's derived head-route masks agree with the
  actual queue heads (the fast-path bookkeeping is consistent).
* ``crossbar.arbiter`` -- every grant matches a shadow reference arbiter
  (unmasked round-robin first-fit), masked wake skips are provably no-ops,
  the round-robin pointer always advances past the last grant, and port
  conflicts are only counted against a genuinely full sink.
* ``engine.monotonic`` -- the dispatch clock never runs backwards.
* ``engine.schedule`` -- the validation-free scheduling entry points
  (``schedule_after``, recurring re-arm) still receive integral
  non-negative delays from inside a dispatching callback (the idle
  fast-forward off-queue contract).
* ``memory.balance`` -- per module, requests pulled from the forward
  network equal replies injected plus writes absorbed plus at most one
  in-service and one pending-reply request.
* ``fullempty.prefetch`` -- the prefetch buffer's full/empty protocol:
  no word arrives twice (write-while-full) and no word is consumed before
  it arrived (read-while-empty).
* ``sync.shadow`` -- every Test-And-Operate outcome matches an independent
  shadow model of the synchronization words (indivisibility; [ZhYe87]).
* ``cache.balance`` -- the cache directory never exceeds its line count
  and bandwidth-server bookings never move backwards.
* ``ccb.iterations`` -- self-scheduled loop iterations are claimed exactly
  once each, and the join fires only when the whole trip count ran.
* ``boundary.conservation`` -- packets crossing a partition boundary link
  (:mod:`repro.partition.boundary`) are conserved across the cut and
  delivered in strictly increasing ``(epoch, seq)`` order; every delivery
  matches a recorded send (when the sender half is local) and the
  end-of-run in-flight balance closes for non-remote links.

Enabling mirrors :mod:`repro.hardware.fastpath`: ``CEDAR_SANITIZE=1`` in
the environment arms a process-global sanitizer, and :func:`sanitizing`
installs a fresh one for a block (what ``cedar-repro run --sanitize``
does per experiment).  Components snapshot :func:`current` at construction
-- with the sanitizer off every hook site is a single ``is not None`` test
on a prebound attribute, so the unsanitized hot paths stay pay-for-use.

The sanitizer only observes: every check is a pure read of component
state, so a sanitized run produces byte-identical results to an
unsanitized one (the determinism fuzz tests assert this while the
sanitizer is armed).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from repro.errors import SanitizerError
from repro.trace import current_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.hardware.engine import Engine
    from repro.hardware.network import OmegaNetwork
    from repro.hardware.packet import Packet
    from repro.hardware.queueing import BoundedWordQueue


def _from_env() -> bool:
    # The sanctioned snapshot-once pattern: read at import into a module
    # switch; components then snapshot sanitize.current() at construction.
    return os.environ.get(  # cedar: noqa[det.env-read]
        "CEDAR_SANITIZE", "0"
    ).strip().lower() in (
        "1", "on", "true", "yes",
    )


_enabled = _from_env()
_ACTIVE: List["Sanitizer"] = []
_GLOBAL: Optional["Sanitizer"] = None


def enabled() -> bool:
    """Whether ``CEDAR_SANITIZE`` armed the process-global sanitizer."""
    return _enabled


def set_enabled(flag: bool) -> bool:
    """Set the env-level flag (for tests); returns the previous value."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


def current() -> Optional["Sanitizer"]:
    """The sanitizer newly built components should report to, or None.

    The innermost :func:`sanitizing` block wins; otherwise the
    ``CEDAR_SANITIZE`` process-global sanitizer when the env flag is set.
    """
    if _ACTIVE:
        return _ACTIVE[-1]
    if _enabled:
        global _GLOBAL
        if _GLOBAL is None:
            _GLOBAL = Sanitizer()
        return _GLOBAL
    return None


@contextmanager
def sanitizing(sanitizer: Optional["Sanitizer"] = None) -> Iterator["Sanitizer"]:
    """Install ``sanitizer`` (or a fresh one) as the ambient sanitizer.

    Every hardware component constructed inside the block wires its
    assertion hooks to it.  :meth:`Sanitizer.finalize` is *not* called on
    exit -- callers run it explicitly after a successful run so that a
    failing simulation does not cascade into end-of-run balance errors.
    """
    sanitizer = sanitizer if sanitizer is not None else Sanitizer()
    _ACTIVE.append(sanitizer)
    try:
        yield sanitizer
    finally:
        _ACTIVE.pop()


# ---------------------------------------------------------------------------
# Shadow reference model of the synchronization processor.  Intentionally an
# independent implementation (keyed by the enum *values*, with its own
# masking arithmetic) so a bug in sync_processor.py cannot hide in its own
# shadow.
# ---------------------------------------------------------------------------

_MASK32 = 0xFFFFFFFF

_SHADOW_TESTS = {
    "always": lambda value, key: True,
    "==": lambda value, key: value == key,
    "!=": lambda value, key: value != key,
    "<": lambda value, key: value < key,
    "<=": lambda value, key: value <= key,
    ">": lambda value, key: value > key,
    ">=": lambda value, key: value >= key,
}

_SHADOW_OPS = {
    "read": lambda old, operand: old,
    "write": lambda old, operand: operand,
    "add": lambda old, operand: (old + operand) & _MASK32,
    "subtract": lambda old, operand: (old - operand) & _MASK32,
    "and": lambda old, operand: old & operand,
    "or": lambda old, operand: old | operand,
    "xor": lambda old, operand: old ^ operand,
}


class Sanitizer:
    """Runtime invariant checker the hardware components report into.

    One sanitizer observes one logical run (possibly several machines, as
    in the multi-kernel Table 2 driver).  Checks raise on violation;
    :meth:`summary` reports how many checks of each invariant class ran,
    which ``cedar-repro run --sanitize`` emits next to the results.
    """

    def __init__(self) -> None:
        #: Checks performed per invariant class (the summary's backbone).
        self.checks: Dict[str, int] = {}
        #: Violations raised (a raise aborts the run, so this is 0 or 1
        #: unless a caller swallows the error and keeps simulating).
        self.violations = 0
        self._clock = None  # Callable[[], int] from the last machine engine
        self._networks: List["OmegaNetwork"] = []
        self._net_inflight: Dict[int, Dict[int, "Packet"]] = {}
        self._delivery_ports: Dict[int, Tuple["OmegaNetwork", int]] = {}
        self._queue_credit: Dict[int, List[int]] = {}  # [pushed, popped]
        self._arbiter_prev_grant: Dict[int, int] = {}
        self._memory_modules: List[object] = []
        self._memory_ledger: Dict[int, List[int]] = {}  # [req, reply, write]
        self._sync_shadow: Dict[int, Dict[int, int]] = {}
        self._cdoalls: Dict[int, Dict[str, object]] = {}
        # Per boundary link: sent (epoch, seq) -> words, whether any send
        # was recorded locally, and the last delivered (epoch, seq).
        self._boundary_links: List[object] = []
        self._boundary_ledger: Dict[int, Dict[str, object]] = {}

    # -- plumbing ----------------------------------------------------------

    def _count(self, invariant: str) -> None:
        self.checks[invariant] = self.checks.get(invariant, 0) + 1

    def _cycle(self) -> Optional[int]:
        return self._clock() if self._clock is not None else None

    def _violate(self, invariant: str, component: str, message: str, **details) -> None:
        self.violations += 1
        tracer = current_tracer()
        span_context = tracer.open_span_names() if tracer is not None else []
        raise SanitizerError(
            invariant,
            component,
            message,
            cycle=self._cycle(),
            details=details,
            span_context=span_context,
        )

    # -- registration ------------------------------------------------------

    def register_engine(self, engine: "Engine") -> None:
        """Adopt ``engine``'s clock for violation timestamps."""
        self._clock = lambda: engine._now

    def register_network(self, network: "OmegaNetwork") -> None:
        """Track packet conservation for ``network``."""
        self._networks.append(network)
        self._net_inflight[id(network)] = {}
        for line, queue in enumerate(network._delivery_queues):
            self._delivery_ports[id(queue)] = (network, line)

    def register_memory_module(self, module) -> None:
        self._memory_modules.append(module)
        self._memory_ledger[id(module)] = [0, 0, 0]

    def register_boundary_link(self, link) -> None:
        """Track cross-partition conservation for one boundary link."""
        self._boundary_links.append(link)
        self._boundary_ledger[id(link)] = {
            "sent": {},
            "sent_any": False,
            "last": None,
        }

    # -- partition boundary (conservation + deterministic order) -----------

    def boundary_sent(self, link, message) -> None:
        """A packet was staged onto a boundary link."""
        self._count("boundary.conservation")
        ledger = self._boundary_ledger.get(id(link))
        if ledger is None:
            self.register_boundary_link(link)
            ledger = self._boundary_ledger[id(link)]
        ledger["sent_any"] = True
        stamp = (message.epoch, message.seq)
        if stamp in ledger["sent"]:
            self._violate(
                "boundary.conservation", link.name,
                f"duplicate boundary send stamp (epoch={message.epoch}, "
                f"seq={message.seq})",
                epoch=message.epoch, seq=message.seq,
            )
        ledger["sent"][stamp] = message.packet.words

    def boundary_delivered(self, link, message) -> None:
        """A packet crossed the cut; order and conservation must hold."""
        self._count("boundary.conservation")
        ledger = self._boundary_ledger.get(id(link))
        if ledger is None:
            self.register_boundary_link(link)
            ledger = self._boundary_ledger[id(link)]
        stamp = (message.epoch, message.seq)
        last = ledger["last"]
        if last is not None and stamp <= last:
            self._violate(
                "boundary.conservation", link.name,
                f"boundary delivery out of (epoch, seq) order: "
                f"(epoch={message.epoch}, seq={message.seq}) after "
                f"(epoch={last[0]}, seq={last[1]})",
                epoch=message.epoch, seq=message.seq,
                last_epoch=last[0], last_seq=last[1],
            )
        ledger["last"] = stamp
        if ledger["sent_any"]:
            # The sender half is local, so every delivery must consume a
            # recorded send (remote halves only see the ordering check).
            if stamp not in ledger["sent"]:
                self._violate(
                    "boundary.conservation", link.name,
                    f"boundary delivery without a matching send "
                    f"(epoch={message.epoch}, seq={message.seq})",
                    epoch=message.epoch, seq=message.seq,
                )
            del ledger["sent"][stamp]

    # -- queues (capacity + flow-control credits) --------------------------

    def queue_pushed(self, queue: "BoundedWordQueue", packet: "Packet") -> None:
        credit = self._queue_credit.setdefault(id(queue), [0, 0])
        credit[0] += packet.words
        self._check_queue(queue, credit)

    def queue_popped(self, queue: "BoundedWordQueue", packet: "Packet") -> None:
        credit = self._queue_credit.setdefault(id(queue), [0, 0])
        credit[1] += packet.words
        self._check_queue(queue, credit)
        delivery = self._delivery_ports.get(id(queue))
        if delivery is not None:
            self._network_delivered(delivery[0], delivery[1], packet)

    def _check_queue(self, queue: "BoundedWordQueue", credit: List[int]) -> None:
        self._count("queue.capacity")
        name = queue.name or "<anonymous queue>"
        used = queue._used_words
        if not 0 <= used <= queue.capacity_words:
            self._violate(
                "queue.capacity", name,
                f"{used} words buffered in a {queue.capacity_words}-word queue",
                used_words=used, capacity_words=queue.capacity_words,
            )
        actual = sum(p.words for p in queue._packets)
        if actual != used:
            self._violate(
                "queue.capacity", name,
                f"word accounting drifted: counter says {used}, "
                f"packets hold {actual}",
                used_words=used, packet_words=actual,
            )
        self._count("flow_control.credit")
        if credit[0] - credit[1] != used:
            self._violate(
                "flow_control.credit", name,
                f"credits not conserved: {credit[0]} pushed - {credit[1]} "
                f"popped != {used} buffered",
                pushed_words=credit[0], popped_words=credit[1], used_words=used,
            )

    # -- networks (packet conservation + routing) --------------------------

    def network_injected(self, network: "OmegaNetwork", packet: "Packet") -> None:
        inflight = self._net_inflight.get(id(network))
        if inflight is None:  # network built before this sanitizer; adopt it
            self.register_network(network)
            inflight = self._net_inflight[id(network)]
        self._count("network.conservation")
        if packet.packet_id in inflight:
            self._violate(
                "network.conservation", network.name,
                f"packet {packet.packet_id} injected twice",
                packet_id=packet.packet_id, source=packet.source,
                destination=packet.destination,
            )
        inflight[packet.packet_id] = packet

    def _network_delivered(
        self, network: "OmegaNetwork", line: int, packet: "Packet"
    ) -> None:
        inflight = self._net_inflight[id(network)]
        self._count("network.conservation")
        if packet.packet_id not in inflight:
            self._violate(
                "network.conservation", network.name,
                f"packet {packet.packet_id} delivered but never injected "
                f"(duplicated in flight, or pushed past try_inject)",
                packet_id=packet.packet_id, line=line,
            )
        del inflight[packet.packet_id]
        self._count("network.routing")
        if packet.destination != line:
            self._violate(
                "network.routing", network.name,
                f"packet for port {packet.destination} emerged on line {line}",
                packet_id=packet.packet_id, destination=packet.destination,
                line=line,
            )

    # -- crossbars (masks + shadow arbiter) --------------------------------

    def check_crossbar_masks(self, switch) -> None:
        """The head-route masks must mirror the actual queue heads."""
        self._count("queue.head")
        route = switch.route
        counts = [0] * switch.radix
        for index, queue in enumerate(switch.input_queues):
            head = queue.head()
            expected = route(head) if head is not None else None
            if switch._head_route[index] != expected:
                self._violate(
                    "queue.head", switch.name or "crossbar",
                    f"head-route mask of input {index} says "
                    f"{switch._head_route[index]!r}, head routes to {expected!r}",
                    input=index, mask=switch._head_route[index], actual=expected,
                )
            if expected is not None:
                counts[expected] += 1
        if counts != switch._heads_for:
            self._violate(
                "queue.head", switch.name or "crossbar",
                f"per-output head counts {switch._heads_for} != actual {counts}",
                mask=list(switch._heads_for), actual=counts,
            )

    def _reference_scan(self, arbiter) -> Tuple[str, Optional[int]]:
        """Unmasked round-robin first-fit: ('grant'|'conflict'|'none', input)."""
        switch = arbiter.switch
        sink = arbiter._sink
        route = switch.route
        start = arbiter._next_input
        for offset in range(switch.radix):
            index = (start + offset) % switch.radix
            head = switch.input_queues[index].head()
            if head is None or route(head) != arbiter.output_index:
                continue
            if sink.can_accept(head):
                return "grant", index
            return "conflict", index
        return "none", None

    def check_masked_skip(self, arbiter) -> None:
        """A wake skipped by the head mask must be a provable no-op."""
        self._count("crossbar.arbiter")
        outcome, index = self._reference_scan(arbiter)
        if outcome != "none":
            self._violate(
                "crossbar.arbiter", arbiter.switch.name or "crossbar",
                f"masked wake of output {arbiter.output_index} skipped a "
                f"reference {outcome} at input {index}",
                output=arbiter.output_index, reference=outcome, input=index,
            )

    def check_arbiter_grant(self, arbiter, start: int, chosen: int) -> None:
        """A grant must match the shadow reference arbiter and be fair."""
        self._count("crossbar.arbiter")
        name = arbiter.switch.name or "crossbar"
        outcome, expected = self._reference_scan(arbiter)
        if outcome != "grant" or expected != chosen:
            self._violate(
                "crossbar.arbiter", name,
                f"output {arbiter.output_index} granted input {chosen}, "
                f"shadow arbiter says {outcome} "
                f"{'' if expected is None else f'at input {expected}'}",
                output=arbiter.output_index, chosen=chosen,
                reference=outcome, reference_input=expected,
            )
        previous = self._arbiter_prev_grant.get(id(arbiter))
        if previous is not None and start != (previous + 1) % arbiter.switch.radix:
            self._violate(
                "crossbar.arbiter", name,
                f"round-robin pointer at {start} did not advance past the "
                f"previous grant (input {previous})",
                output=arbiter.output_index, start=start, previous=previous,
            )
        self._arbiter_prev_grant[id(arbiter)] = chosen

    def check_port_conflict(self, arbiter, head: "Packet") -> None:
        """A counted port conflict requires a genuinely full sink."""
        self._count("crossbar.arbiter")
        sink = arbiter._sink
        if head.words <= sink.capacity_words - sink._used_words:
            self._violate(
                "crossbar.arbiter", arbiter.switch.name or "crossbar",
                f"port conflict counted on output {arbiter.output_index} but "
                f"the sink has {sink.free_words} free words for a "
                f"{head.words}-word packet",
                output=arbiter.output_index, head_words=head.words,
                free_words=sink.free_words,
            )

    # -- engine (clock + scheduling contract) ------------------------------

    def check_clock_advance(self, engine: "Engine", time: int, now: int) -> None:
        self._count("engine.monotonic")
        if time < now:
            self._violate(
                "engine.monotonic", "engine",
                f"event queue yielded cycle {time} after the clock reached "
                f"{now}; a heap entry was mutated while queued",
                event_cycle=time, clock=now,
            )

    def check_schedule_call(self, engine: "Engine", delay, site: str) -> None:
        """Validation for the validation-free scheduling entry points."""
        self._count("engine.schedule")
        if type(delay) is not int or delay < 0:
            self._violate(
                "engine.schedule", site,
                f"unvalidated delay {delay!r} reached the event queue; "
                f"delays must be pre-validated non-negative ints",
                delay=repr(delay),
            )
        if engine._running and not engine._in_dispatch:
            self._violate(
                "engine.schedule", site,
                "scheduling outside an event callback while the engine is "
                "running (breaks the idle fast-forward off-queue contract)",
            )

    # -- memory modules (request/reply balance) ----------------------------

    def memory_request(self, module, packet: "Packet") -> None:
        ledger = self._memory_ledger.get(id(module))
        if ledger is None:
            self.register_memory_module(module)
            ledger = self._memory_ledger[id(module)]
        ledger[0] += 1
        self._count("memory.balance")
        if packet.destination != module.index:
            self._violate(
                "memory.balance", f"memory.m{module.index:02d}",
                f"module {module.index} pulled a request addressed to "
                f"module {packet.destination}",
                destination=packet.destination, module=module.index,
            )

    def memory_reply(self, module, packet: "Packet") -> None:
        ledger = self._memory_ledger.setdefault(id(module), [0, 0, 0])
        ledger[1] += 1
        self._check_memory_ledger(module, ledger)

    def memory_write_absorbed(self, module) -> None:
        ledger = self._memory_ledger.setdefault(id(module), [0, 0, 0])
        ledger[2] += 1
        self._check_memory_ledger(module, ledger)

    def _check_memory_ledger(self, module, ledger: List[int]) -> None:
        self._count("memory.balance")
        requests, replies, writes = ledger
        if replies + writes > requests:
            self._violate(
                "memory.balance", f"memory.m{module.index:02d}",
                f"{replies} replies + {writes} absorbed writes exceed "
                f"{requests} requests pulled from the network",
                requests=requests, replies=replies, writes=writes,
            )

    # -- prefetch buffer full/empty bits -----------------------------------

    def check_fullempty_write(self, component: str, handle, index: int) -> None:
        self._count("fullempty.prefetch")
        if handle.arrival_cycles[index] is not None:
            self._violate(
                "fullempty.prefetch", component,
                f"write-while-full: buffer word {index} arrived twice",
                index=index, first_arrival=handle.arrival_cycles[index],
            )
        if handle.invalidated:
            self._violate(
                "fullempty.prefetch", component,
                f"arrival recorded into an invalidated prefetch buffer "
                f"(word {index})",
                index=index,
            )

    def check_fullempty_read(self, component: str, handle, index: int) -> None:
        self._count("fullempty.prefetch")
        if handle.arrival_cycles[index] is None:
            self._violate(
                "fullempty.prefetch", component,
                f"read-while-empty: word {index} consumed before it arrived",
                index=index,
            )

    # -- synchronization processors (shadow model) -------------------------

    def check_sync(
        self,
        processor,
        address: int,
        kind: str,
        test: Optional[str],
        key: int,
        op: Optional[str],
        operand: int,
        outcome,
    ) -> None:
        """Replay the instruction on an independent shadow and compare."""
        self._count("sync.shadow")
        shadow = self._sync_shadow.setdefault(id(processor), {})
        old = shadow.get(address, 0)
        if kind == "test_and_set":
            passed, new = old == 0, 1
            shadow[address] = 1
        else:
            passed = _SHADOW_TESTS[test](old, key & _MASK32)
            if passed:
                new = _SHADOW_OPS[op](old, operand & _MASK32) & _MASK32
                if op != "read":
                    shadow[address] = new
            else:
                new = old
        if (outcome.test_passed, outcome.old_value, outcome.new_value) != (
            passed, old, new,
        ):
            self._violate(
                "sync.shadow", "sync",
                f"{kind} at address {address} returned "
                f"(passed={outcome.test_passed}, old={outcome.old_value}, "
                f"new={outcome.new_value}); shadow model says "
                f"(passed={passed}, old={old}, new={new}) -- the operation "
                f"was not indivisible",
                address=address, kind=kind,
            )
        stored = processor.read(address)
        if stored != shadow.get(address, 0):
            self._violate(
                "sync.shadow", "sync",
                f"word {address} holds {stored}, shadow holds "
                f"{shadow.get(address, 0)}",
                address=address, stored=stored,
            )

    # -- cache / cluster memory --------------------------------------------

    def check_cache_directory(self, cache) -> None:
        self._count("cache.balance")
        if len(cache._lines) > cache.num_lines:
            self._violate(
                "cache.balance", cache.name,
                f"directory holds {len(cache._lines)} lines, capacity is "
                f"{cache.num_lines}",
                resident=len(cache._lines), capacity=cache.num_lines,
            )

    def check_bandwidth_reserve(
        self, server, previous_free: float, start: float, finish: float, words: int
    ) -> None:
        self._count("cache.balance")
        if words < 0 or finish < start or start + 1e-9 < previous_free:
            self._violate(
                "cache.balance", server.name or "bandwidth",
                f"reservation of {words} words booked [{start}, {finish}) "
                f"against a server already booked to {previous_free}",
                words=words, start=start, finish=finish,
                previous_free=previous_free,
            )

    # -- concurrency control bus -------------------------------------------

    def register_cdoall(self, counter, num_iterations: int, num_ces: int) -> None:
        self._cdoalls[id(counter)] = {
            "n": num_iterations,
            "ces": num_ces,
            "claimed": set(),
        }

    def ccb_claimed(self, counter, iteration: int) -> None:
        state = self._cdoalls.get(id(counter))
        if state is None:
            return
        self._count("ccb.iterations")
        claimed = state["claimed"]
        if iteration in claimed:
            self._violate(
                "ccb.iterations", "ccb",
                f"iteration {iteration} claimed twice",
                iteration=iteration,
            )
        if not 0 <= iteration < state["n"]:
            self._violate(
                "ccb.iterations", "ccb",
                f"claimed iteration {iteration} outside the "
                f"{state['n']}-iteration loop",
                iteration=iteration, trip_count=state["n"],
            )
        claimed.add(iteration)

    def ccb_join(self, counter, static: bool) -> None:
        state = self._cdoalls.get(id(counter))
        if state is None:
            return
        self._count("ccb.iterations")
        if not static and len(state["claimed"]) != state["n"]:
            self._violate(
                "ccb.iterations", "ccb",
                f"join passed with {len(state['claimed'])} of "
                f"{state['n']} iterations claimed",
                claimed=len(state["claimed"]), trip_count=state["n"],
            )
        if counter.remaining != 0 and not static:
            self._violate(
                "ccb.iterations", "ccb",
                f"join passed with {counter.remaining} iterations undispensed",
                remaining=counter.remaining,
            )

    # -- end-of-run balance -------------------------------------------------

    def finalize(self) -> None:
        """End-of-run conservation: injected == delivered + physically queued.

        Called by the ``--sanitize`` glue after a run completes; safe to
        call on a run stopped early (packets still in queues, arbiters or
        memory modules are accounted, not flagged).
        """
        for network in self._networks:
            self._count("network.conservation")
            queued: Dict[int, str] = {}
            for row in network.stages:
                for switch in row:
                    for queue in switch.input_queues:
                        for packet in queue._packets:
                            queued[packet.packet_id] = queue.name
                    for arbiter in switch.arbiters:
                        packet = arbiter._in_flight
                        if packet is not None:
                            queued[packet.packet_id] = (
                                f"{switch.name}.out[{arbiter.output_index}]"
                            )
            for queue in network._delivery_queues:
                for packet in queue._packets:
                    queued[packet.packet_id] = queue.name
            inflight = self._net_inflight[id(network)]
            lost = sorted(set(inflight) - set(queued))
            conjured = sorted(set(queued) - set(inflight))
            if lost or conjured:
                self._violate(
                    "network.conservation", network.name,
                    f"end-of-run imbalance: {len(lost)} packet(s) vanished "
                    f"in flight, {len(conjured)} queued without injection",
                    lost=lost[:8], conjured=conjured[:8],
                    in_flight=len(inflight), queued=len(queued),
                )
        for module in self._memory_modules:
            ledger = self._memory_ledger[id(module)]
            self._count("memory.balance")
            outstanding = (1 if module._in_service is not None else 0) + (
                1 if module._pending_reply is not None else 0
            )
            if ledger[0] - ledger[1] - ledger[2] != outstanding:
                self._violate(
                    "memory.balance", f"memory.m{module.index:02d}",
                    f"end-of-run imbalance: {ledger[0]} requests != "
                    f"{ledger[1]} replies + {ledger[2]} writes + "
                    f"{outstanding} outstanding",
                    requests=ledger[0], replies=ledger[1], writes=ledger[2],
                    outstanding=outstanding,
                )
        for link in self._boundary_links:
            if getattr(link, "remote", False):
                # The receiving half lives in another process; its ledger
                # closes there, so only the ordering checks apply here.
                continue
            ledger = self._boundary_ledger[id(link)]
            if not ledger["sent_any"]:
                continue
            self._count("boundary.conservation")
            staged = {
                (message.epoch, message.seq) for message in link._outbox
            }
            lost = sorted(set(ledger["sent"]) - staged)
            if lost:
                self._violate(
                    "boundary.conservation", link.name,
                    f"end-of-run imbalance: {len(lost)} boundary packet(s) "
                    "sent but never delivered",
                    lost=lost[:8], staged=len(staged),
                )

    # -- reporting -----------------------------------------------------------

    @property
    def total_checks(self) -> int:
        return sum(self.checks.values())

    def summary(self) -> Dict[str, object]:
        """JSON-safe report: checks per invariant class plus violations."""
        return {
            "enabled": True,
            "checks": {name: self.checks[name] for name in sorted(self.checks)},
            "total_checks": self.total_checks,
            "violations": self.violations,
        }
