"""Discrete-event simulation core.

Time is measured in integer CE instruction cycles (170 ns each).  Components
schedule callbacks at absolute cycles; ties are broken by scheduling order so
runs are deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError

Callback = Callable[[], None]


class Engine:
    """A deterministic event queue over an integer cycle clock."""

    def __init__(self) -> None:
        self._queue: List[Tuple[int, int, Callback]] = []
        self._sequence = itertools.count()
        self._now = 0
        self._running = False
        #: Optional enabled :class:`repro.trace.Tracer`; set by the machine.
        #: Dispatch totals are counted per run() so the per-event cost of
        #: instrumentation is zero.
        self.tracer = None

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    def schedule(self, delay: int, callback: Callback) -> None:
        """Run ``callback`` ``delay`` cycles from now (delay >= 0)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, next(self._sequence), callback))

    def schedule_at(self, cycle: int, callback: Callback) -> None:
        """Run ``callback`` at absolute time ``cycle``."""
        self.schedule(cycle - self._now, callback)

    def pending(self) -> int:
        """Number of events not yet dispatched."""
        return len(self._queue)

    def run(self, until: Optional[int] = None, max_events: int = 50_000_000) -> int:
        """Dispatch events in time order.

        Args:
            until: Stop once the clock would pass this cycle (events at
                exactly ``until`` still run).  ``None`` runs to exhaustion.
            max_events: Safety valve against runaway simulations.

        Returns:
            The simulation time when the run stopped.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        try:
            dispatched = 0
            while self._queue:
                time, _, callback = self._queue[0]
                if until is not None and time > until:
                    self._now = until
                    break
                if dispatched >= max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events at cycle {self._now}; "
                        f"simulation is runaway"
                    )
                heapq.heappop(self._queue)
                self._now = time
                callback()
                dispatched += 1
            else:
                if until is not None and until > self._now:
                    self._now = until
            return self._now
        finally:
            self._running = False
            if self.tracer is not None:
                self.tracer.count("engine", "events_dispatched", dispatched)
                self.tracer.count("engine", "runs")

    def run_until_idle(self) -> int:
        """Run until no events remain; returns the final time."""
        return self.run(until=None)
