"""Discrete-event simulation core.

Time is measured in integer CE instruction cycles (170 ns each).  Components
schedule callbacks at absolute cycles; ties are broken by scheduling order so
runs are deterministic.

Two dispatch loops produce the *same* event stream:

* the **fast** loop (default) drains every event sharing the current cycle
  in one heap pass before dispatching the batch, and fast-forwards the clock
  over idle gaps (counting the skipped cycles);
* the **legacy** loop pops one event at a time, exactly as the original
  implementation did.

Batching is order-preserving because any event a callback schedules draws a
later sequence number than everything already popped, so dispatching the
batch front-to-back and then re-draining the heap is exactly heap order.
The loop is selected per engine at construction from
:mod:`repro.hardware.fastpath` (``CEDAR_FASTPATH=0`` forces legacy), and the
determinism tests assert both produce identical results and identical
``events_dispatched`` counts.

Idle fast-forward relies on one invariant: **no component mutates simulation
state off-queue**.  All state changes happen inside event callbacks (or
before ``run()`` starts), so cycles with no queued event are provably inert
and the clock can jump straight to the next event.  :meth:`Engine.schedule`
enforces the schedulable half of that contract: scheduling while a run is in
progress is only legal from within a dispatching callback.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional

from repro.errors import SimulationError
from repro.hardware import fastpath, sanitize

Callback = Callable[[], None]


def _cancelled() -> None:
    """Dispatch target of a cancelled recurring occurrence (a no-op).

    The dead heap entry cannot be removed from the middle of the heap, so
    it is neutralized in place and dispatched as an inert event; both
    dispatch loops count it identically, preserving A/B equivalence.
    """

#: Heap entries are mutable ``[cycle, sequence, callback]`` triples so that
#: :class:`RecurringEvent` can re-arm by rewriting its one entry in place.
Entry = list


class RecurringEvent:
    """A re-armable periodic event that reuses a single heap entry.

    Components with a fixed cadence (the PFU's one-request-per-cycle issue
    engine, clocked ports) re-arm from inside their own callback instead of
    paying :meth:`Engine.schedule` validation plus a fresh entry allocation
    per occurrence.  Each occurrence still draws a fresh sequence number, so
    tie order against ordinary events is identical to plain scheduling.
    """

    __slots__ = ("_engine", "interval", "callback", "_entry", "_pending")

    def __init__(self, engine: "Engine", interval: int, callback: Callback) -> None:
        if not isinstance(interval, int) or isinstance(interval, bool) or interval < 0:
            raise SimulationError(
                f"recurring interval must be an int >= 0, got {interval!r}"
            )
        self._engine = engine
        self.interval = interval
        self.callback = callback
        self._entry: Entry = [0, 0, self._fire]
        self._pending = False

    @property
    def pending(self) -> bool:
        """True while the next occurrence sits in the event queue."""
        return self._pending

    def _fire(self) -> None:
        self._pending = False
        self.callback()

    def schedule(self) -> None:
        """Arm the next occurrence ``interval`` cycles from now.

        The heap entry is physically in the queue while pending, so
        re-arming before the previous occurrence fired would corrupt the
        heap; that is rejected rather than silently mis-ordered.
        """
        if self._pending:
            raise SimulationError(
                "recurring event re-armed while an occurrence is still pending"
            )
        engine = self._engine
        if engine._sanitizer is not None:
            engine._sanitizer.check_schedule_call(
                engine, self.interval, "engine.recurring"
            )
        entry = self._entry
        entry[0] = engine._now + self.interval
        entry[1] = next(engine._sequence)
        self._pending = True
        heapq.heappush(engine._queue, entry)

    def cancel(self) -> None:
        """Cancel the pending occurrence (a no-op when none is pending).

        The in-queue entry cannot be cheaply removed from the heap, so it
        is neutralized in place (its callback slot becomes inert) and
        *detached*: a subsequent :meth:`schedule` arms a fresh entry,
        never rewriting the dead one still sitting in the queue.  The dead
        entry is dispatched as an inert event when its cycle comes, which
        both dispatch loops count identically.
        """
        if not self._pending:
            return
        self._entry[2] = _cancelled
        self._entry = [0, 0, self._fire]
        self._pending = False


class Engine:
    """A deterministic event queue over an integer cycle clock."""

    def __init__(self, fast_path: Optional[bool] = None) -> None:
        self._queue: List[Entry] = []
        self._sequence = itertools.count()
        self._now = 0
        self._running = False
        self._in_dispatch = False
        self._run_dispatched = 0
        self._run_skipped = 0
        #: Which dispatch loop run() uses; defaults to the global fastpath
        #: flag at construction time.  Both loops dispatch the identical
        #: event stream (see module docstring).
        self.fast_path = fastpath.enabled() if fast_path is None else bool(fast_path)
        #: Armed invariant checker or None (see repro.hardware.sanitize).
        self._sanitizer = sanitize.current()
        #: Total events dispatched over this engine's lifetime.
        self.events_dispatched = 0
        #: Cycles the clock jumped over because no event was queued in them.
        self.idle_cycles_skipped = 0
        #: Optional enabled :class:`repro.trace.Tracer`; set by the machine.
        #: Dispatch totals are counted per run() so the per-event cost of
        #: instrumentation is zero.
        self.tracer = None

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    def schedule(self, delay: int, callback: Callback) -> None:
        """Run ``callback`` ``delay`` cycles from now (integral delay >= 0).

        Integral floats (``5.0``) are coerced to int; non-integral delays
        raise, because events drifting off the integer cycle clock would
        break the sequence-number tie order that makes runs deterministic.
        """
        if type(delay) is not int:
            delay = _coerce_delay(delay)
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        if self._running and not self._in_dispatch:
            raise SimulationError(
                "schedule() outside an event callback while the engine is "
                "running; components must not mutate simulation state "
                "off-queue (the idle fast-forward invariant, see DESIGN.md)"
            )
        heapq.heappush(
            self._queue, [self._now + delay, next(self._sequence), callback]
        )

    def schedule_after(self, delay: int, callback: Callback) -> None:
        """:meth:`schedule` minus validation, for dispatch-critical callers.

        ``delay`` MUST be a non-negative int the caller has already
        validated (a constant, or arithmetic over validated ints); hot
        components (crossbar transfers, memory service completions) use
        this to skip the per-call checks.  The sanitizer re-arms exactly
        those checks, so ``--sanitize`` runs catch a caller breaking the
        contract.
        """
        if self._sanitizer is not None:
            self._sanitizer.check_schedule_call(self, delay, "engine.schedule_after")
        heapq.heappush(
            self._queue, [self._now + delay, next(self._sequence), callback]
        )

    def schedule_at(self, cycle: int, callback: Callback) -> None:
        """Run ``callback`` at absolute time ``cycle``."""
        self.schedule(cycle - self._now, callback)

    def recurring(self, interval: int, callback: Callback) -> RecurringEvent:
        """A reusable periodic event; see :class:`RecurringEvent`."""
        return RecurringEvent(self, interval, callback)

    def pending(self) -> int:
        """Number of events not yet dispatched."""
        return len(self._queue)

    def run(self, until: Optional[int] = None, max_events: int = 50_000_000) -> int:
        """Dispatch events in time order.

        Args:
            until: Stop once the clock would pass this cycle (events at
                exactly ``until`` still run).  ``None`` runs to exhaustion.
            max_events: Safety valve against runaway simulations.

        Returns:
            The simulation time when the run stopped.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        self._run_dispatched = 0
        self._run_skipped = 0
        try:
            if self.fast_path:
                return self._run_fast(until, max_events)
            return self._run_legacy(until, max_events)
        finally:
            self._running = False
            dispatched = self._run_dispatched
            self.events_dispatched += dispatched
            self.idle_cycles_skipped += self._run_skipped
            if self.tracer is not None:
                self.tracer.count("engine", "events_dispatched", dispatched)
                self.tracer.count("engine", "runs")
                if self._run_skipped:
                    self.tracer.count(
                        "engine", "idle_cycles_skipped", self._run_skipped
                    )

    def _run_fast(self, until: Optional[int], max_events: int) -> int:
        """Batched dispatch: drain each cycle's events in one heap pass."""
        queue = self._queue
        pop = heapq.heappop
        push = heapq.heappush
        batch: List[Entry] = []
        append = batch.append
        dispatched = 0
        now = self._now
        sanitizer = self._sanitizer
        self._in_dispatch = True
        try:
            while queue:
                time = queue[0][0]
                if time != now:
                    if sanitizer is not None:
                        sanitizer.check_clock_advance(self, time, now)
                    if until is not None and time > until:
                        now = until
                        break
                    if time - now > 1:
                        # Idle fast-forward: nothing is queued in the gap and
                        # nothing mutates state off-queue, so jump the clock.
                        self._run_skipped += time - now - 1
                    now = time
                if dispatched >= max_events:
                    # self._now still holds the last dispatched cycle, which
                    # is what the legacy loop reports too.
                    raise SimulationError(
                        f"exceeded {max_events} events at cycle {self._now}; "
                        f"simulation is runaway"
                    )
                self._now = now
                entry = pop(queue)
                if not queue or queue[0][0] != time:
                    # Singleton cycle: dispatch without batch bookkeeping.
                    # Counted before the call so an aborted run accounts the
                    # raising event exactly like the batched path below.
                    dispatched += 1
                    entry[2]()
                    continue
                del batch[:]
                append(entry)
                budget = max_events - dispatched - 1
                while budget and queue and queue[0][0] == time:
                    append(pop(queue))
                    budget -= 1
                index = 0
                try:
                    for entry in batch:
                        entry[2]()
                        index += 1
                except BaseException:
                    # Keep undispatched same-cycle events in the queue so an
                    # aborted run leaves the same state the legacy loop would.
                    for entry in batch[index + 1:]:
                        push(queue, entry)
                    dispatched += index + 1
                    raise
                dispatched += index
            else:
                if until is not None and until > now:
                    now = until
            self._now = now
            return now
        finally:
            self._in_dispatch = False
            self._run_dispatched = dispatched

    def _run_legacy(self, until: Optional[int], max_events: int) -> int:
        """The original one-event-at-a-time loop, kept for A/B verification."""
        dispatched = 0
        sanitizer = self._sanitizer
        self._in_dispatch = True
        try:
            while self._queue:
                time, _, callback = self._queue[0]
                if sanitizer is not None and time != self._now:
                    sanitizer.check_clock_advance(self, time, self._now)
                if until is not None and time > until:
                    self._now = until
                    break
                if dispatched >= max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events at cycle {self._now}; "
                        f"simulation is runaway"
                    )
                heapq.heappop(self._queue)
                if time - self._now > 1:
                    self._run_skipped += time - self._now - 1
                self._now = time
                callback()
                dispatched += 1
            else:
                if until is not None and until > self._now:
                    self._now = until
            return self._now
        finally:
            self._in_dispatch = False
            self._run_dispatched = dispatched

    def run_until_idle(self) -> int:
        """Run until no events remain; returns the final time."""
        return self.run(until=None)


def _coerce_delay(delay: object) -> int:
    if isinstance(delay, bool):
        raise SimulationError(f"delay must be a cycle count, got {delay!r}")
    if isinstance(delay, int):
        return int(delay)
    if isinstance(delay, float) and delay.is_integer():
        return int(delay)
    raise SimulationError(
        f"delay must be an integral number of cycles, got {delay!r}; "
        f"fractional delays drift events off the integer cycle clock"
    )
