"""The shared, 4-way interleaved cluster cache (Section 2).

512KB, 32-byte lines, write-back, lockup-free (two outstanding misses per
CE), writes do not stall a CE.  "The cache bandwidth is eight 64-bit words
per instruction cycle, sufficient to supply one input stream to a vector
instruction in each processor."

Timing model: the cache is a shared *bandwidth server* -- reservations of N
words complete no faster than the aggregate words-per-cycle rate allows --
plus an LRU directory of resident lines for hit/miss classification.  The
interleaving itself is folded into the aggregate rate (four banks each
serving two words per cycle).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.config import CacheConfig, ClusterMemoryConfig, WORD_BYTES
from repro.hardware import sanitize
from repro.hardware.engine import Engine


class BandwidthServer:
    """Serializes word reservations against an aggregate words/cycle rate."""

    def __init__(self, engine: Engine, words_per_cycle: float, name: str = "") -> None:
        if words_per_cycle <= 0:
            raise ValueError(f"rate must be positive, got {words_per_cycle}")
        self.engine = engine
        self.words_per_cycle = words_per_cycle
        self.name = name
        self._next_free = 0.0
        self.words_served = 0
        self._sanitizer = sanitize.current()

    def reserve(self, words: int) -> int:
        """Reserve ``words`` of transfer; returns the completion cycle.

        Reservations are granted in call order (FIFO): the transfer starts
        no earlier than the previous one finished.
        """
        if words < 0:
            raise ValueError(f"cannot reserve {words} words")
        previous_free = self._next_free
        start = max(float(self.engine.now), self._next_free)
        finish = start + words / self.words_per_cycle
        self._next_free = finish
        self.words_served += words
        if self._sanitizer is not None:
            self._sanitizer.check_bandwidth_reserve(
                self, previous_free, start, finish, words
            )
        return int(round(finish))

    @property
    def backlog_cycles(self) -> float:
        """How far ahead of the clock the server is booked."""
        return max(0.0, self._next_free - self.engine.now)


class ClusterCache:
    """Directory + bandwidth model of one cluster's shared cache."""

    def __init__(
        self,
        engine: Engine,
        config: CacheConfig,
        memory_config: ClusterMemoryConfig,
        name: str = "cache",
        tracer=None,
    ) -> None:
        self.engine = engine
        self.config = config
        self.memory_config = memory_config
        self.name = name
        self.trace = tracer.if_enabled() if tracer is not None else None
        # Counters group under "cache" with the cluster as the subunit, so
        # "cl2.cache" reports as component "cache.cl2".
        self._trace_component = (
            f"cache.{name.split('.', 1)[0]}" if "." in name else "cache"
        )
        self._lines: "OrderedDict[int, bool]" = OrderedDict()  # line -> dirty
        self.num_lines = config.size_bytes // config.line_bytes
        self.words_per_line = config.line_bytes // WORD_BYTES
        self.port = BandwidthServer(engine, config.words_per_cycle, f"{name}.port")
        self.memory_port = BandwidthServer(
            engine, memory_config.words_per_cycle, f"{name}.membus"
        )
        self._sanitizer = sanitize.current()
        self.hits = 0
        self.misses = 0
        self.write_backs = 0

    def _line_of(self, address: int) -> int:
        return address // self.words_per_line

    def is_resident(self, address: int) -> bool:
        return self._line_of(address) in self._lines

    def _touch(self, line: int, dirty: bool) -> None:
        previously_dirty = self._lines.pop(line, False)
        self._lines[line] = previously_dirty or dirty
        if len(self._lines) > self.num_lines:
            _, victim_dirty = self._lines.popitem(last=False)
            if victim_dirty:
                self.write_backs += 1
                if self.trace is not None:
                    self.trace.count(self._trace_component, "write_backs")
                # Write-back consumes memory-bus bandwidth but never stalls
                # the requester (write-back cache, non-blocking writes).
                self.memory_port.reserve(self.words_per_line)

    def access(self, address: int, write: bool = False) -> Tuple[bool, int]:
        """One word access.

        Returns:
            (hit, completion_cycle).  A miss reserves a full line transfer
            from cluster memory plus the fixed miss latency.
        """
        line = self._line_of(address)
        hit = line in self._lines
        if hit:
            self.hits += 1
            finish = self.port.reserve(1) + self.config.hit_latency_cycles
        else:
            self.misses += 1
            fill_done = self.memory_port.reserve(self.words_per_line)
            finish = (
                max(self.port.reserve(1), fill_done)
                + self.memory_config.miss_latency_cycles
            )
        if self.trace is not None:
            self._trace_access(hit, 1)
        self._touch(line, dirty=write)
        if self._sanitizer is not None:
            self._sanitizer.check_cache_directory(self)
        return hit, finish

    def stream(self, length: int, resident: bool = True) -> int:
        """Reserve a vector stream of ``length`` words; returns finish cycle.

        ``resident=True`` models accesses to a cached work array (the paper's
        GM/cache rank-64 version); ``resident=False`` streams through cluster
        memory at the memory-bus rate.
        """
        if length < 0:
            raise ValueError(f"stream length must be >= 0, got {length}")
        if resident:
            self.hits += length
            if self.trace is not None:
                self._trace_access(True, length)
            return self.port.reserve(length) + self.config.hit_latency_cycles
        self.misses += max(1, length // self.words_per_line)
        if self.trace is not None:
            self._trace_access(False, max(1, length // self.words_per_line))
        fill = self.memory_port.reserve(length)
        return max(fill, self.port.reserve(length)) + self.memory_config.miss_latency_cycles

    def _trace_access(self, hit: bool, count: int) -> None:
        """Count a hit/miss and sparsely sample the hit-rate timeline."""
        assert self.trace is not None
        self.trace.count(self._trace_component, "hits" if hit else "misses", count)
        accesses = self.hits + self.misses
        if accesses % 256 < count:
            self.trace.sample(
                self._trace_component, "hit_rate_percent",
                round(100.0 * self.hits / accesses, 2), self.engine.now,
            )

    def install_block(self, start_address: int, length: int, dirty: bool = False) -> None:
        """Mark a block resident (used after an explicit global->cluster move)."""
        first = self._line_of(start_address)
        last = self._line_of(start_address + max(0, length - 1))
        for line in range(first, last + 1):
            self._touch(line, dirty)
        if self._sanitizer is not None:
            self._sanitizer.check_cache_directory(self)
