"""The assembled Cedar machine: four clusters, two networks, global memory.

This is the top-level object kernels run against.  ``CedarMachine`` wires the
forward and reverse shuffle-exchange networks between the CEs and the
interleaved global-memory modules, attaches a synchronization processor to
every module, and exposes convenience entry points for running kernel
coroutines on subsets of the machine and reading back MFLOPS.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.config import CE_CYCLE_SECONDS, CedarConfig, active_config
from repro.errors import SimulationError
from repro.hardware import sanitize
from repro.hardware.ce import ComputationalElement, KernelFactory
from repro.hardware.cluster import Cluster
from repro.hardware.engine import Engine
from repro.hardware.memory import GlobalMemory
from repro.hardware.monitor import PerformanceMonitor
from repro.hardware.network import OmegaNetwork
from repro.hardware.packet import Packet
from repro.hardware.sync_processor import OperateOp, SyncProcessor, TestOp
from repro.hardware.vm import VirtualMemory
from repro.trace import Tracer, current_tracer


def _default_sync_handler(packet: Packet, sync: SyncProcessor) -> object:
    """Execute the synchronization instruction carried by a SYNC packet."""
    payload = packet.payload
    if not isinstance(payload, dict):
        raise SimulationError("sync request without an instruction payload")
    if payload.get("test_and_set"):
        return sync.test_and_set(packet.address)
    return sync.test_and_operate(
        address=packet.address,
        test=payload.get("test", TestOp.ALWAYS),
        key=payload.get("key", 0),
        op=payload.get("op", OperateOp.READ),
        operand=payload.get("operand", 0),
    )


class CedarMachine:
    """The full system of Figure 1."""

    def __init__(
        self,
        config: Optional[CedarConfig] = None,
        tracer: Optional[Tracer] = None,
        request_delivery: Optional[object] = None,
        reply_delivery: Optional[object] = None,
    ) -> None:
        """Assemble the machine, optionally re-routing the delivery seams.

        ``config`` defaults to the *ambient* configuration
        (:func:`repro.config.active_config`): the paper's machine unless a
        :func:`repro.config.overriding` block -- e.g. a serve job carrying
        a builder ``spec`` -- installed another shape.

        ``request_delivery`` replaces the forward network as what the
        memory modules pull requests from, and ``reply_delivery`` replaces
        the reverse network as what CE ports attach their reply sinks to.
        Both default to the machine's own networks (the fused single
        process machine).  Partitioned simulation passes
        :class:`~repro.partition.boundary.BoundaryChannel` fabrics here --
        the only coupling the endpoints have is ``delivery_queue(port)``
        and ``attach_sink(port, handler)``, which the channels duck-type.
        """
        if config is None:
            config = active_config()
        self.config = config
        #: The declarative spec this machine was elaborated from, when it
        #: came through :func:`repro.builder.build` (None for machines
        #: constructed directly from a config).
        self.spec = None
        self.engine = Engine()
        # Invariant sanitizer: the ambient one (see `sanitizing()` /
        # CEDAR_SANITIZE), adopted before any component is built so every
        # hook below snapshots the same instance.
        self.sanitizer = sanitize.current()
        if self.sanitizer is not None:
            self.sanitizer.register_engine(self.engine)
        # Instrumentation bus: an explicit tracer wins, else the ambient one
        # installed by `tracing()` (how `cedar-repro trace` reaches machines
        # built deep inside experiment drivers), else a disabled local bus so
        # the monitor's signal cabling below is unconditional.
        if tracer is None:
            tracer = current_tracer()
        if tracer is None:
            tracer = Tracer(enabled=False)
        self.tracer = tracer
        tracer.set_clock(lambda: self.engine.now)
        self.engine.tracer = tracer.if_enabled()
        self.monitor = PerformanceMonitor(config.monitor)
        self.monitor.connect(tracer)
        ports = max(config.num_ces, config.global_memory.num_modules)
        self.forward = OmegaNetwork(
            self.engine, ports, config.network, name="fwd", tracer=tracer
        )
        self.reverse = OmegaNetwork(
            self.engine, ports, config.network, name="rev", tracer=tracer
        )
        self.global_memory = GlobalMemory(
            engine=self.engine,
            config=config.global_memory,
            sync_config=config.sync,
            forward=request_delivery or self.forward,
            reverse=self.reverse,
            sync_handler=_default_sync_handler,
            tracer=tracer,
        )
        self.clusters: List[Cluster] = [
            Cluster(
                engine=self.engine,
                config=config,
                index=i,
                forward=self.forward,
                reverse=reply_delivery or self.reverse,
                monitor=self.monitor,
                tracer=tracer,
            )
            for i in range(config.num_clusters)
        ]
        self.vm = VirtualMemory(config.vm, config.num_clusters)

    # -- CE selection --------------------------------------------------------

    @property
    def all_ces(self) -> List[ComputationalElement]:
        return [ce for cluster in self.clusters for ce in cluster.ces]

    def ces(self, count: int) -> List[ComputationalElement]:
        """The first ``count`` CEs, filled cluster by cluster (as the paper's
        8/16/32-processor experiments were run)."""
        if not 1 <= count <= self.config.num_ces:
            raise SimulationError(
                f"machine has {self.config.num_ces} CEs, asked for {count}"
            )
        return self.all_ces[:count]

    # -- running kernels -------------------------------------------------------

    def run_kernel(
        self,
        kernel: KernelFactory,
        num_ces: Optional[int] = None,
        until: Optional[int] = None,
    ) -> int:
        """Run one kernel factory on N CEs until all complete.

        Returns the cycle at which the last CE finished.
        """
        selected = self.ces(num_ces or self.config.num_ces)
        done = {"remaining": len(selected), "at": 0}

        def one_done() -> None:
            done["remaining"] -= 1
            done["at"] = self.engine.now

        trace = self.tracer.if_enabled()
        if trace is not None:
            trace.begin("machine", f"run_kernel[{len(selected)} ces]")
        try:
            for ce in selected:
                ce.run(kernel, on_done=one_done)
            self.engine.run(until=until)
        finally:
            if trace is not None:
                trace.end("machine")
        if done["remaining"] != 0:
            raise SimulationError(
                f"{done['remaining']} CEs never finished (deadlock or until= too small)"
            )
        return done["at"]

    def run_per_ce(
        self,
        kernels: Sequence[KernelFactory],
        until: Optional[int] = None,
    ) -> int:
        """Run a distinct kernel on each of the first len(kernels) CEs."""
        selected = self.ces(len(kernels))
        done = {"remaining": len(selected), "at": 0}

        def one_done() -> None:
            done["remaining"] -= 1
            done["at"] = self.engine.now

        trace = self.tracer.if_enabled()
        if trace is not None:
            trace.begin("machine", f"run_per_ce[{len(selected)} ces]")
        try:
            for ce, kernel in zip(selected, kernels):
                ce.run(kernel, on_done=one_done)
            self.engine.run(until=until)
        finally:
            if trace is not None:
                trace.end("machine")
        if done["remaining"] != 0:
            raise SimulationError("not all CEs finished")
        return done["at"]

    # -- measurement -----------------------------------------------------------

    @property
    def total_flops(self) -> float:
        return sum(ce.flops for ce in self.all_ces)

    def mflops(self, cycles: int, flops: Optional[float] = None) -> float:
        """Delivered MFLOPS over a window of ``cycles``."""
        if cycles <= 0:
            raise SimulationError(f"need a positive cycle window, got {cycles}")
        work = self.total_flops if flops is None else flops
        return work / (cycles * CE_CYCLE_SECONDS) / 1e6

    def seconds(self, cycles: int) -> float:
        return cycles * CE_CYCLE_SECONDS
