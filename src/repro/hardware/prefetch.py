"""The per-CE data prefetch unit (Section 2, "Data Prefetch").

A PFU is *armed* with the length, stride and mask of a vector to fetch and
*fired* with the physical address of the first word.  It then issues up to
512 requests without pausing (one per cycle), except that a prefetch
crossing a page boundary suspends until the processor supplies the first
address in the new page.  Data returns to a 512-word prefetch buffer --
possibly out of order, due to memory and network conflicts -- and a
full/empty bit per word lets the CE consume the data in request order
without waiting for the whole prefetch to complete.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.config import PrefetchConfig, WORD_BYTES
from repro.errors import SimulationError
from repro.hardware import sanitize
from repro.hardware.engine import Engine
from repro.hardware.packet import Packet, PacketKind

#: Cycles for the CE to supply the first address of a new page when a
#: prefetch suspends at a page crossing (the PFU only has physical
#: addresses).  The CE must take a micro-trap and translate; this is the
#: modelled cost of that intervention.
PAGE_RESUME_CYCLES = 12


@dataclass
class PrefetchHandle:
    """One armed-and-fired prefetch: addresses, arrivals, and statistics."""

    length: int
    stride: int
    start_address: int
    fire_cycle: int
    issue_cycles: List[Optional[int]] = field(default_factory=list)
    arrival_cycles: List[Optional[int]] = field(default_factory=list)
    _arrival_order: List[int] = field(default_factory=list)
    _waiters: Dict[int, List[Callable[[], None]]] = field(default_factory=dict)
    invalidated: bool = False

    def __post_init__(self) -> None:
        self.issue_cycles = [None] * self.length
        self.arrival_cycles = [None] * self.length

    def address_of(self, index: int) -> int:
        return self.start_address + index * self.stride

    @property
    def words_arrived(self) -> int:
        return len(self._arrival_order)

    @property
    def complete(self) -> bool:
        return self.words_arrived == self.length

    def is_available(self, index: int) -> bool:
        """Full/empty bit of buffer word ``index``."""
        return self.arrival_cycles[index] is not None

    def wait_for_word(self, index: int, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` when word ``index`` becomes available."""
        if self.is_available(index):
            callback()
            return
        self._waiters.setdefault(index, []).append(callback)

    def record_arrival(self, index: int, cycle: int) -> None:
        if self.arrival_cycles[index] is not None:
            raise SimulationError(f"duplicate arrival for prefetch word {index}")
        self.arrival_cycles[index] = cycle
        self._arrival_order.append(cycle)
        for callback in self._waiters.pop(index, []):
            callback()

    # -- the paper's Table 2 metrics --------------------------------------

    def first_word_latency(self) -> int:
        """Cycles from first-address issue to first datum return."""
        if self.issue_cycles[0] is None or not self._arrival_order:
            raise SimulationError("prefetch has no completed first word")
        return self._arrival_order[0] - self.issue_cycles[0]

    def interarrival_times(self) -> List[int]:
        """Gaps between consecutive word returns, in arrival order."""
        order = self._arrival_order
        return [order[i] - order[i - 1] for i in range(1, len(order))]


class PrefetchUnit:
    """One CE's PFU: an issue engine plus the 512-word prefetch buffer."""

    def __init__(
        self,
        engine: Engine,
        config: PrefetchConfig,
        send: Callable[[Packet], bool],
        on_send_space: Callable[[Callable[[], None]], None],
        new_tag: Callable[[Callable[[Packet], None]], int],
        port: int,
        memory_port_of: Callable[[int], int],
        tracer=None,
    ) -> None:
        """
        Args:
            engine: Simulation engine.
            config: PFU parameters.
            send: Injects a packet into the forward network; False when full.
            on_send_space: Registers a retry callback for a full entry queue.
            new_tag: Allocates a reply tag bound to a one-shot callback (the
                CE network port dispatches replies by tag).
            port: This CE's network port (packet source id).
            memory_port_of: Maps a word address to its memory-module port.
        """
        self.engine = engine
        self.config = config
        self._send = send
        self._on_send_space = on_send_space
        self._new_tag = new_tag
        self.port = port
        self._memory_port_of = memory_port_of
        self.trace = tracer.if_enabled() if tracer is not None else None
        self._trace_component = f"prefetch.ce{port:02d}"
        self._trace_counters = (
            self.trace.counters(self._trace_component)
            if self.trace is not None
            else None
        )
        #: Lazily bound slots for the per-word hot counters (-1 until the
        #: first bump); the rare counters stay on ``CounterSet.add``.
        self._slot_issued = -1
        self._slot_filled = -1
        # The issue engine ticks at a fixed cadence (one request per
        # issue_interval_cycles); a recurring event re-arms by reusing its
        # heap entry instead of paying schedule() validation per word.
        self._issue_tick = engine.recurring(
            config.issue_interval_cycles, self._issue_next
        )
        self._sanitizer = sanitize.current()
        self._armed: Optional[Dict[str, int]] = None
        self._active: Optional[PrefetchHandle] = None
        self._next_index = 0
        self._outstanding = 0
        self._issuing = False
        self.completed: List[PrefetchHandle] = []
        self.network_stall_cycles = 0
        self.page_suspensions = 0

    # -- architectural interface -----------------------------------------

    def arm(self, length: int, stride: int = 1) -> None:
        """Load length/stride/mask; the next fire starts this vector."""
        if length < 1:
            raise ValueError(f"prefetch length must be >= 1, got {length}")
        if length > self.config.buffer_words:
            raise ValueError(
                f"prefetch length {length} exceeds the "
                f"{self.config.buffer_words}-word buffer"
            )
        if stride == 0:
            raise ValueError("prefetch stride must be non-zero")
        self._armed = {"length": length, "stride": stride}

    def fire(self, start_address: int) -> PrefetchHandle:
        """Start fetching; invalidates the buffer of any previous prefetch."""
        if self._armed is None:
            raise SimulationError("fire() before arm()")
        if self._issuing:
            raise SimulationError(
                "fired a new prefetch while the previous one is still issuing"
            )
        if self._active is not None:
            # "The data returns to a 512-word prefetch buffer which is
            # invalidated when another prefetch is started."
            self._active.invalidated = True
        handle = PrefetchHandle(
            length=self._armed["length"],
            stride=self._armed["stride"],
            start_address=start_address,
            fire_cycle=self.engine.now,
        )
        self._armed = None
        self._active = handle
        self._next_index = 0
        if not self._issuing:
            self._issuing = True
            self.engine.schedule(1, self._issue_next)  # 1-cycle port interface
        return handle

    @property
    def active(self) -> Optional[PrefetchHandle]:
        return self._active

    # -- issue engine ------------------------------------------------------

    def _issue_next(self) -> None:
        handle = self._active
        if handle is None or self._next_index >= handle.length:
            self._issuing = False
            return
        index = self._next_index
        address = handle.address_of(index)
        if index > 0 and self._crosses_page(handle.address_of(index - 1), address):
            self.page_suspensions += 1
            if self._trace_counters is not None:
                self._trace_counters.add("page_suspensions")
            self.engine.schedule(PAGE_RESUME_CYCLES, lambda: self._issue_word(index))
            return
        self._issue_word(index)

    def _issue_word(self, index: int) -> None:
        handle = self._active
        assert handle is not None
        address = handle.address_of(index)
        tag = self._new_tag(lambda packet, i=index, h=handle: self._on_reply(h, i))
        packet = Packet(
            kind=PacketKind.READ_REQUEST,
            source=self.port,
            destination=self._memory_port_of(address),
            address=address,
            words=1,
            issue_cycle=self.engine.now,
            request_tag=tag,
        )
        if self._send(packet):
            handle.issue_cycles[index] = self.engine.now
            self._next_index = index + 1
            self._outstanding += 1
            counters = self._trace_counters
            if counters is not None:
                slot = self._slot_issued
                if slot < 0:
                    slot = self._slot_issued = counters.slot("requests_issued")
                counters.values[slot] += 1
            self._issue_tick.schedule()
        else:
            stall_start = self.engine.now
            self._on_send_space(
                lambda: self._retry_issue(index, stall_start)
            )

    def _retry_issue(self, index: int, stall_start: int) -> None:
        stalled = self.engine.now - stall_start
        self.network_stall_cycles += stalled
        if self._trace_counters is not None:
            self._trace_counters.add("network_stall_cycles", stalled)
        self._issue_word(index)

    def _crosses_page(self, prev_address: int, address: int) -> bool:
        page_words = self.config.page_bytes // WORD_BYTES
        return (prev_address // page_words) != (address // page_words)

    # -- buffer fill -------------------------------------------------------

    def _on_reply(self, handle: PrefetchHandle, index: int) -> None:
        """A read reply reached this CE's prefetch buffer."""
        self._outstanding -= 1
        if handle.invalidated:
            return  # the buffer was invalidated by a newer fire()
        if self._sanitizer is not None:
            # Write-side full/empty protocol: the slot must be empty.
            self._sanitizer.check_fullempty_write(
                self._trace_component, handle, index
            )
        handle.record_arrival(index, self.engine.now)
        if self.trace is not None:
            counters = self._trace_counters
            slot = self._slot_filled
            if slot < 0:
                slot = self._slot_filled = counters.slot("buffer_words_filled")
            counters.values[slot] += 1
            if handle.words_arrived % 32 == 1:
                self.trace.sample(
                    self._trace_component, "buffer_fill_words",
                    handle.words_arrived, self.engine.now,
                )
        if handle.complete:
            self.completed.append(handle)
            if self.trace is not None:
                self.trace.complete(
                    self._trace_component,
                    f"prefetch[{handle.length}w stride {handle.stride}]",
                    handle.fire_cycle, self.engine.now,
                    first_word_latency=handle.first_word_latency(),
                )
