"""Performance-monitoring hardware (Section 2, "Performance monitoring").

Cedar relies on external hardware that collects time-stamped event traces
and histograms of hardware signals: "The event tracers can each collect 1M
events and the histogrammers have 64K 32-bit counters.  These can be
cascaded to capture more events."  Programs can also post software events.

The simulator exposes the same two instruments.  Table 2's first-word
latency and interarrival measurements are taken exactly as the paper
describes: by recording when an address leaves a prefetch unit for the
forward network and when each datum returns via the reverse network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.config import MonitorConfig
from repro.errors import MonitorError


@dataclass(frozen=True)
class TraceEvent:
    """One time-stamped event captured by a tracer."""

    cycle: int
    signal: str
    value: int = 0


class EventTracer:
    """A hardware event tracer: bounded, cascadable capture of events."""

    def __init__(self, config: MonitorConfig, cascade: int = 1) -> None:
        if cascade < 1:
            raise MonitorError(f"cascade factor must be >= 1, got {cascade}")
        self.capacity = config.tracer_capacity_events * cascade
        self._events: List[TraceEvent] = []
        self.dropped = 0
        self._armed = False

    def start(self) -> None:
        self._armed = True

    def stop(self) -> None:
        self._armed = False

    @property
    def armed(self) -> bool:
        return self._armed

    def post(self, cycle: int, signal: str, value: int = 0) -> None:
        """Capture an event (hardware signal or software-posted)."""
        if not self._armed:
            return
        if len(self._events) >= self.capacity:
            self.dropped += 1
            return
        self._events.append(TraceEvent(cycle=cycle, signal=signal, value=value))

    def events(self, signal: Optional[str] = None) -> List[TraceEvent]:
        """Captured events, optionally filtered by signal name."""
        if signal is None:
            return list(self._events)
        return [e for e in self._events if e.signal == signal]

    def __len__(self) -> int:
        return len(self._events)


class Histogrammer:
    """64K 32-bit counters indexed by a binned signal value."""

    _COUNTER_MAX = 2**32 - 1

    def __init__(self, config: MonitorConfig, bin_width: int = 1) -> None:
        if bin_width < 1:
            raise MonitorError(f"bin width must be >= 1, got {bin_width}")
        self.num_counters = config.histogrammer_counters
        self.bin_width = bin_width
        self._counters: Dict[int, int] = {}
        self.overflow = 0

    def record(self, value: int) -> None:
        """Increment the counter for ``value``'s bin (saturating)."""
        if value < 0:
            raise MonitorError(f"histogram values are non-negative, got {value}")
        bin_index = value // self.bin_width
        if bin_index >= self.num_counters:
            self.overflow += 1
            return
        current = self._counters.get(bin_index, 0)
        if current < self._COUNTER_MAX:
            self._counters[bin_index] = current + 1

    def counts(self) -> Dict[int, int]:
        """Non-zero (bin index -> count) pairs."""
        return dict(self._counters)

    @property
    def total(self) -> int:
        return sum(self._counters.values())

    def mean(self) -> float:
        """Mean of the recorded values, using bin midpoints for width > 1."""
        if not self._counters:
            raise MonitorError("histogram is empty")
        weighted = sum(
            (index * self.bin_width + (self.bin_width - 1) / 2) * count
            for index, count in self._counters.items()
        )
        return weighted / self.total

    def percentile(self, fraction: float) -> int:
        """Smallest bin value at or above the given cumulative fraction."""
        if not 0 < fraction <= 1:
            raise MonitorError(f"fraction must be in (0, 1], got {fraction}")
        if not self._counters:
            raise MonitorError("histogram is empty")
        target = fraction * self.total
        cumulative = 0
        for index in sorted(self._counters):
            cumulative += self._counters[index]
            if cumulative >= target:
                return index * self.bin_width
        raise AssertionError("unreachable: cumulative covers total")


class PerformanceMonitor:
    """The workstation-side collection of tracers and histogrammers."""

    def __init__(self, config: MonitorConfig) -> None:
        self.config = config
        self._tracers: Dict[str, EventTracer] = {}
        self._histograms: Dict[str, Histogrammer] = {}

    def tracer(self, name: str, cascade: int = 1) -> EventTracer:
        """Get or create a named event tracer."""
        if name not in self._tracers:
            self._tracers[name] = EventTracer(self.config, cascade=cascade)
        return self._tracers[name]

    def histogram(self, name: str, bin_width: int = 1) -> Histogrammer:
        """Get or create a named histogrammer."""
        if name not in self._histograms:
            self._histograms[name] = Histogrammer(self.config, bin_width=bin_width)
        return self._histograms[name]

    def start_all(self) -> None:
        for tracer in self._tracers.values():
            tracer.start()

    def stop_all(self) -> None:
        for tracer in self._tracers.values():
            tracer.stop()

    def record_prefetch(self, handle) -> None:
        """File one completed prefetch's Table 2 metrics.

        Args:
            handle: A completed :class:`repro.hardware.prefetch.PrefetchHandle`.
        """
        self.histogram("first_word_latency").record(handle.first_word_latency())
        interarrival = self.histogram("interarrival")
        for gap in handle.interarrival_times():
            interarrival.record(gap)

    def latency_summary(self) -> Tuple[float, float]:
        """(mean first-word latency, mean interarrival) in cycles."""
        return (
            self.histogram("first_word_latency").mean(),
            self.histogram("interarrival").mean(),
        )
