"""Performance-monitoring hardware (Section 2, "Performance monitoring").

Cedar relies on external hardware that collects time-stamped event traces
and histograms of hardware signals: "The event tracers can each collect 1M
events and the histogrammers have 64K 32-bit counters.  These can be
cascaded to capture more events."  Programs can also post software events.

The simulator exposes the same two instruments.  Table 2's first-word
latency and interarrival measurements are taken exactly as the paper
describes: by recording when an address leaves a prefetch unit for the
forward network and when each datum returns via the reverse network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.config import MonitorConfig
from repro.errors import MonitorError


@dataclass(frozen=True)
class TraceEvent:
    """One time-stamped event captured by a tracer."""

    cycle: int
    signal: str
    value: int = 0


class EventTracer:
    """A hardware event tracer: bounded, cascadable capture of events."""

    def __init__(self, config: MonitorConfig, cascade: int = 1) -> None:
        if cascade < 1:
            raise MonitorError(f"cascade factor must be >= 1, got {cascade}")
        self.capacity = config.tracer_capacity_events * cascade
        self._events: List[TraceEvent] = []
        self.dropped = 0
        self._armed = False

    def start(self) -> None:
        self._armed = True

    def stop(self) -> None:
        self._armed = False

    @property
    def armed(self) -> bool:
        return self._armed

    @property
    def full(self) -> bool:
        """True when the capture buffer is at capacity (posts will drop).

        Distinguishes "stopped" (not armed, drops silently by design) from
        "full" (armed but out of capacity; cascade more tracers).
        """
        return len(self._events) >= self.capacity

    def post(self, cycle: int, signal: str, value: int = 0) -> None:
        """Capture an event (hardware signal or software-posted)."""
        if not self._armed:
            return
        if len(self._events) >= self.capacity:
            self.dropped += 1
            return
        self._events.append(TraceEvent(cycle=cycle, signal=signal, value=value))

    def events(self, signal: Optional[str] = None) -> List[TraceEvent]:
        """Captured events, optionally filtered by signal name."""
        if signal is None:
            return list(self._events)
        return [e for e in self._events if e.signal == signal]

    def __len__(self) -> int:
        return len(self._events)


class Histogrammer:
    """64K 32-bit counters indexed by a binned signal value."""

    _COUNTER_MAX = 2**32 - 1

    def __init__(self, config: MonitorConfig, bin_width: int = 1) -> None:
        if bin_width < 1:
            raise MonitorError(f"bin width must be >= 1, got {bin_width}")
        self.num_counters = config.histogrammer_counters
        self.bin_width = bin_width
        self._counters: Dict[int, int] = {}
        self.overflow = 0

    def record(self, value: int) -> None:
        """Increment the counter for ``value``'s bin (saturating)."""
        if value < 0:
            raise MonitorError(f"histogram values are non-negative, got {value}")
        bin_index = value // self.bin_width
        if bin_index >= self.num_counters:
            self.overflow += 1
            return
        current = self._counters.get(bin_index, 0)
        if current < self._COUNTER_MAX:
            self._counters[bin_index] = current + 1

    def counts(self) -> Dict[int, int]:
        """Non-zero (bin index -> count) pairs."""
        return dict(self._counters)

    @property
    def total(self) -> int:
        return sum(self._counters.values())

    def mean(self) -> float:
        """Mean of the recorded values, using bin midpoints for width > 1."""
        if not self._counters:
            raise MonitorError("histogram is empty")
        weighted = sum(
            (index * self.bin_width + (self.bin_width - 1) / 2) * count
            for index, count in self._counters.items()
        )
        return weighted / self.total

    def percentile(self, fraction: float) -> int:
        """Smallest bin value at or above the given cumulative fraction."""
        if not 0 < fraction <= 1:
            raise MonitorError(f"fraction must be in (0, 1], got {fraction}")
        if not self._counters:
            raise MonitorError("histogram is empty")
        target = fraction * self.total
        cumulative = 0
        for index in sorted(self._counters):
            cumulative += self._counters[index]
            if cumulative >= target:
                return index * self.bin_width
        raise AssertionError("unreachable: cumulative covers total")


class PerformanceMonitor:
    """The workstation-side collection of tracers and histogrammers.

    When connected to the machine's trace bus (:meth:`connect`), the monitor
    is a *consumer* of bus signals, exactly as the real hardware monitors
    were cabled to machine signals: ``prefetch.first_word_latency`` and
    ``prefetch.interarrival`` feed the Table 2 histogrammers, and
    ``software.event`` feeds the software event tracer.  Standalone (no bus)
    operation still works for unit use.
    """

    #: Bus signals the monitor's instruments subscribe to.
    FIRST_WORD_SIGNAL = "prefetch.first_word_latency"
    INTERARRIVAL_SIGNAL = "prefetch.interarrival"
    SOFTWARE_SIGNAL = "software.event"
    #: Announced on the bus by :meth:`connect`, carrying the monitor itself,
    #: so post-run collectors can find monitors built deep inside drivers.
    CONNECTED_SIGNAL = "monitor.connected"

    def __init__(self, config: MonitorConfig) -> None:
        self.config = config
        self._tracers: Dict[str, EventTracer] = {}
        self._histograms: Dict[str, Histogrammer] = {}
        self._bus = None

    def connect(self, bus) -> None:
        """Cable this monitor's instruments onto a trace-bus's signals.

        Args:
            bus: A :class:`repro.trace.Tracer`; its publish/subscribe side
                always delivers, so the Table 2 measurements are identical
                whether or not timeline recording is enabled.
        """
        self._bus = bus
        bus.subscribe(
            self.FIRST_WORD_SIGNAL,
            lambda value: self.histogram("first_word_latency").record(value),
        )
        bus.subscribe(
            self.INTERARRIVAL_SIGNAL,
            lambda value: self.histogram("interarrival").record(value),
        )
        bus.subscribe(
            self.SOFTWARE_SIGNAL,
            lambda event: self.tracer("software").post(*event),
        )
        bus.publish(self.CONNECTED_SIGNAL, self)

    def tracer(self, name: str, cascade: int = 1) -> EventTracer:
        """Get or create a named event tracer."""
        if name not in self._tracers:
            self._tracers[name] = EventTracer(self.config, cascade=cascade)
        return self._tracers[name]

    def histogram(self, name: str, bin_width: int = 1) -> Histogrammer:
        """Get or create a named histogrammer."""
        if name not in self._histograms:
            self._histograms[name] = Histogrammer(self.config, bin_width=bin_width)
        return self._histograms[name]

    def start_all(self) -> None:
        for tracer in self._tracers.values():
            tracer.start()

    def stop_all(self) -> None:
        for tracer in self._tracers.values():
            tracer.stop()

    def record_prefetch(self, handle) -> None:
        """File one completed prefetch's Table 2 metrics.

        When a bus is connected the measurements travel as signals (which the
        monitor's own subscriptions turn back into histogram records, and
        which any other bus consumer can also observe); standalone monitors
        record directly.

        Args:
            handle: A completed :class:`repro.hardware.prefetch.PrefetchHandle`.
        """
        if self._bus is not None:
            self._bus.publish(self.FIRST_WORD_SIGNAL, handle.first_word_latency())
            for gap in handle.interarrival_times():
                self._bus.publish(self.INTERARRIVAL_SIGNAL, gap)
            return
        self.histogram("first_word_latency").record(handle.first_word_latency())
        interarrival = self.histogram("interarrival")
        for gap in handle.interarrival_times():
            interarrival.record(gap)

    def histogram_summaries(self) -> Dict[str, Dict[str, float]]:
        """{name: {count, mean, p90, max}} for every histogrammer.

        Empty histograms report only their zero count, so collectors can
        drain a monitor that never saw a completed prefetch.
        """
        summaries: Dict[str, Dict[str, float]] = {}
        for name, histogram in sorted(self._histograms.items()):
            if histogram.total == 0:
                summaries[name] = {"count": 0}
                continue
            max_bin = max(histogram.counts())
            summaries[name] = {
                "count": histogram.total,
                "mean": histogram.mean(),
                "p90": float(histogram.percentile(0.9)),
                "max": float(max_bin * histogram.bin_width),
            }
        return summaries

    def tracer_summaries(self) -> Dict[str, Dict[str, int]]:
        """{name: {events, dropped}} for every hardware event tracer."""
        return {
            name: {"events": len(tracer), "dropped": tracer.dropped}
            for name, tracer in sorted(self._tracers.items())
        }

    def latency_summary(self) -> Tuple[float, float]:
        """(mean first-word latency, mean interarrival) in cycles.

        Raises:
            MonitorError: Naming the histogram(s) with no samples, instead of
                the bare "histogram is empty" the instruments themselves give.
        """
        missing = [
            name
            for name in ("first_word_latency", "interarrival")
            if self.histogram(name).total == 0
        ]
        if missing:
            raise MonitorError(
                "latency_summary() needs samples in histogram(s) "
                + ", ".join(repr(name) for name in missing)
                + "; record at least one completed prefetch "
                "(record_prefetch) of length >= 2 first"
            )
        return (
            self.histogram("first_word_latency").mean(),
            self.histogram("interarrival").mean(),
        )
