"""Interleaved global-memory modules (Section 2, "Memory Hierarchy").

Global memory is double-word (8-byte) interleaved and aligned; each module
serves one word per ``module_cycle_time`` cycles, giving the system its
768 MB/s peak.  A module pulls requests from its forward-network delivery
queue (so a busy module back-pressures the network), services them in FIFO
order, and injects replies into the reverse network -- stalling, again with
back-pressure, when the reverse network entry is full.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.config import GlobalMemoryConfig, SyncConfig
from repro.errors import SimulationError
from repro.hardware import sanitize
from repro.hardware.engine import Engine
from repro.hardware.network import OmegaNetwork
from repro.hardware.packet import Packet, PacketKind
from repro.hardware.queueing import BoundedWordQueue
from repro.hardware.sync_processor import SyncProcessor

#: Lower-case span labels, resolved once instead of per-request.
_KIND_NAMES = {kind: kind.name.lower() for kind in PacketKind}


def module_for_address(
    address: int, num_modules: int, interleave_words: int = 1
) -> int:
    """Module serving a word address.

    ``interleave_words`` consecutive words live on one module before the
    interleave advances (1 = the paper's double-word interleave; the
    machine builder exposes coarser interleaves as a design knob).
    """
    if interleave_words == 1:
        return address % num_modules
    return (address // interleave_words) % num_modules


class MemoryModule:
    """One global-memory module with its synchronization processor."""

    def __init__(
        self,
        engine: Engine,
        index: int,
        config: GlobalMemoryConfig,
        sync_config: SyncConfig,
        forward_queue: BoundedWordQueue,
        reverse: OmegaNetwork,
        sync_handler: Optional[Callable[[Packet, SyncProcessor], object]] = None,
        tracer=None,
        has_sync: bool = True,
    ) -> None:
        self.engine = engine
        self.index = index
        self.config = config
        self.sync_config = sync_config
        self.forward_queue = forward_queue
        self.reverse = reverse
        self.trace = tracer.if_enabled() if tracer is not None else None
        self._trace_component = f"memory.m{index:02d}"
        self._trace_counters = (
            self.trace.counters(self._trace_component)
            if self.trace is not None
            else None
        )
        #: Lazily bound counter slots (-1 until the first bump).
        self._slot_served = -1
        self._slot_busy = -1
        # The synchronization processor rides on the module (Section 2);
        # builder specs may equip only the first N modules, in which case
        # a SYNC packet reaching a bare module is a routing/spec error.
        self.sync: Optional[SyncProcessor] = (
            SyncProcessor(tracer=tracer) if has_sync else None
        )
        self._sync_handler = sync_handler
        self._sanitizer = sanitize.current()
        if self._sanitizer is not None:
            self._sanitizer.register_memory_module(self)
        self._busy = False
        self._pending_reply: Optional[Packet] = None
        self._in_service: Optional[Packet] = None
        self.requests_served = 0
        self.busy_cycles = 0
        forward_queue.add_item_listener(self._wake)

    def _wake(self) -> None:
        if self._busy or self._pending_reply is not None:
            return
        if not self.forward_queue._packets:
            return
        self._busy = True
        request = self.forward_queue.pop()
        if self._sanitizer is not None:
            self._sanitizer.memory_request(self, request)
        service = self._service_cycles(request)
        self.busy_cycles += service
        if self.trace is not None:
            now = self.engine.now
            self.trace.complete(
                self._trace_component, _KIND_NAMES[request.kind],
                now, now + service, address=request.address,
            )
            counters = self._trace_counters
            slot = self._slot_served
            if slot < 0:
                slot = self._slot_served = counters.slot("requests_served")
                self._slot_busy = counters.slot("busy_cycles")
            values = counters.values
            values[slot] += 1
            values[self._slot_busy] += service
        # The in-service request rides on the module (one request in service
        # at a time) rather than in a per-request lambda.
        self._in_service = request
        self.engine.schedule_after(service, self._complete)

    def _service_cycles(self, request: Packet) -> int:
        cycles = self.config.module_cycle_time * max(1, request.payload_words or 1)
        if request.kind is PacketKind.SYNC_REQUEST:
            cycles += self.sync_config.operate_cycles
        return cycles

    def _complete(self) -> None:
        request = self._in_service
        assert request is not None
        self._in_service = None
        self.requests_served += 1
        reply = self._build_reply(request)
        self._busy = False
        if reply is None:
            if self._sanitizer is not None:
                self._sanitizer.memory_write_absorbed(self)
            self._wake()
            return
        # One cycle moves the reply through the module's reverse-network
        # port register; the next access cannot start until the register
        # drains, so a saturated module departs one word per
        # (module_cycle_time + 1) cycles -- the implementation constraint
        # behind the contention Table 2 observes.  Uncontended first-word
        # latency stays at the paper's 8-cycle minimum: 2 forward stages +
        # 3-cycle module + 1 handoff + 2 reverse stages.
        self._pending_reply = reply
        self.engine.schedule_after(1, self._retry_reply)

    def _build_reply(self, request: Packet) -> Optional[Packet]:
        now = self.engine.now
        if request.kind is PacketKind.READ_REQUEST:
            return request.reply(PacketKind.READ_REPLY, words=1, issue_cycle=now)
        if request.kind is PacketKind.WRITE_REQUEST:
            # Writes do not stall a CE (Section 2); the machine is weakly
            # ordered, so no acknowledgement packet is modelled.
            return None
        if request.kind is PacketKind.SYNC_REQUEST:
            if self.sync is None:
                raise SimulationError(
                    f"module {self.index} has no synchronization processor "
                    f"(spec equips {self.config.sync_processor_count} of "
                    f"{self.config.num_modules} modules); SYNC request for "
                    f"address {request.address}"
                )
            outcome = None
            if self._sync_handler is not None:
                outcome = self._sync_handler(request, self.sync)
            return request.reply(
                PacketKind.SYNC_REPLY, words=1, issue_cycle=now, payload=outcome
            )
        raise SimulationError(f"module received unexpected packet {request.kind}")

    def _retry_reply(self) -> None:
        reply = self._pending_reply
        if reply is None:
            return
        if self.reverse.try_inject(self.index, reply):
            if self._sanitizer is not None:
                self._sanitizer.memory_reply(self, reply)
            self._pending_reply = None
            self._wake()
        else:
            self.reverse.on_entry_space(self.index, lambda: self._retry_reply())


class GlobalMemory:
    """All modules plus address-to-module steering.

    ``forward`` is a *delivery seam*, not necessarily a network: the only
    method used is ``forward.delivery_queue(i)``, so partitioned machines
    substitute a :class:`~repro.partition.boundary.BoundaryChannel` whose
    queues are fed across the partition cut (see DESIGN.md §10).
    """

    def __init__(
        self,
        engine: Engine,
        config: GlobalMemoryConfig,
        sync_config: SyncConfig,
        forward: OmegaNetwork,
        reverse: OmegaNetwork,
        sync_handler: Optional[Callable[[Packet, SyncProcessor], object]] = None,
        tracer=None,
    ) -> None:
        self.config = config
        sync_count = config.sync_processor_count
        self.modules = [
            MemoryModule(
                engine=engine,
                index=i,
                config=config,
                sync_config=sync_config,
                forward_queue=forward.delivery_queue(i),
                reverse=reverse,
                sync_handler=sync_handler,
                tracer=tracer,
                has_sync=i < sync_count,
            )
            for i in range(config.num_modules)
        ]

    def module_for(self, address: int) -> MemoryModule:
        return self.modules[
            module_for_address(
                address, self.config.num_modules, self.config.interleave_words
            )
        ]

    @property
    def total_requests_served(self) -> int:
        return sum(m.requests_served for m in self.modules)
