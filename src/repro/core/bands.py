"""Acceptable-performance bands (Section 4.3, "Acceptable Performance Levels").

The paper proposes ``P/2`` and ``P/(2 log P)`` for ``P >= 8`` as the levels
denoting *high* and *acceptable* performance, and "refer[s] to speedups in
the three bands defined by these two levels as high, intermediate, or
unacceptable".  In efficiency terms (Table 6) the cut lines are
``E_p >= 0.5`` and ``E_p >= 1 / (2 log2 P)``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Mapping, Tuple


class Band(enum.Enum):
    """Performance band for a speedup or efficiency at processor count P."""

    HIGH = "high"
    INTERMEDIATE = "intermediate"
    UNACCEPTABLE = "unacceptable"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Below this processor count the P/2 log P bands are not meaningful
#: ("we shall use P/2 and P/2 log P, for P >= 8").
MIN_BAND_PROCESSORS = 8


def band_thresholds(processors: int) -> Tuple[float, float]:
    """(high, acceptable) speedup thresholds for ``processors`` CPUs.

    Returns ``(P/2, P / (2 log2 P))``.

    Raises:
        ValueError: if ``processors`` is below the paper's P >= 8 floor.
    """
    if processors < MIN_BAND_PROCESSORS:
        raise ValueError(
            f"bands are defined for P >= {MIN_BAND_PROCESSORS}, got {processors}"
        )
    high = processors / 2.0
    acceptable = processors / (2.0 * math.log2(processors))
    return high, acceptable


def classify_speedup(speedup: float, processors: int) -> Band:
    """Band of a measured speedup at a processor count."""
    if speedup < 0:
        raise ValueError(f"speedup must be non-negative, got {speedup}")
    high, acceptable = band_thresholds(processors)
    if speedup >= high:
        return Band.HIGH
    if speedup >= acceptable:
        return Band.INTERMEDIATE
    return Band.UNACCEPTABLE


def classify_efficiency(efficiency: float, processors: int) -> Band:
    """Band of an efficiency E_p = speedup / P (Table 6's formulation)."""
    if efficiency < 0:
        raise ValueError(f"efficiency must be non-negative, got {efficiency}")
    return classify_speedup(efficiency * processors, processors)


@dataclass(frozen=True)
class BandCensus:
    """Counts of codes per band, the shape of the paper's Table 6."""

    high: int
    intermediate: int
    unacceptable: int

    @property
    def total(self) -> int:
        return self.high + self.intermediate + self.unacceptable

    def as_dict(self) -> Mapping[str, int]:
        return {
            "high": self.high,
            "intermediate": self.intermediate,
            "unacceptable": self.unacceptable,
        }


def census(efficiencies: Mapping[str, float], processors: int) -> BandCensus:
    """Tally codes into bands from their efficiencies."""
    counts = {Band.HIGH: 0, Band.INTERMEDIATE: 0, Band.UNACCEPTABLE: 0}
    for value in efficiencies.values():
        counts[classify_efficiency(value, processors)] += 1
    return BandCensus(
        high=counts[Band.HIGH],
        intermediate=counts[Band.INTERMEDIATE],
        unacceptable=counts[Band.UNACCEPTABLE],
    )
