"""The paper's evaluation methodology (Section 4.3, "Judging Parallelism").

This package is the most portable contribution of the Cedar paper: abstract
performance metrics (speedup, efficiency, MFLOPS), the stability/instability
measure ``St(P, N, K, e)``, the high / intermediate / unacceptable performance
bands at ``P/2`` and ``P/(2 log2 P)``, and the five Practical Parallelism
Tests (PPT1-PPT5) with report generators.
"""

from repro.core.bands import Band, band_thresholds, classify_efficiency, classify_speedup
from repro.core.metrics import (
    CodeResult,
    Ensemble,
    efficiency,
    harmonic_mean,
    mflops,
    speedup,
)
from repro.core.ppt import (
    PPT1Result,
    PPT2Result,
    PPT3Result,
    PPT4Result,
    PracticalParallelismReport,
    evaluate_ppt1,
    evaluate_ppt2,
    evaluate_ppt3,
    evaluate_ppt4,
)
from repro.core.stability import (
    StabilityResult,
    instability,
    minimal_exclusions_for_stability,
    stability,
)

__all__ = [
    "Band",
    "band_thresholds",
    "classify_efficiency",
    "classify_speedup",
    "CodeResult",
    "Ensemble",
    "efficiency",
    "harmonic_mean",
    "mflops",
    "speedup",
    "StabilityResult",
    "stability",
    "instability",
    "minimal_exclusions_for_stability",
    "PPT1Result",
    "PPT2Result",
    "PPT3Result",
    "PPT4Result",
    "PracticalParallelismReport",
    "evaluate_ppt1",
    "evaluate_ppt2",
    "evaluate_ppt3",
    "evaluate_ppt4",
]
