"""Stability and instability of an ensemble of computations (Section 4.3).

The paper defines stability on ``P`` processors of an ensemble of
computations over ``K`` codes as::

    St(P, N_i, K, e) = min performance(K, e) / max performance(K, e)

where ``e`` computations are excluded from the ensemble because their results
are outliers, and instability ``In`` is the inverse of stability.  A system is
judged *stable* when ``In <= STABILITY_THRESHOLD`` (the paper observes an
instability of about 5 on twenty years of workstations and draws the line at
6) for a small number of exclusions ``e``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Sequence, Tuple

#: "we will define a system as stable if 6 <= St(K, e)" -- in instability
#: terms, stable when In <= 6 (workstation-level variation ~5).
STABILITY_THRESHOLD = 6.0

#: PPT4 uses the tighter range 0.5 <= St <= 1 (In <= 2) when only the data
#: size varies: "an Instability of 2 seems reasonable to expect on
#: workstations as data size varies".
SCALABILITY_THRESHOLD = 2.0


@dataclass(frozen=True)
class StabilityResult:
    """Stability of an ensemble after excluding a chosen set of outliers.

    Attributes:
        stability: ``min rate / max rate`` over the retained codes.
        excluded: Names of the excluded codes.
        retained_min: (code, rate) achieving the minimum after exclusion.
        retained_max: (code, rate) achieving the maximum after exclusion.
    """

    stability: float
    excluded: FrozenSet[str]
    retained_min: Tuple[str, float]
    retained_max: Tuple[str, float]

    @property
    def instability(self) -> float:
        """In = 1 / St."""
        if self.stability == 0:
            raise ValueError("instability undefined for zero stability")
        return 1.0 / self.stability

    @property
    def num_excluded(self) -> int:
        """The e of St(P, N, K, e)."""
        return len(self.excluded)


def _validate_rates(rates: Mapping[str, float]) -> None:
    if not rates:
        raise ValueError("stability of an empty ensemble is undefined")
    for code, rate in rates.items():
        if rate <= 0:
            raise ValueError(f"rate for {code!r} must be positive, got {rate}")


def stability(rates: Mapping[str, float], exclusions: int = 0) -> StabilityResult:
    """St(P, N, K, e) with the best choice of ``exclusions`` outliers.

    The paper excludes "outliers from the ensemble"; outliers may sit at
    either extreme ("several very poor performers (e.g., SPICE) and several
    very high performers"), so the optimal exclusion set is found by
    searching every split of the exclusion budget between the slowest and the
    fastest codes -- the optimum always removes a prefix of the sorted order
    from each end.

    Args:
        rates: Per-code performance (MFLOPS, or any positive rate).
        exclusions: Number of codes to drop (the e in St(P, N, K, e)).

    Returns:
        The maximal-stability result over all exclusion sets of that size.
    """
    _validate_rates(rates)
    if exclusions < 0:
        raise ValueError(f"exclusions must be >= 0, got {exclusions}")
    if exclusions >= len(rates):
        raise ValueError(
            f"cannot exclude {exclusions} of {len(rates)} codes: "
            "at least one code must remain"
        )

    ordered = sorted(rates.items(), key=lambda item: item[1])
    best: StabilityResult | None = None
    for from_bottom in range(exclusions + 1):
        from_top = exclusions - from_bottom
        retained = ordered[from_bottom : len(ordered) - from_top or None]
        low_code, low_rate = retained[0]
        high_code, high_rate = retained[-1]
        candidate = StabilityResult(
            stability=low_rate / high_rate,
            excluded=frozenset(
                code for code, _ in ordered[:from_bottom] + ordered[len(ordered) - from_top :]
            )
            if from_top
            else frozenset(code for code, _ in ordered[:from_bottom]),
            retained_min=(low_code, low_rate),
            retained_max=(high_code, high_rate),
        )
        if best is None or candidate.stability > best.stability:
            best = candidate
    assert best is not None  # exclusions < len(rates) guarantees a candidate
    return best


def instability(rates: Mapping[str, float], exclusions: int = 0) -> float:
    """In(K, e): the inverse of the best achievable stability."""
    return stability(rates, exclusions).instability


def minimal_exclusions_for_stability(
    rates: Mapping[str, float],
    threshold: float = STABILITY_THRESHOLD,
) -> int:
    """Smallest e such that In(K, e) <= threshold.

    This is the paper's question "the number of exceptions required to
    achieve workstation-level stability" (two for Cedar and the Cray 1,
    six for the Y-MP/8).

    Raises:
        ValueError: if no exclusion count below K achieves the threshold.
    """
    _validate_rates(rates)
    for exclusions in range(len(rates)):
        if instability(rates, exclusions) <= threshold:
            return exclusions
    raise ValueError(
        f"no exclusion count below {len(rates)} reaches instability <= {threshold}"
    )


def instability_profile(
    rates: Mapping[str, float], exclusion_counts: Sequence[int]
) -> Dict[int, float]:
    """In(K, e) for each requested e; the rows of the paper's Table 5."""
    profile: Dict[int, float] = {}
    for exclusions in exclusion_counts:
        if exclusions >= len(rates):
            continue
        profile[exclusions] = instability(rates, exclusions)
    return profile


def exhaustive_stability(
    rates: Mapping[str, float], exclusions: int
) -> StabilityResult:
    """Brute-force St over *all* exclusion subsets (for test cross-checks).

    The production :func:`stability` only searches end-of-order exclusion
    sets; this helper proves that restriction is lossless on small inputs.
    """
    _validate_rates(rates)
    if exclusions >= len(rates):
        raise ValueError("at least one code must remain")
    codes = list(rates)
    best: StabilityResult | None = None
    for excluded in itertools.combinations(codes, exclusions):
        retained = {c: rates[c] for c in codes if c not in excluded}
        low_code = min(retained, key=retained.__getitem__)
        high_code = max(retained, key=retained.__getitem__)
        candidate = StabilityResult(
            stability=retained[low_code] / retained[high_code],
            excluded=frozenset(excluded),
            retained_min=(low_code, retained[low_code]),
            retained_max=(high_code, retained[high_code]),
        )
        if best is None or candidate.stability > best.stability:
            best = candidate
    assert best is not None
    return best
