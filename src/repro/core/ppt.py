"""The five Practical Parallelism Tests (Section 4.3).

The paper's "laboratory level" criterion is the Fundamental Principle of
Parallel Processing: clock speed is interchangeable with parallelism while
(A) maintaining delivered performance that is (B) stable over a class of
computations.  PPT1 and PPT2 operationalize (A) and (B); PPT3 and PPT4 add
the commercial criteria of programmability and scalability.  PPT5
(technology rescalability) is a design-level judgment the paper explicitly
defers ("which we shall not deal with further, in this paper"); we expose it
only as a checklist record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.bands import Band, census, classify_efficiency
from repro.core.metrics import Ensemble
from repro.core.stability import (
    SCALABILITY_THRESHOLD,
    STABILITY_THRESHOLD,
    instability_profile,
    minimal_exclusions_for_stability,
)


@dataclass(frozen=True)
class PPT1Result:
    """PPT1, Delivered Performance: bands of a useful set of codes.

    "We conclude ... both the Cray YMP and Cedar are on the average
    acceptable, delivering intermediate parallel performance and thus pass
    PPT1" -- the test passes when no more than a small number of codes fall
    in the unacceptable band.
    """

    machine: str
    processors: int
    bands: Mapping[str, Band]
    max_unacceptable: int = 1

    @property
    def unacceptable_codes(self) -> List[str]:
        return [c for c, b in self.bands.items() if b is Band.UNACCEPTABLE]

    @property
    def passed(self) -> bool:
        return len(self.unacceptable_codes) <= self.max_unacceptable


@dataclass(frozen=True)
class PPT2Result:
    """PPT2, Stable Performance: instability within the workstation range."""

    machine: str
    processors: int
    instability_by_exclusions: Mapping[int, float]
    exclusions_needed: Optional[int]
    threshold: float = STABILITY_THRESHOLD
    max_exclusions: int = 2

    @property
    def passed(self) -> bool:
        """Stable with at most ``max_exclusions`` outliers removed.

        "two exceptions are sufficient on the Cray 1 and Cedar, whereas the
        YMP needs six ... Thus, the YMP cannot be judged as passing PPT2".
        """
        return (
            self.exclusions_needed is not None
            and self.exclusions_needed <= self.max_exclusions
        )


@dataclass(frozen=True)
class PPT3Result:
    """PPT3, Portability/Programmability via compiler-delivered efficiency.

    Judged on the band census of compiler-produced (or automatable)
    versions; the paper's Table 6 view.
    """

    machine: str
    processors: int
    high: int
    intermediate: int
    unacceptable: int

    @property
    def acceptable_fraction(self) -> float:
        total = self.high + self.intermediate + self.unacceptable
        if total == 0:
            raise ValueError("PPT3 requires at least one code")
        return (self.high + self.intermediate) / total

    @property
    def passed(self) -> bool:
        """More than half of the codes reach an acceptable compiler level."""
        return self.acceptable_fraction > 0.5


@dataclass(frozen=True)
class ScalabilityPoint:
    """One (processors, problem_size) observation for PPT4."""

    processors: int
    problem_size: int
    mflops: float
    efficiency: float

    @property
    def band(self) -> Band:
        return classify_efficiency(self.efficiency, self.processors)


@dataclass(frozen=True)
class PPT4Result:
    """PPT4, Code and Architecture Scalability.

    A system is scalable in a range of processor counts and problem sizes
    where (a) efficiency stays in the High or Intermediate band and (b) the
    rate varies by no more than an instability of 2 as data size varies
    (``0.5 <= St(P, N, 1, 0) <= 1``).
    """

    machine: str
    points: Sequence[ScalabilityPoint]
    threshold: float = SCALABILITY_THRESHOLD

    def points_at(
        self, processors: int, min_problem_size: int = 0
    ) -> List[ScalabilityPoint]:
        return [
            p
            for p in self.points
            if p.processors == processors and p.problem_size >= min_problem_size
        ]

    def instability_over_sizes(
        self, processors: int, min_problem_size: int = 0
    ) -> float:
        """Rate variation as the data size alone varies at fixed P."""
        rates = [p.mflops for p in self.points_at(processors, min_problem_size)]
        if len(rates) < 2:
            raise ValueError(
                f"need >= 2 problem sizes at P={processors} to judge scalability"
            )
        return max(rates) / min(rates)

    def band_at(self, processors: int, min_problem_size: int = 0) -> Band:
        """Worst band observed across problem sizes at fixed P."""
        order = [Band.HIGH, Band.INTERMEDIATE, Band.UNACCEPTABLE]
        bands = [p.band for p in self.points_at(processors, min_problem_size)]
        if not bands:
            raise ValueError(f"no observations at P={processors}")
        return max(bands, key=order.index)

    def scalable_processor_counts(self, min_problem_size: int = 0) -> List[int]:
        """Processor counts at which both PPT4 criteria are satisfied.

        The paper judges scalability *over a range* of problem sizes ("the
        system is scalable in a range of processor counts and problem sizes
        where these criteria are satisfied"); ``min_problem_size`` selects
        that range -- debugging-sized runs below it are excluded, exactly as
        the paper's reading excludes them from the high-performance claim.
        """
        counts = sorted({p.processors for p in self.points})
        passing = []
        for processors in counts:
            if len(self.points_at(processors, min_problem_size)) < 2:
                continue
            in_band = (
                self.band_at(processors, min_problem_size)
                is not Band.UNACCEPTABLE
            )
            stable = (
                self.instability_over_sizes(processors, min_problem_size)
                <= self.threshold
            )
            if in_band and stable:
                passing.append(processors)
        return passing

    @property
    def passed(self) -> bool:
        return bool(self.scalable_processor_counts())


@dataclass(frozen=True)
class PPT5Checklist:
    """PPT5, Technology and Scalable Reimplementability (design checklist).

    The paper collects simulation data toward PPT5 but does not evaluate it;
    we record the qualitative answers so reports can display them.
    """

    machine: str
    larger_processor_counts: bool
    new_technology: bool
    notes: str = ""

    @property
    def passed(self) -> bool:
        return self.larger_processor_counts and self.new_technology


def evaluate_ppt1(ensemble: Ensemble, max_unacceptable: int = 1) -> PPT1Result:
    """Classify every code of an ensemble and apply the PPT1 judgment."""
    bands = {
        code: classify_efficiency(eff, ensemble.processors)
        for code, eff in ensemble.efficiencies().items()
    }
    return PPT1Result(
        machine=ensemble.machine,
        processors=ensemble.processors,
        bands=bands,
        max_unacceptable=max_unacceptable,
    )


def evaluate_ppt2(
    ensemble: Ensemble,
    exclusion_counts: Sequence[int] = (0, 2, 6),
    threshold: float = STABILITY_THRESHOLD,
    max_exclusions: int = 2,
) -> PPT2Result:
    """Compute the instability profile and minimal exclusions for PPT2."""
    rates = ensemble.rates()
    profile = instability_profile(rates, exclusion_counts)
    try:
        needed = minimal_exclusions_for_stability(rates, threshold)
    except ValueError:
        needed = None
    return PPT2Result(
        machine=ensemble.machine,
        processors=ensemble.processors,
        instability_by_exclusions=profile,
        exclusions_needed=needed,
        threshold=threshold,
        max_exclusions=max_exclusions,
    )


def evaluate_ppt3(ensemble: Ensemble) -> PPT3Result:
    """Band census of compiler-delivered efficiencies (Table 6 view)."""
    tally = census(ensemble.efficiencies(), ensemble.processors)
    return PPT3Result(
        machine=ensemble.machine,
        processors=ensemble.processors,
        high=tally.high,
        intermediate=tally.intermediate,
        unacceptable=tally.unacceptable,
    )


def evaluate_ppt4(
    machine: str,
    points: Sequence[ScalabilityPoint],
    threshold: float = SCALABILITY_THRESHOLD,
) -> PPT4Result:
    """Bundle scalability observations into a PPT4 judgment."""
    if not points:
        raise ValueError("PPT4 requires at least one observation")
    return PPT4Result(machine=machine, points=tuple(points), threshold=threshold)


@dataclass
class PracticalParallelismReport:
    """All PPT verdicts for one machine, renderable by :mod:`repro.core.report`."""

    machine: str
    ppt1: Optional[PPT1Result] = None
    ppt2: Optional[PPT2Result] = None
    ppt3: Optional[PPT3Result] = None
    ppt4: Optional[PPT4Result] = None
    ppt5: Optional[PPT5Checklist] = None
    notes: Dict[str, str] = field(default_factory=dict)

    def verdicts(self) -> Dict[str, Optional[bool]]:
        """Pass/fail per test; None where the test was not evaluated."""
        return {
            "PPT1": self.ppt1.passed if self.ppt1 else None,
            "PPT2": self.ppt2.passed if self.ppt2 else None,
            "PPT3": self.ppt3.passed if self.ppt3 else None,
            "PPT4": self.ppt4.passed if self.ppt4 else None,
            "PPT5": self.ppt5.passed if self.ppt5 else None,
        }
