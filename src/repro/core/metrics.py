"""Abstract performance metrics used throughout the paper.

"For at least twenty years we have used speedup and efficiency as abstract
measures of performance" (Section 4.3).  The paper measures rate in MFLOPS,
taking floating-point operation counts "from the Cray Hardware Performance
Monitor"; our equivalent is the operation count declared by each workload
model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence


def speedup(serial_seconds: float, parallel_seconds: float) -> float:
    """Speed improvement of a parallel run over the serial run.

    The paper's tables report "speed improvements over the serial execution
    time" of the same code on one CE in scalar mode.
    """
    if serial_seconds <= 0:
        raise ValueError(f"serial time must be positive, got {serial_seconds}")
    if parallel_seconds <= 0:
        raise ValueError(f"parallel time must be positive, got {parallel_seconds}")
    return serial_seconds / parallel_seconds


def efficiency(speedup_value: float, num_processors: int) -> float:
    """Parallel efficiency: speedup divided by processor count."""
    if num_processors < 1:
        raise ValueError(f"processor count must be >= 1, got {num_processors}")
    if speedup_value < 0:
        raise ValueError(f"speedup must be non-negative, got {speedup_value}")
    return speedup_value / num_processors


def mflops(flop_count: float, seconds: float) -> float:
    """Millions of floating-point operations per second."""
    if seconds <= 0:
        raise ValueError(f"time must be positive, got {seconds}")
    if flop_count < 0:
        raise ValueError(f"flop count must be non-negative, got {flop_count}")
    return flop_count / seconds / 1e6


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean, the correct average for rates over a fixed workload.

    Used by the paper to summarize MFLOPS across the Perfect suite
    ("The harmonic mean for the MFLOPS on the YMP/8 is 23.7").
    """
    if not values:
        raise ValueError("harmonic mean of an empty sequence is undefined")
    if any(v <= 0 for v in values):
        raise ValueError("harmonic mean requires strictly positive values")
    return len(values) / sum(1.0 / v for v in values)


@dataclass(frozen=True)
class CodeResult:
    """One code's measured performance on one machine configuration.

    Attributes:
        code: Benchmark code name (e.g. ``"TRFD"``).
        machine: Machine name (e.g. ``"cedar"``, ``"cray-ymp8"``).
        processors: Processor count used for the run.
        serial_seconds: Uniprocessor scalar execution time.
        parallel_seconds: Execution time of the measured version.
        flop_count: Floating-point operations performed (monitor count).
        problem_size: Optional problem-size label for scalability studies.
        version: Label of the program version (e.g. ``"automatable"``).
    """

    code: str
    machine: str
    processors: int
    serial_seconds: float
    parallel_seconds: float
    flop_count: float = 0.0
    problem_size: Optional[int] = None
    version: str = "automatable"

    @property
    def speedup(self) -> float:
        """Speed improvement over the serial run."""
        return speedup(self.serial_seconds, self.parallel_seconds)

    @property
    def efficiency(self) -> float:
        """Speedup divided by processor count."""
        return efficiency(self.speedup, self.processors)

    @property
    def mflops(self) -> float:
        """Delivered MFLOPS of the measured version."""
        return mflops(self.flop_count, self.parallel_seconds)


@dataclass
class Ensemble:
    """An ensemble of code results on one machine, as used by St(P, N, K, e).

    The stability measure is defined "on P processors of an ensemble of
    computations over K codes"; this container holds those K results and
    offers the rate and speedup views that the methodology consumes.
    """

    machine: str
    processors: int
    results: List[CodeResult] = field(default_factory=list)

    def add(self, result: CodeResult) -> None:
        """Append a code result, validating machine and processor count."""
        if result.machine != self.machine:
            raise ValueError(
                f"result machine {result.machine!r} does not match "
                f"ensemble machine {self.machine!r}"
            )
        if result.processors != self.processors:
            raise ValueError(
                f"result processors {result.processors} do not match "
                f"ensemble processors {self.processors}"
            )
        self.results.append(result)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def codes(self) -> List[str]:
        """Names of the codes in the ensemble, in insertion order."""
        return [r.code for r in self.results]

    def rates(self) -> Dict[str, float]:
        """MFLOPS per code (the paper's rate measure for stability)."""
        return {r.code: r.mflops for r in self.results}

    def speedups(self) -> Dict[str, float]:
        """Speedup per code."""
        return {r.code: r.speedup for r in self.results}

    def efficiencies(self) -> Dict[str, float]:
        """Efficiency per code."""
        return {r.code: r.efficiency for r in self.results}

    def harmonic_mean_mflops(self) -> float:
        """Harmonic mean of the per-code MFLOPS."""
        return harmonic_mean([r.mflops for r in self.results])


def ensemble_from_results(results: Iterable[CodeResult]) -> Ensemble:
    """Build an ensemble from results that share a machine and CPU count."""
    materialized = list(results)
    if not materialized:
        raise ValueError("cannot build an ensemble from zero results")
    first = materialized[0]
    ensemble = Ensemble(machine=first.machine, processors=first.processors)
    for result in materialized:
        ensemble.add(result)
    return ensemble
