"""ASCII report generators: tables and the Figure 3 scatter plot.

The experiment drivers use these helpers to print "the same rows/series the
paper reports" without depending on any plotting library.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.bands import Band, band_thresholds, classify_efficiency


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a list of rows as a fixed-width ASCII table."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must have one cell per header")
    cells = [[_format_cell(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    rule = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(rule)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    if value is None:
        return "-"
    return str(value)


def efficiency_scatter(
    x_efficiencies: Mapping[str, float],
    y_efficiencies: Mapping[str, float],
    x_processors: int,
    y_processors: int,
    x_label: str = "Cray YMP/8",
    y_label: str = "Cedar",
    width: int = 51,
    height: int = 21,
) -> str:
    """ASCII rendition of Figure 3: per-code efficiency on two machines.

    Each shared code becomes one point labelled by the band letter of the
    *y* machine (U/I/H, matching the figure's legend); the two machines'
    band thresholds are drawn as axis annotations in the footer.
    """
    shared = sorted(set(x_efficiencies) & set(y_efficiencies))
    if not shared:
        raise ValueError("no codes are present on both machines")
    grid = [[" "] * width for _ in range(height)]
    letter = {Band.HIGH: "H", Band.INTERMEDIATE: "I", Band.UNACCEPTABLE: "U"}
    for code in shared:
        x = min(max(x_efficiencies[code], 0.0), 1.0)
        y = min(max(y_efficiencies[code], 0.0), 1.0)
        col = min(int(x * (width - 1)), width - 1)
        row = height - 1 - min(int(y * (height - 1)), height - 1)
        band = classify_efficiency(y_efficiencies[code], y_processors)
        grid[row][col] = letter[band]
    lines = [f"{y_label} efficiency (rows) vs {x_label} efficiency (cols)"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    x_high, x_ok = band_thresholds(x_processors)
    y_high, y_ok = band_thresholds(y_processors)
    lines.append(
        f"bands ({y_label}): H >= {y_high / y_processors:.2f}, "
        f"I >= {y_ok / y_processors:.2f}; "
        f"({x_label}): H >= {x_high / x_processors:.2f}, "
        f"I >= {x_ok / x_processors:.2f}"
    )
    lines.append("legend: U-Unacceptable  I-Intermediate  H-High")
    return "\n".join(lines)


def band_summary(
    bands: Mapping[str, Band],
) -> Dict[Band, List[str]]:
    """Group code names by band, for the PPT1/Figure 3 narratives."""
    grouped: Dict[Band, List[str]] = {b: [] for b in Band}
    for code in sorted(bands):
        grouped[bands[code]].append(code)
    return grouped


def fraction_description(bands: Mapping[str, Band]) -> str:
    """A sentence in the paper's style: "about one-quarter high and ...".

    Used by the Figure 3 experiment to echo the paper's reading of the plot.
    """
    total = len(bands)
    if total == 0:
        raise ValueError("no codes to describe")
    grouped = band_summary(bands)
    parts = []
    for band in (Band.HIGH, Band.INTERMEDIATE, Band.UNACCEPTABLE):
        count = len(grouped[band])
        parts.append(f"{count}/{total} {band.value}")
    return ", ".join(parts)


def format_ratio_rows(
    rows: Sequence[Tuple[str, float, float]],
    left: str,
    right: str,
) -> str:
    """Table of per-code values on two machines plus their ratio."""
    table_rows = [
        (code, left_value, right_value, left_value / right_value)
        for code, left_value, right_value in rows
    ]
    return format_table(
        headers=("Code", left, right, f"{left}/{right}"),
        rows=table_rows,
    )
