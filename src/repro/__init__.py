"""cedar-repro: reproduction of "The Cedar System and an Initial
Performance Study" (ISCA 1993).

The package rebuilds, in Python, everything the paper's evaluation rests
on:

* :mod:`repro.hardware` -- a cycle-level discrete-event simulator of the
  Cedar multiprocessor (clusters, vector CEs, prefetch units, the
  shuffle-exchange networks, interleaved global memory with
  synchronization processors, performance-monitoring hardware).
* :mod:`repro.lang` / :mod:`repro.model` -- the CEDAR FORTRAN programming
  model and the calibrated analytic machine model that executes whole
  programs.
* :mod:`repro.compiler` -- KAP-1988 vs the "automatable" restructurer
  (privatization, reductions, induction substitution, run-time tests,
  balanced stripmining, prefetch insertion) on an affine loop-nest IR.
* :mod:`repro.kernels` / :mod:`repro.perfect` -- the Section 4.1 kernels
  and the 13 Perfect Benchmarks workload models.
* :mod:`repro.baselines` -- Cray Y-MP/8, Cray 1 and CM-5 comparison
  models.
* :mod:`repro.core` -- the paper's methodology: stability/instability,
  performance bands, and the five Practical Parallelism Tests.
* :mod:`repro.experiments` -- one driver per table/figure
  (``cedar-repro run table1`` ... ``figure3`` ... ``ppt4``).
"""

from repro.config import CedarConfig, DEFAULT_CONFIG
from repro.core import (
    Band,
    classify_efficiency,
    classify_speedup,
    instability,
    stability,
)
from repro.hardware.machine import CedarMachine
from repro.model.machine_model import CedarMachineModel

__version__ = "1.0.0"

from repro.version import version_fingerprint  # noqa: E402  (needs __version__)

__all__ = [
    "version_fingerprint",
    "CedarConfig",
    "DEFAULT_CONFIG",
    "CedarMachine",
    "CedarMachineModel",
    "Band",
    "classify_efficiency",
    "classify_speedup",
    "stability",
    "instability",
    "__version__",
]
