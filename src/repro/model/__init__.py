"""The analytic Cedar machine model.

Whole applications (the Perfect codes) are far too large to run through the
cycle-level simulator, so this package executes :mod:`repro.lang` programs
against calibrated cost equations: loop start-up and iteration-fetch costs
(Section 3.2), prefetch effectiveness versus processor count (calibrated
from the cycle simulator, Section 4.1), bandwidth ceilings per memory level,
vector start-up amortization, barrier, reduction, I/O and paging costs.
"""

from repro.model.costs import CostModel, MemoryLevelRates
from repro.model.machine_model import CedarMachineModel, ExecutionReport

__all__ = [
    "CostModel",
    "MemoryLevelRates",
    "CedarMachineModel",
    "ExecutionReport",
]
