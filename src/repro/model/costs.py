"""Cost equations of the analytic machine model.

Every constant is traceable either to Section 2/3 of the paper (loop
start-up latencies, bandwidths, the 13-cycle global latency) or to the cycle
simulator (the prefetch-effectiveness curve, which
:mod:`repro.model.calibration` can re-derive from Table 2 runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.config import CE_CYCLE_SECONDS, CedarConfig, DEFAULT_CONFIG
from repro.lang.loops import LoopKind
from repro.lang.placement import Placement
from repro.lang.runtime import RuntimeOptions


#: Words/cycle one CE sustains from global memory through the PFU, by total
#: CEs making global accesses.  Produced by
#: :func:`repro.model.calibration.calibrate_prefetch_curve` from the cycle
#: simulator's VL runs (the Table 2 experiment viewed as a rate): near the
#: port rate for one CE, dropping steeply as memory-module and switch
#: contention grow (interarrival 1 -> ~3 cycles at 32 CEs).
DEFAULT_PREFETCH_RATE_CURVE: Mapping[int, float] = {
    1: 0.82,
    8: 0.75,
    16: 0.53,
    24: 0.36,
    32: 0.27,
}

#: Scalar floating-point rate of a CE, flops per cycle (a 68020-class scalar
#: pipeline delivers roughly one flop every five cycles).
SCALAR_FLOPS_PER_CYCLE = 0.2

#: Peak chained vector rate: one element per cycle, two chained operations.
VECTOR_PEAK_FLOPS_PER_CYCLE = 2.0

#: I/O rates come from the Xylem file service (the cost authority; see
#: repro.xylem.filesystem).  The BDNA fix in Section 4.2 was precisely
#: replacing formatted with unformatted I/O for a large whole-code win.
from repro.xylem.filesystem import (  # noqa: E402  (cost constants)
    FORMATTED_PENALTY as FORMATTED_IO_PENALTY,
    UNFORMATTED_BYTES_PER_SECOND as IO_BYTES_PER_SECOND,
)

#: Cycles for one multicluster barrier through global memory: every cluster
#: round-trips sync words, ~10 global latencies with contention.
MULTICLUSTER_BARRIER_CYCLES = 1200.0

#: Cycles for an intra-cluster barrier via the concurrency-control bus.
CLUSTER_BARRIER_CYCLES = 30.0


@dataclass(frozen=True)
class MemoryLevelRates:
    """Sustained words/cycle per CE for each placement and access mode."""

    global_prefetched: float
    global_vector_no_prefetch: float
    global_scalar: float
    cluster_vector: float
    cluster_scalar: float


class CostModel:
    """Turns machine configuration + runtime options into cost equations."""

    def __init__(
        self,
        config: CedarConfig = DEFAULT_CONFIG,
        prefetch_rate_curve: Mapping[int, float] = DEFAULT_PREFETCH_RATE_CURVE,
    ) -> None:
        self.config = config
        self.curve: Dict[int, float] = dict(sorted(prefetch_rate_curve.items()))
        if not self.curve:
            raise ValueError("prefetch rate curve cannot be empty")

    # -- scheduling ---------------------------------------------------------

    def loop_startup_cycles(self, kind: LoopKind) -> float:
        """One-time cost to spread a DOALL (Section 3.2)."""
        sync = self.config.sync
        if kind is LoopKind.XDOALL:
            return sync.xdoall_startup_seconds / CE_CYCLE_SECONDS
        if kind is LoopKind.SDOALL:
            # Scheduled per cluster through global memory: the same run-time
            # library path, amortized over clusters rather than CEs.
            return sync.xdoall_startup_seconds / CE_CYCLE_SECONDS / 2.0
        return float(self.config.ccb.concurrent_start_cycles)

    def iteration_fetch_cycles(self, kind: LoopKind, options: RuntimeOptions) -> float:
        """Cost to claim the next iteration when self-scheduling."""
        sync = self.config.sync
        if kind is LoopKind.CDOALL:
            return float(self.config.ccb.self_schedule_cycles)
        base = sync.xdoall_iteration_fetch_seconds / CE_CYCLE_SECONDS
        if not options.use_cedar_sync:
            base *= sync.no_cedar_sync_fetch_multiplier
        return base

    # -- memory -------------------------------------------------------------

    def prefetch_words_per_cycle(self, active_ces: int) -> float:
        """Interpolated per-CE PFU stream rate under contention."""
        if active_ces < 1:
            raise ValueError(f"need >= 1 CE, got {active_ces}")
        points = sorted(self.curve.items())
        if active_ces <= points[0][0]:
            return points[0][1]
        for (p0, r0), (p1, r1) in zip(points, points[1:]):
            if active_ces <= p1:
                t = (active_ces - p0) / (p1 - p0)
                return r0 + t * (r1 - r0)
        return points[-1][1]

    def memory_rates(self, active_ces: int) -> MemoryLevelRates:
        """Per-CE sustained rates at a given machine-wide activity level."""
        gm = self.config.global_memory
        latency = float(
            gm.ce_buffer_cycles + self.config.network.min_first_word_latency_cycles
        )
        per_ce_in_cluster = self.config.ces_per_cluster
        return MemoryLevelRates(
            global_prefetched=self.prefetch_words_per_cycle(active_ces),
            # Two outstanding requests over the 13-cycle latency.
            global_vector_no_prefetch=self.config.cache.outstanding_misses_per_ce
            / latency,
            global_scalar=1.0 / latency,
            # Cache supplies one word/cycle/CE when all CEs stream.
            cluster_vector=self.config.cache.words_per_cycle / per_ce_in_cluster,
            cluster_scalar=0.5,
        )

    def words_per_cycle(
        self,
        placement: Placement,
        active_ces: int,
        options: RuntimeOptions,
        prefetchable_fraction: float,
        scalar_fraction: float,
    ) -> float:
        """Blended per-CE rate for a loop body's memory traffic."""
        rates = self.memory_rates(active_ces)
        if placement is Placement.GLOBAL:
            vector_rate = (
                rates.global_prefetched
                if options.use_prefetch
                else rates.global_vector_no_prefetch
            )
            covered = prefetchable_fraction if options.use_prefetch else 0.0
            vector_part = covered
            fallthrough = 1.0 - covered - scalar_fraction
            if fallthrough < 0.0:
                fallthrough = 0.0
                scalar_fraction = 1.0 - covered
            denominator = (
                vector_part / vector_rate
                + fallthrough / rates.global_vector_no_prefetch
                + scalar_fraction / rates.global_scalar
            )
        else:
            vector_part = 1.0 - scalar_fraction
            denominator = (
                vector_part / rates.cluster_vector
                + scalar_fraction / rates.cluster_scalar
            )
        if denominator <= 0:
            raise ValueError("memory mix produced a non-positive service demand")
        return 1.0 / denominator

    # -- computation ---------------------------------------------------------

    def flops_per_cycle(
        self, vector_fraction: float, vector_length: int, scalar_only: bool = False
    ) -> float:
        """Blended per-CE arithmetic rate."""
        if scalar_only:
            return SCALAR_FLOPS_PER_CYCLE
        startup = self.config.vector.startup_cycles
        vector_rate = VECTOR_PEAK_FLOPS_PER_CYCLE * vector_length / (
            vector_length + startup
        )
        if vector_fraction >= 1.0:
            return vector_rate
        denominator = (
            vector_fraction / vector_rate
            + (1.0 - vector_fraction) / SCALAR_FLOPS_PER_CYCLE
        )
        return 1.0 / denominator

    # -- other constructs ------------------------------------------------------

    def barrier_cycles(self, multicluster: bool, num_clusters: int) -> float:
        if multicluster and num_clusters > 1:
            return MULTICLUSTER_BARRIER_CYCLES * (1.0 + 0.2 * (num_clusters - 1))
        return CLUSTER_BARRIER_CYCLES

    def reduction_cycles(self, elements: int, options: RuntimeOptions) -> float:
        """Tree reduction through global synchronization words."""
        latency = 13.0
        per_element = latency if options.use_cedar_sync else 3.0 * latency
        return per_element * max(1.0, float(elements))

    def io_seconds(self, byte_count: float, formatted: bool) -> float:
        rate = IO_BYTES_PER_SECOND
        if formatted:
            rate /= FORMATTED_IO_PENALTY
        return byte_count / rate

    def move_cycles(self, words: float, active_ces: int) -> float:
        """Explicit global<->cluster block move, streamed through the PFUs."""
        rate = self.prefetch_words_per_cycle(active_ces)
        return words / rate
