"""Executes :mod:`repro.lang` programs against the analytic cost model.

The model walks a program's constructs and charges each one compute time,
memory time (the two overlap: vector loads stream while arithmetic runs, so
a body costs ``max(compute, memory)``), scheduling overhead, and
synchronization/I-O/move costs.  It produces both the parallel execution
time under a set of :class:`RuntimeOptions` and the uniprocessor scalar time
the paper's speed improvements are measured against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.config import CE_CYCLE_SECONDS, CedarConfig, DEFAULT_CONFIG
from repro.errors import ProgramError
from repro.lang.loops import (
    Barrier,
    Construct,
    DataMove,
    Doall,
    IOSection,
    LoopKind,
    Reduction,
    SerialSection,
    VirtualMemoryActivity,
    Work,
)
from repro.lang.placement import Placement
from repro.lang.program import Program
from repro.lang.runtime import DEFAULT_OPTIONS, RuntimeOptions, Schedule
from repro.model.costs import CostModel
from repro.trace import Tracer, current_tracer


@dataclass
class ExecutionReport:
    """Timing of one program execution."""

    program: str
    seconds: float
    processors: int
    flops: float
    breakdown: Dict[str, float] = field(default_factory=dict)

    @property
    def mflops(self) -> float:
        if self.seconds <= 0:
            raise ValueError("non-positive execution time")
        return self.flops / self.seconds / 1e6

    def add(self, label: str, seconds: float) -> None:
        self.breakdown[label] = self.breakdown.get(label, 0.0) + seconds


class CedarMachineModel:
    """The analytic Cedar: executes programs, reports seconds and MFLOPS."""

    def __init__(
        self,
        config: CedarConfig = DEFAULT_CONFIG,
        cost_model: Optional[CostModel] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.config = config
        self.costs = cost_model or CostModel(config)
        # Same ambient-tracer rule as CedarMachine: explicit > tracing() scope.
        self.tracer = tracer if tracer is not None else current_tracer()

    # -- public API -----------------------------------------------------------

    def execute(
        self,
        program: Program,
        options: RuntimeOptions = DEFAULT_OPTIONS,
    ) -> ExecutionReport:
        """Parallel execution on the whole machine (or one cluster)."""
        clusters = 1 if options.single_cluster else self.config.num_clusters
        processors = clusters * self.config.ces_per_cluster
        report = ExecutionReport(
            program=program.name,
            seconds=0.0,
            processors=processors,
            flops=program.total_flops(),
        )
        trace = self.tracer.if_enabled() if self.tracer is not None else None
        for construct in program.body:
            seconds = self._time_construct(construct, options, clusters)
            if trace is not None:
                self._trace_construct(trace, program.name, construct,
                                      report.seconds, seconds)
            report.seconds += seconds
            report.add(self._label(construct), seconds)
        return report

    def _trace_construct(
        self, trace: Tracer, program: str, construct: Construct,
        start_seconds: float, seconds: float,
    ) -> None:
        """One cost-attribution span per timed construct.

        The analytic model has no event clock, so spans carry explicit times:
        the cursor of accumulated program seconds, converted to CE cycles so
        model and hardware traces share a time base.
        """
        label = self._label(construct)
        start = round(start_seconds / CE_CYCLE_SECONDS)
        end = round((start_seconds + seconds) / CE_CYCLE_SECONDS)
        trace.complete(
            "model", f"{program}.{label}", start, end,
            kind=type(construct).__name__, seconds=seconds,
        )
        trace.count("model", f"seconds[{label}]", seconds)
        trace.count("model", "constructs_timed")

    def execute_serial(self, program: Program) -> ExecutionReport:
        """Uniprocessor scalar execution (the speed-improvement baseline)."""
        report = ExecutionReport(
            program=program.name, seconds=0.0, processors=1,
            flops=program.total_flops(),
        )
        for construct in program.body:
            seconds = self._serial_seconds(construct)
            report.seconds += seconds
            report.add(self._label(construct), seconds)
        return report

    # -- parallel timing -------------------------------------------------------

    def _time_construct(
        self, construct: Construct, options: RuntimeOptions, clusters: int
    ) -> float:
        if isinstance(construct, SerialSection):
            return self._cycles_to_seconds(
                self._body_cycles(
                    construct.work, construct.placement, 1, options,
                    prefetchable=construct.prefetchable_fraction,
                )
            )
        if isinstance(construct, Doall):
            return self._cycles_to_seconds(
                self._doall_cycles(construct, options, clusters)
            )
        if isinstance(construct, Barrier):
            per = self.costs.barrier_cycles(construct.multicluster, clusters)
            return self._cycles_to_seconds(per * construct.count)
        if isinstance(construct, Reduction):
            return self._cycles_to_seconds(
                self.costs.reduction_cycles(construct.elements, options)
            )
        if isinstance(construct, IOSection):
            return self.costs.io_seconds(construct.bytes, construct.formatted)
        if isinstance(construct, DataMove):
            ces = clusters * self.config.ces_per_cluster
            return self._cycles_to_seconds(
                self.costs.move_cycles(construct.words, ces) / ces
            )
        if isinstance(construct, VirtualMemoryActivity):
            # TLB-refill storms only exist when extra clusters re-touch
            # pages first mapped by another cluster.
            return construct.seconds if clusters > 1 else 0.0
        raise ProgramError(f"model cannot time {construct!r}")

    def _doall_cycles(
        self, loop: Doall, options: RuntimeOptions, clusters: int
    ) -> float:
        ces_per_cluster = self.config.ces_per_cluster
        if loop.kind is LoopKind.CDOALL:
            workers = ces_per_cluster
        elif loop.kind is LoopKind.SDOALL:
            workers = clusters  # one iteration per cluster; CDOALL inside
        else:
            workers = clusters * ces_per_cluster
        workers = min(workers, loop.trip_count)

        startup = self.costs.loop_startup_cycles(loop.kind)
        fetch = 0.0
        if options.schedule is Schedule.SELF and loop.self_scheduled:
            fetch = self.costs.iteration_fetch_cycles(loop.kind, options)

        iterations_per_worker = -(-loop.trip_count // workers)  # ceil
        if loop.nested:
            inner = sum(
                self._nested_cycles(c, loop, options, clusters)
                for c in loop.body  # type: ignore[union-attr]
            )
            body_cycles = inner
        else:
            assert isinstance(loop.body, Work)
            active = workers if loop.kind is not LoopKind.SDOALL else (
                min(clusters * ces_per_cluster, loop.trip_count * ces_per_cluster)
            )
            body_cycles = self._body_cycles(
                loop.body, loop.placement, active, options,
                prefetchable=loop.prefetchable_fraction,
            )
        one_start = startup + iterations_per_worker * (fetch + body_cycles)
        return loop.instances * one_start

    def _nested_cycles(
        self, construct: Construct, outer: Doall, options: RuntimeOptions,
        clusters: int,
    ) -> float:
        """Time one construct inside an SDOALL iteration (one cluster)."""
        if isinstance(construct, Doall):
            if construct.kind is not LoopKind.CDOALL:
                raise ProgramError(
                    "only CDOALLs may nest inside an SDOALL "
                    f"(got {construct.kind})"
                )
            workers = min(self.config.ces_per_cluster, construct.trip_count)
            startup = self.costs.loop_startup_cycles(construct.kind)
            fetch = self.costs.iteration_fetch_cycles(construct.kind, options)
            iterations = -(-construct.trip_count // workers)
            assert isinstance(construct.body, Work)
            active = clusters * workers  # every cluster runs its own CDOALL
            body = self._body_cycles(
                construct.body, construct.placement, active, options,
                prefetchable=construct.prefetchable_fraction,
            )
            return startup + iterations * (fetch + body)
        if isinstance(construct, Work):
            return self._body_cycles(
                construct, outer.placement, clusters, options,
                prefetchable=outer.prefetchable_fraction,
            )
        if isinstance(construct, Barrier):
            return self.costs.barrier_cycles(construct.multicluster, clusters)
        raise ProgramError(f"cannot nest {construct!r} inside an SDOALL")

    def _body_cycles(
        self,
        work: Work,
        placement: Placement,
        active_ces: int,
        options: RuntimeOptions,
        prefetchable: float,
    ) -> float:
        compute = work.flops / self.costs.flops_per_cycle(
            work.vector_fraction, work.vector_length
        )
        memory_rate = self.costs.words_per_cycle(
            placement, active_ces, options, prefetchable,
            work.scalar_memory_fraction,
        )
        memory = work.memory_words / memory_rate
        # Vector memory streams overlap arithmetic; scalar portions don't,
        # which the blended rates already account for.
        return max(compute, memory)

    # -- serial timing -----------------------------------------------------------

    def _serial_seconds(self, construct: Construct) -> float:
        if isinstance(construct, SerialSection):
            return self._cycles_to_seconds(self._serial_work(construct.work))
        if isinstance(construct, Doall):
            if construct.nested:
                inner = sum(
                    self._serial_construct_cycles(c)
                    for c in construct.body  # type: ignore[union-attr]
                )
            else:
                assert isinstance(construct.body, Work)
                inner = self._serial_work(construct.body)
            return self._cycles_to_seconds(
                construct.instances * construct.trip_count * inner
            )
        if isinstance(construct, (Barrier, Reduction, VirtualMemoryActivity)):
            return 0.0
        if isinstance(construct, IOSection):
            return self.costs.io_seconds(construct.bytes, construct.formatted)
        if isinstance(construct, DataMove):
            return 0.0  # no explicit moves in the serial memory layout
        raise ProgramError(f"model cannot time {construct!r}")

    def _serial_construct_cycles(self, construct: Construct) -> float:
        if isinstance(construct, Doall):
            assert isinstance(construct.body, Work)
            return (
                construct.instances
                * construct.trip_count
                * self._serial_work(construct.body)
            )
        if isinstance(construct, Work):
            return self._serial_work(construct)
        if isinstance(construct, (Barrier, Reduction)):
            return 0.0
        raise ProgramError(f"cannot serially time nested {construct!r}")

    def _serial_work(self, work: Work) -> float:
        """Scalar-mode execution: no vector unit, data in cluster memory."""
        compute = work.flops / self.costs.flops_per_cycle(
            0.0, work.vector_length, scalar_only=True
        )
        memory = work.memory_words / self.costs.memory_rates(1).cluster_scalar
        return max(compute, memory)

    # -- helpers --------------------------------------------------------------------

    @staticmethod
    def _cycles_to_seconds(cycles: float) -> float:
        return cycles * CE_CYCLE_SECONDS

    @staticmethod
    def _label(construct: Construct) -> str:
        label = getattr(construct, "label", "")
        return label or type(construct).__name__.lower()
