"""Calibrating the analytic model from the cycle-level simulator.

The one empirical input the analytic model needs is the prefetch-
effectiveness curve: sustained per-CE words/cycle through the PFU as a
function of how many CEs are streaming.  The default curve in
:mod:`repro.model.costs` was produced by this module; re-run
:func:`calibrate_prefetch_curve` to regenerate it from the simulator (it is
the Table 2 experiment viewed as a rate).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.config import CedarConfig, DEFAULT_CONFIG
from repro.kernels.vector_load import measure_vector_load
from repro.model.costs import CostModel


def calibrate_prefetch_curve(
    ce_counts: Sequence[int] = (1, 8, 16, 24, 32),
    config: CedarConfig = DEFAULT_CONFIG,
    blocks: int = 24,
) -> Dict[int, float]:
    """Measure per-CE streaming rate at each CE count via the VL kernel.

    The rate is the reciprocal of the mean interarrival time between
    prefetched words (plus the share of the first-word latency amortized
    over a block), exactly what a long consuming vector instruction sees.
    """
    curve: Dict[int, float] = {}
    block = config.prefetch.compiler_block_words
    for count in ce_counts:
        run = measure_vector_load(count, config, blocks=blocks)
        if run.interarrival is None or run.first_word_latency is None:
            raise RuntimeError("VL kernel produced no prefetch statistics")
        cycles_per_block = run.first_word_latency + (block - 1) * run.interarrival
        curve[count] = block / cycles_per_block
    return curve


def calibrated_cost_model(
    config: CedarConfig = DEFAULT_CONFIG,
    ce_counts: Sequence[int] = (1, 8, 16, 24, 32),
) -> CostModel:
    """A cost model whose prefetch curve is freshly measured."""
    return CostModel(config, calibrate_prefetch_curve(ce_counts, config))
