"""Grid sweeps over machine specs, with Pareto-front extraction.

A sweep is a list of candidate spec field-dicts (usually from
:func:`expand_grid`), each run through the deterministic probe workload
(:mod:`repro.builder.workload`) in its own worker process.  The result is
a schema-versioned artifact:

* ``points`` -- one record per candidate, in candidate order, holding the
  normalized spec and either its metrics or a structured ``error`` (an
  invalid spec is *data* in the artifact, not a crashed sweep).
* ``pareto`` -- indices of the non-dominated points, maximizing delivered
  MFLOPS and speedup while minimizing network conflicts.

Determinism: candidate order fixes record order, every metric comes from
simulator state, and workers are collected into a map and re-walked in
candidate order -- so the canonical JSON is byte-identical for any
``--jobs N``.
"""

from __future__ import annotations

import itertools
import json
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.builder.spec import MachineSpec
from repro.builder.workload import (
    DEFAULT_BLOCKS,
    FLOPS_PER_ELEMENT,
    measure_spec,
)
from repro.errors import ConfigurationError, SimulationError
from repro.parallel import parallel_map

#: Artifact schema identifier; bump on any shape change.
SWEEP_SCHEMA = "cedar-sweep/v1"


def expand_grid(
    axes: Mapping[str, Sequence[object]],
) -> List[Dict[str, object]]:
    """Cartesian product of sweep axes, in the axes' declared order.

    ``axes`` maps a :class:`MachineSpec` field name to the values it
    sweeps; the first axis varies slowest.  Field names are *not*
    validated here -- an unknown field becomes a per-point spec error in
    the artifact, where the failure is visible next to its point.
    """
    keys = list(axes)
    if not keys:
        return []
    products = itertools.product(*(list(axes[key]) for key in keys))
    return [dict(zip(keys, values)) for values in products]


def run_point(
    fields: Dict[str, object], blocks: int = DEFAULT_BLOCKS
) -> Dict[str, object]:
    """One sweep point: validate, elaborate, measure.

    Never raises on a *bad point*: spec validation errors and simulation
    failures become a structured ``error`` record carrying the offending
    field (when known) and the message, so one invalid corner cannot kill
    an otherwise-useful sweep.
    """
    try:
        spec = MachineSpec.from_dict(fields)
        metrics = measure_spec(spec, blocks=blocks)
    except (ConfigurationError, SimulationError) as error:
        record: Dict[str, object] = {
            "spec": {key: fields[key] for key in sorted(fields)},
            "error": {
                "field": getattr(error, "field", None),
                "message": str(error),
            },
        }
        return record
    return {"spec": spec.to_dict(), "metrics": metrics.to_dict()}


def _sweep_worker(payload: Tuple[Dict[str, object], int]) -> Dict[str, object]:
    fields, blocks = payload
    return run_point(fields, blocks=blocks)


def run_sweep(
    candidates: Iterable[Dict[str, object]],
    jobs: int = 1,
    blocks: int = DEFAULT_BLOCKS,
) -> Dict[str, object]:
    """Run every candidate spec and assemble the sweep artifact.

    ``jobs > 1`` fans points out over worker processes via the same
    :func:`~repro.parallel.parallel_map` runner the CLI's ``run --jobs``
    uses; results are re-walked in candidate order so the artifact is
    identical for any fan-out.
    """
    ordered = list(candidates)
    keys = [f"point{index:04d}" for index in range(len(ordered))]
    if jobs <= 1:
        results = {
            key: run_point(fields, blocks=blocks)
            for key, fields in zip(keys, ordered)
        }
    else:
        tasks = [
            (key, (fields, blocks)) for key, fields in zip(keys, ordered)
        ]
        results = dict(parallel_map(_sweep_worker, tasks, jobs))
    points = [results[key] for key in keys]
    return {
        "schema": SWEEP_SCHEMA,
        "workload": {
            "kernel": "stream",
            "blocks": blocks,
            "flops_per_element": FLOPS_PER_ELEMENT,
        },
        "points": points,
        "pareto": pareto_front(points),
    }


def _dominates(a: Dict[str, object], b: Dict[str, object]) -> bool:
    """True when ``a`` is at least as good as ``b`` on every objective and
    strictly better on one (more MFLOPS, more speedup, fewer conflicts)."""
    better_or_equal = (
        a["mflops"] >= b["mflops"]
        and a["speedup"] >= b["speedup"]
        and a["network_conflicts"] <= b["network_conflicts"]
    )
    strictly = (
        a["mflops"] > b["mflops"]
        or a["speedup"] > b["speedup"]
        or a["network_conflicts"] < b["network_conflicts"]
    )
    return better_or_equal and strictly


def pareto_front(points: Sequence[Dict[str, object]]) -> List[int]:
    """Indices of the non-dominated successful points, ascending.

    Failed points (those carrying ``error``) never enter the front.
    """
    scored = [
        (index, point["metrics"])
        for index, point in enumerate(points)
        if "metrics" in point
    ]
    front = []
    for index, metrics in scored:
        dominated = False
        for _, other in scored:
            if other is not metrics and _dominates(other, metrics):
                dominated = True
                break
        if not dominated:
            front.append(index)
    return front


def canonical_json(artifact: Dict[str, object]) -> str:
    """The byte-stable serialization of a sweep artifact."""
    return json.dumps(artifact, indent=2, sort_keys=True) + "\n"


def render_report(artifact: Dict[str, object]) -> str:
    """Human-readable sweep table with the Pareto front marked."""
    pareto = set(artifact["pareto"])
    lines = [
        f"{'#':>4s} {'machine':>14s} {'net':>8s} {'mem':>10s} "
        f"{'mflops':>9s} {'speedup':>8s} {'conflicts':>10s}  pareto"
    ]
    failures: List[Tuple[int, Dict[str, object]]] = []
    for index, point in enumerate(artifact["points"]):
        spec = point["spec"]
        if "error" in point:
            failures.append((index, point["error"]))
            continue
        metrics = point["metrics"]
        machine = f"{spec['clusters']}x{spec['ces_per_cluster']} CEs"
        net = f"r{spec['switch_radix']}/q{spec['port_queue_words']}"
        mem = f"{spec['memory_modules']}m/i{spec['interleave_words']}"
        marker = "*" if index in pareto else ""
        lines.append(
            f"{index:4d} {machine:>14s} {net:>8s} {mem:>10s} "
            f"{metrics['mflops']:9.1f} {metrics['speedup']:8.2f} "
            f"{metrics['network_conflicts']:10d}  {marker}"
        )
    for index, error in failures:
        field = error["field"] or "spec"
        lines.append(f"{index:4d} INVALID ({field}): {error['message']}")
    lines.append(
        f"pareto front: {len(pareto)} of {len(artifact['points'])} points"
    )
    return "\n".join(lines)
