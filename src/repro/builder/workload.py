"""The deterministic probe workload that scores one design point.

Every sweep point runs the same *stream* workload: each CE prefetches
consecutive 32-word blocks from its own memory region and chains two
floating-point operations per element (the paper's kernels all chain two
ops per memory request, Section 4.1).  The workload is measured twice per
spec -- on the full machine and on a single CE -- which yields the three
canonical sweep metrics:

* ``mflops``  -- delivered rate of the full machine,
* ``speedup`` -- full-machine throughput over the single-CE run
  (``N * cycles_1 / cycles_N``; ideal = N),
* ``network_conflicts`` -- crossbar output-port conflicts plus entry-queue
  injection rejections, summed over both networks from the trace
  counters.

All three come from the simulator's deterministic state (cycle counts,
flop ledgers, event counters), so a sweep artifact is byte-identical for
any ``--jobs`` fan-out.  Wall-clock throughput is deliberately *not* part
of the artifact -- the CLI reports it on stderr only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator

from repro.builder.elaborate import build_config
from repro.builder.spec import MachineSpec
from repro.config import CedarConfig
from repro.hardware.ce import (
    ArmFirePrefetch,
    ComputationalElement,
    ConsumePrefetch,
)
from repro.hardware.machine import CedarMachine
from repro.kernels.common import BASE_ADDRESS_STRIDE
from repro.trace import Tracer

#: Chained floating-point operations per streamed element (Section 4.1).
FLOPS_PER_ELEMENT = 2.0

#: Blocks each CE streams per measurement; enough for the pipelines and
#: queues to reach steady state on every valid shape.
DEFAULT_BLOCKS = 6

#: Trace counters that count network contention events.
_CONFLICT_COUNTERS = ("port_conflicts", "injection_rejections")


@dataclass(frozen=True)
class SweepMetrics:
    """Canonical (deterministic) metrics of one design point."""

    mflops: float
    speedup: float
    network_conflicts: int
    cycles: int
    events_dispatched: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "mflops": round(self.mflops, 4),
            "speedup": round(self.speedup, 4),
            "network_conflicts": self.network_conflicts,
            "cycles": self.cycles,
            "events_dispatched": self.events_dispatched,
        }


def stream_kernel(config: CedarConfig, blocks: int):
    """Per-CE stream: ``blocks`` prefetched blocks, two flops per element."""
    block = config.prefetch.compiler_block_words

    def kernel(ce: ComputationalElement) -> Iterator[object]:
        base = ce.global_port * BASE_ADDRESS_STRIDE
        for index in range(blocks):
            handle = yield ArmFirePrefetch(
                length=block, stride=1, start_address=base + block * index
            )
            yield ConsumePrefetch(handle, flops_per_element=FLOPS_PER_ELEMENT)

    return kernel


def _conflict_total(tracer: Tracer) -> int:
    total = 0.0
    for totals in tracer.counter_totals().values():
        for name in _CONFLICT_COUNTERS:
            total += totals.get(name, 0.0)
    return int(total)


def measure_spec(spec: MachineSpec, blocks: int = DEFAULT_BLOCKS) -> SweepMetrics:
    """Run the stream workload on one design point.

    Two simulator runs: the full machine (traced, for the conflict
    counters) and one CE (untraced, the speedup baseline).  Both runs are
    deterministic, so the metrics are too.
    """
    config = build_config(spec)
    tracer = Tracer()
    machine = CedarMachine(config, tracer=tracer)
    kernel = stream_kernel(config, blocks)
    cycles = machine.run_kernel(kernel, num_ces=config.num_ces)
    mflops = machine.mflops(cycles)
    conflicts = _conflict_total(tracer)
    events = machine.engine.events_dispatched

    baseline = CedarMachine(config)
    baseline_cycles = baseline.run_kernel(
        stream_kernel(config, blocks), num_ces=1
    )
    speedup = config.num_ces * baseline_cycles / cycles
    return SweepMetrics(
        mflops=mflops,
        speedup=speedup,
        network_conflicts=conflicts,
        cycles=cycles,
        events_dispatched=events,
    )
