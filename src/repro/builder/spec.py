"""The declarative machine specification and its validation rules.

A :class:`MachineSpec` is pure data: the handful of structural knobs the
design-space study varies, each checked at construction time so an invalid
shape fails *before* any simulator state exists, with a
:class:`~repro.errors.SpecError` naming the offending field.  Everything
else about the machine (vector-unit timings, cache geometry, sync costs)
stays at the paper's values -- the sweep varies structure, not physics.

Validation encodes the constraints the hardware layers assume:

* Radix, module count, interleave, and prefetch buffer must be powers of
  two -- address steering (``address % num_modules``), the shuffle-exchange
  digit arithmetic, and block-aligned prefetch all index by masking.
* The destination-tag routing scheme [Lawr75] spends ``log2(radix)`` tag
  bits per stage; the packet header budgets :data:`MAX_ROUTING_TAG_BITS`
  bits for the tag, which bounds how many ports a spec may connect.
* Port queues below one word cannot hold a packet; absurdly deep queues
  (> :data:`MAX_PORT_QUEUE_WORDS`) would no longer model the paper's
  two-word flow control regime, just hide it.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Dict, Optional

from repro.config import network_stages_for
from repro.errors import SpecError

#: Routing-tag bits the packet header can carry.  The first packet word
#: holds routing/control plus the memory address; ten tag bits cover the
#: paper's machine (2 stages x 3 bits) with headroom for e.g. 1024 ports
#: of radix-2 switches, while a 2048-port radix-2 shape -- 11 stages --
#: exceeds the field and must be declared at a higher radix instead.
MAX_ROUTING_TAG_BITS = 10

#: Sanity ceiling on crossbar port queues -- beyond this the network no
#: longer exerts the back-pressure the simulator's flow control models.
MAX_PORT_QUEUE_WORDS = 64

#: Largest prefetch buffer a spec may declare (words).
MAX_PREFETCH_BUFFER_WORDS = 65536

#: Smallest useful prefetch buffer: one compiler-generated block
#: (Section 3.2's 32-word blocks).
MIN_PREFETCH_BUFFER_WORDS = 32


def _is_power_of_two(value: int) -> bool:
    return value >= 1 and (value & (value - 1)) == 0


def _require_int(name: str, value: object) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(name, "must be an integer", value)
    return value


@dataclass(frozen=True)
class MachineSpec:
    """Structural description of one machine in the design space.

    Defaults describe the Cedar of the paper; :data:`CEDAR_SPEC` is that
    default point.  Instances are immutable and validated on construction.
    """

    #: Alliant FX/8 clusters.
    clusters: int = 4
    #: Computational elements per cluster.
    ces_per_cluster: int = 8
    #: Crossbar switch radix (8 = the paper's 8x8 switches).
    switch_radix: int = 8
    #: Network stage count; ``None`` derives it from the port count and
    #: radix, an explicit value must agree with that derivation.
    network_stages: Optional[int] = None
    #: Packet-word capacity of each crossbar input/output port queue.
    port_queue_words: int = 2
    #: Independent global-memory modules.
    memory_modules: int = 32
    #: Consecutive 64-bit words per module before the interleave advances
    #: (1 = the paper's double-word interleave).
    interleave_words: int = 1
    #: Memory modules carrying a synchronization processor (the first N);
    #: ``None`` equips every module, as built.
    sync_processors: Optional[int] = None
    #: Per-CE prefetch buffer capacity in words.
    prefetch_buffer_words: int = 512

    # -- derived shape ---------------------------------------------------

    @property
    def num_ces(self) -> int:
        """Total computational elements."""
        return self.clusters * self.ces_per_cluster

    @property
    def network_ports(self) -> int:
        """Ports each network must connect (CE side vs memory side)."""
        return max(self.num_ces, self.memory_modules)

    @property
    def stage_count(self) -> int:
        """Stages of radix-``switch_radix`` switches, derived or declared."""
        return network_stages_for(self.network_ports, self.switch_radix)

    @property
    def routing_tag_bits(self) -> int:
        """Destination-tag bits consumed end to end (one digit per stage)."""
        return self.stage_count * (self.switch_radix - 1).bit_length()

    @property
    def sync_processor_count(self) -> int:
        """Modules with a synchronization processor (defaults to all)."""
        if self.sync_processors is None:
            return self.memory_modules
        return self.sync_processors

    # -- validation ------------------------------------------------------

    def __post_init__(self) -> None:
        clusters = _require_int("clusters", self.clusters)
        if not 1 <= clusters <= 64:
            raise SpecError("clusters", "must be between 1 and 64", clusters)
        ces = _require_int("ces_per_cluster", self.ces_per_cluster)
        if not 1 <= ces <= 64:
            raise SpecError(
                "ces_per_cluster", "must be between 1 and 64", ces
            )
        if not _is_power_of_two(ces):
            raise SpecError(
                "ces_per_cluster",
                "must be a power of two (CE ports index the network by "
                "digit masking)",
                ces,
            )
        radix = _require_int("switch_radix", self.switch_radix)
        if not _is_power_of_two(radix) or not 2 <= radix <= 16:
            raise SpecError(
                "switch_radix",
                "must be a power of two between 2 and 16",
                radix,
            )
        queue = _require_int("port_queue_words", self.port_queue_words)
        if not 1 <= queue <= MAX_PORT_QUEUE_WORDS:
            raise SpecError(
                "port_queue_words",
                f"must be between 1 and {MAX_PORT_QUEUE_WORDS}",
                queue,
            )
        modules = _require_int("memory_modules", self.memory_modules)
        if not _is_power_of_two(modules) or not 2 <= modules <= 1024:
            raise SpecError(
                "memory_modules",
                "must be a power of two between 2 and 1024 (address "
                "steering interleaves by modulo)",
                modules,
            )
        interleave = _require_int("interleave_words", self.interleave_words)
        if not _is_power_of_two(interleave) or interleave > 64:
            raise SpecError(
                "interleave_words",
                "must be a power of two between 1 and 64",
                interleave,
            )
        if self.sync_processors is not None:
            sync = _require_int("sync_processors", self.sync_processors)
            if not 1 <= sync <= modules:
                raise SpecError(
                    "sync_processors",
                    f"must be between 1 and memory_modules ({modules}), "
                    "or None for all",
                    sync,
                )
        buffer_words = _require_int(
            "prefetch_buffer_words", self.prefetch_buffer_words
        )
        if (
            not _is_power_of_two(buffer_words)
            or not MIN_PREFETCH_BUFFER_WORDS
            <= buffer_words
            <= MAX_PREFETCH_BUFFER_WORDS
        ):
            raise SpecError(
                "prefetch_buffer_words",
                "must be a power of two between "
                f"{MIN_PREFETCH_BUFFER_WORDS} and {MAX_PREFETCH_BUFFER_WORDS}",
                buffer_words,
            )
        derived = network_stages_for(self.network_ports, radix)
        if self.network_stages is not None:
            declared = _require_int("network_stages", self.network_stages)
            if declared != derived:
                raise SpecError(
                    "network_stages",
                    f"{self.network_ports} ports at radix {radix} need "
                    f"exactly {derived} stages",
                    declared,
                )
        tag_bits = derived * (radix - 1).bit_length()
        if tag_bits > MAX_ROUTING_TAG_BITS:
            raise SpecError(
                "network_stages",
                f"routing tag needs {tag_bits} bits "
                f"({derived} stages x {(radix - 1).bit_length()} bits/stage) "
                f"but the packet header budgets {MAX_ROUTING_TAG_BITS}",
                derived,
            )

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form (JSON-safe, field-name keyed)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MachineSpec":
        """Construct and validate a spec from plain data.

        Unknown keys are a :class:`~repro.errors.SpecError` -- a sweep
        axis with a typo'd field name must fail loudly, not silently
        sweep nothing.
        """
        if not isinstance(data, dict):
            raise SpecError("spec", "must be a JSON object", data)
        known = {f.name for f in fields(cls)}
        for key in sorted(data):
            if key not in known:
                raise SpecError(
                    str(key),
                    "unknown spec field; known fields: "
                    + ", ".join(sorted(known)),
                )
        return cls(**data)


#: The Cedar machine of the paper, as a spec.  Elaborates to a
#: configuration equal to :data:`repro.config.DEFAULT_CONFIG` -- the
#: golden-equivalence tests pin this.
CEDAR_SPEC = MachineSpec()
