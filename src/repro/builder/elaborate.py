"""Elaborate a :class:`~repro.builder.spec.MachineSpec` into hardware.

``build_config`` maps the spec's structural knobs onto the existing
:class:`~repro.config.CedarConfig` by *replacing* fields of the paper's
defaults -- every non-structural parameter (vector timings, cache
geometry, sync costs) is inherited unchanged, and the default spec
reproduces ``DEFAULT_CONFIG`` exactly (dataclass equality, which the
golden tests assert).  ``build`` then hands that config to the untouched
:class:`~repro.hardware.machine.CedarMachine` constructor, so an
elaborated machine *is* the machine the paper's experiments run on --
there is no second construction path to drift.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.config import DEFAULT_CONFIG, WORD_BYTES, CedarConfig
from repro.builder.spec import MachineSpec
from repro.hardware.machine import CedarMachine
from repro.trace import Tracer


def build_config(spec: MachineSpec) -> CedarConfig:
    """The :class:`CedarConfig` a spec describes.

    Built by replacement from :data:`DEFAULT_CONFIG` so that
    ``build_config(CEDAR_SPEC) == DEFAULT_CONFIG`` holds structurally.
    """
    base = DEFAULT_CONFIG
    network = replace(
        base.network,
        switch_radix=spec.switch_radix,
        port_queue_words=spec.port_queue_words,
    )
    # Memory capacity scales with the module count so per-module size is
    # invariant across the sweep; sync_processors passes through (None =
    # every module, the machine as built).
    per_module_bytes = (
        base.global_memory.size_bytes // base.global_memory.num_modules
    )
    global_memory = replace(
        base.global_memory,
        size_bytes=per_module_bytes * spec.memory_modules,
        num_modules=spec.memory_modules,
        interleave_bytes=spec.interleave_words * WORD_BYTES,
        sync_processors=spec.sync_processors,
    )
    # The PFU never issues more requests than its buffer can hold.
    prefetch = replace(
        base.prefetch,
        buffer_words=spec.prefetch_buffer_words,
        max_outstanding=spec.prefetch_buffer_words,
    )
    return replace(
        base,
        num_clusters=spec.clusters,
        ces_per_cluster=spec.ces_per_cluster,
        network=network,
        global_memory=global_memory,
        prefetch=prefetch,
    )


def build(spec: MachineSpec, tracer: Optional[Tracer] = None) -> CedarMachine:
    """Elaborate ``spec`` into a ready-to-run :class:`CedarMachine`.

    The machine remembers its spec (``machine.spec``) so reports can name
    the design point an artifact came from.
    """
    machine = CedarMachine(build_config(spec), tracer=tracer)
    machine.spec = spec
    return machine


def describe(spec: MachineSpec) -> str:
    """A deterministic human-readable summary of one design point."""
    sync = spec.sync_processor_count
    sync_text = (
        "all modules" if sync == spec.memory_modules else f"first {sync} modules"
    )
    lines = [
        f"machine: {spec.clusters} clusters x {spec.ces_per_cluster} CEs "
        f"= {spec.num_ces} CEs",
        f"network: {spec.stage_count} stages of "
        f"{spec.switch_radix}x{spec.switch_radix} crossbars, "
        f"{spec.port_queue_words}-word port queues, "
        f"{spec.routing_tag_bits}-bit routing tags",
        f"memory:  {spec.memory_modules} modules, "
        f"{spec.interleave_words}-word interleave, "
        f"sync processors on {sync_text}",
        f"prefetch: {spec.prefetch_buffer_words}-word buffers per CE",
    ]
    return "\n".join(lines)
