"""Declarative machine construction and design-space exploration.

The paper studies exactly one machine -- the Cedar as built.  This package
turns that machine into the *default point* of a small design space: a
:class:`~repro.builder.spec.MachineSpec` declares the shape (clusters, CEs
per cluster, network radix and queue depths, memory modules, interleave,
synchronization processors, prefetch buffer), validates it, and
:func:`~repro.builder.elaborate.build` elaborates it into the same
:class:`~repro.hardware.machine.CedarMachine` component graph every
experiment already runs against.  ``CEDAR_SPEC`` elaborates to a
configuration *equal* to :data:`repro.config.DEFAULT_CONFIG`, so the
paper's artifacts are unchanged by construction.

:mod:`~repro.builder.sweep` runs grids of specs through the existing
process-parallel runner and extracts the Pareto front over delivered
MFLOPS, speedup, and network conflicts -- the ``cedar-repro sweep``
subcommand.
"""

from repro.builder.elaborate import build, build_config, describe
from repro.builder.spec import CEDAR_SPEC, MachineSpec
from repro.builder.sweep import (
    SWEEP_SCHEMA,
    expand_grid,
    pareto_front,
    render_report,
    run_sweep,
)
from repro.builder.workload import SweepMetrics, measure_spec

__all__ = [
    "CEDAR_SPEC",
    "MachineSpec",
    "SWEEP_SCHEMA",
    "SweepMetrics",
    "build",
    "build_config",
    "describe",
    "expand_grid",
    "measure_spec",
    "pareto_front",
    "render_report",
    "run_sweep",
]
