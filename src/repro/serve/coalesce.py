"""Request coalescing: N identical in-flight requests, one simulation.

A request whose cache key matches a job that is already queued or running
does not enqueue a second simulation; it *follows* the in-flight leader
and is resolved with the leader's bytes when the leader finishes.  This is
sound for the same reason the cache is: the cache key fully determines a
byte-deterministic result, so the follower would have computed exactly the
leader's bytes anyway.

The coalescer itself is a plain mapping ``cache_key -> (leader job id,
follower job ids)``; all mutation happens on the server's single event
loop, so there is no locking here.  The job registry owns the lifecycle:
it registers a leader when a cache miss is enqueued, attaches followers,
and settles them (success *or* failure -- a crashed leader fails its
followers rather than stranding them) when the leader completes.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class Coalescer:
    """In-flight leaders and their followers, by cache key."""

    def __init__(self) -> None:
        self._leaders: Dict[str, str] = {}
        self._followers: Dict[str, List[str]] = {}

    def leader(self, cache_key: str) -> Optional[str]:
        """The in-flight leader job id for ``cache_key``, if any."""
        return self._leaders.get(cache_key)

    def lead(self, cache_key: str, job_id: str) -> None:
        """Register ``job_id`` as the single in-flight run of ``cache_key``."""
        if cache_key in self._leaders:
            raise ValueError(
                f"cache key {cache_key[:12]}... already has leader "
                f"{self._leaders[cache_key]}"
            )
        self._leaders[cache_key] = job_id
        self._followers[cache_key] = []

    def follow(self, cache_key: str, job_id: str) -> str:
        """Attach ``job_id`` to the in-flight leader; returns the leader id."""
        leader = self._leaders.get(cache_key)
        if leader is None:
            raise ValueError(f"no in-flight leader for {cache_key[:12]}...")
        self._followers[cache_key].append(job_id)
        return leader

    def settle(self, cache_key: str) -> List[str]:
        """The leader finished: forget the key, return the follower ids."""
        self._leaders.pop(cache_key, None)
        return self._followers.pop(cache_key, [])

    def in_flight(self) -> int:
        return len(self._leaders)
