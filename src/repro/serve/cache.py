"""Content-addressed result cache for the serving tier.

Values are the exact response bytes of a finished job -- the canonical
JSON result document -- keyed by the :func:`repro.serve.schema.cache_key`
content address.  Because the simulator is byte-deterministic, a cache hit
is *the* answer, not an approximation of it: a warm read returns bytes
identical to what a cold run would produce.

The cache is an in-memory dict with an optional spill directory.  With
``directory`` set, every entry is also written to ``<dir>/<key>.json``
via an atomic rename (a crashed write can never leave a half-result that
a restarted server would serve), and lookups fall back to disk, so a
restarted server keeps its warm set.
"""

from __future__ import annotations

import os
import tempfile
from typing import Dict, List, Optional

_KEY_HEX = set("0123456789abcdef")


class ResultCache:
    """``get``/``put`` of immutable result bytes by content address."""

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = directory
        self._memory: Dict[str, bytes] = {}
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    def _path(self, key: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, f"{key}.json")

    def get(self, key: str) -> Optional[bytes]:
        body = self._memory.get(key)
        if body is not None:
            return body
        if self.directory is not None:
            try:
                with open(self._path(key), "rb") as stream:
                    body = stream.read()
            except OSError:
                return None
            self._memory[key] = body
            return body
        return None

    def put(self, key: str, body: bytes) -> None:
        self._memory[key] = body
        if self.directory is not None:
            handle, temp_path = tempfile.mkstemp(
                prefix=".put-", dir=self.directory
            )
            try:
                with os.fdopen(handle, "wb") as stream:
                    stream.write(body)
                os.replace(temp_path, self._path(key))
            except OSError:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return len(self.keys())

    def keys(self) -> List[str]:
        """Every known content address (memory plus spill directory)."""
        known = set(self._memory)
        if self.directory is not None:
            for name in sorted(os.listdir(self.directory)):
                stem, ext = os.path.splitext(name)
                if ext == ".json" and stem and set(stem) <= _KEY_HEX:
                    known.add(stem)
        return sorted(known)
