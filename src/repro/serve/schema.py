"""Wire schemas for the serving tier.

Everything that crosses the HTTP boundary is validated and canonicalized
here, so the rest of the package works on exactly one representation of a
request.  Canonicalization is what makes the result cache and the request
coalescer *sound* rather than heuristic: two requests that mean the same
simulation -- whatever key order or omitted defaults they were written
with -- canonicalize to the same bytes, hash to the same cache key, and
therefore cost one simulation.

The cache key is ``sha256(experiment \\x00 canonical-config-json \\x00
code-version-fingerprint)``: the three coordinates that fully determine a
byte-deterministic result (tests/test_determinism.py is the proof for the
simulator; :func:`repro.version_fingerprint` pins the code).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ServeError

#: Config overrides a job may carry, with their defaults.  Every knob must
#: either change the result bytes (``sanitize`` adds the checker summary to
#: the record) or select an independently verified byte-identical engine
#: variant (``fastpath``, ``partitions``); all belong in the cache key
#: because they change what was *run*, which provenance must not conflate.
DEFAULT_JOB_CONFIG: Dict[str, object] = {
    "sanitize": False,
    "fastpath": True,
    "partitions": 1,
    "spec": None,
}


def _validate_bool(key: str, value: object) -> bool:
    if not isinstance(value, bool):
        raise ServeError(f"config key {key!r} must be a boolean, got {value!r}")
    return value


def _validate_partitions(key: str, value: object) -> int:
    # bool is an int subclass; reject it explicitly.
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise ServeError(
            f"config key {key!r} must be an integer >= 1, got {value!r}"
        )
    return value


def _validate_spec(key: str, value: object) -> Optional[Dict[str, object]]:
    """Canonicalize a machine spec override.

    The canonical form is the *fully elaborated* field dict
    (``MachineSpec.to_dict()``): two requests that omit different
    defaulted fields but mean the same machine hash to the same cache
    key.  ``None`` (the default) means the paper's Cedar.
    """
    if value is None:
        return None
    from repro.builder import MachineSpec
    from repro.errors import SpecError

    if not isinstance(value, Mapping):
        raise ServeError(
            f"config key {key!r} must be a JSON object of MachineSpec "
            f"fields, got {value!r}"
        )
    try:
        return MachineSpec.from_dict(dict(value)).to_dict()
    except SpecError as error:
        raise ServeError(f"config key {key!r} is invalid: {error}")


#: Per-key validators: each canonicalizes (or rejects) one override.
_CONFIG_VALIDATORS = {
    "sanitize": _validate_bool,
    "fastpath": _validate_bool,
    "partitions": _validate_partitions,
    "spec": _validate_spec,
}


def canonical_config(overrides: Optional[Mapping[str, object]]) -> Dict[str, object]:
    """Validate overrides per-key and merge them over the defaults, key-sorted."""
    if overrides is None:
        overrides = {}
    if not isinstance(overrides, Mapping):
        raise ServeError(
            f"config must be a JSON object, got {type(overrides).__name__}"
        )
    unknown = sorted(set(overrides) - set(DEFAULT_JOB_CONFIG))
    if unknown:
        known = ", ".join(sorted(DEFAULT_JOB_CONFIG))
        raise ServeError(
            f"unknown config key(s) {', '.join(map(repr, unknown))}; "
            f"known: {known}"
        )
    merged = dict(DEFAULT_JOB_CONFIG)
    for key, value in overrides.items():
        merged[key] = _CONFIG_VALIDATORS[key](key, value)
    return {key: merged[key] for key in sorted(merged)}


def canonical_config_json(config: Mapping[str, object]) -> str:
    """The canonical serialized form hashed into cache keys."""
    return json.dumps(config, sort_keys=True, separators=(",", ":"))


def cache_key(experiment: str, config: Mapping[str, object], fingerprint: str) -> str:
    """Content address of one deterministic result (64 hex chars)."""
    digest = hashlib.sha256()
    for part in (experiment, canonical_config_json(config), fingerprint):
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


@dataclass(frozen=True)
class JobRequest:
    """One validated ``POST /jobs`` body: experiments to run plus config."""

    experiments: Tuple[str, ...]
    config: Dict[str, object]


def parse_job_request(
    payload: object, known_experiments: Mapping[str, object]
) -> JobRequest:
    """Validate a decoded ``POST /jobs`` body.

    Accepts ``{"experiment": "table2"}``, ``{"experiment": "all"}`` (the
    full suite as a sweep), or ``{"experiments": ["table2", "ppt4"]}``,
    each with an optional ``"config"`` object of overrides.
    """
    if not isinstance(payload, Mapping):
        raise ServeError("request body must be a JSON object")
    unknown = sorted(set(payload) - {"experiment", "experiments", "config"})
    if unknown:
        raise ServeError(
            f"unknown request field(s): {', '.join(map(repr, unknown))}"
        )
    single = payload.get("experiment")
    many = payload.get("experiments")
    if (single is None) == (many is None):
        raise ServeError("give exactly one of 'experiment' or 'experiments'")
    if single is not None:
        if not isinstance(single, str):
            raise ServeError("'experiment' must be a string")
        keys: List[str] = (
            sorted(known_experiments) if single == "all" else [single]
        )
    else:
        if not isinstance(many, list) or not many or not all(
            isinstance(key, str) for key in many
        ):
            raise ServeError("'experiments' must be a non-empty list of strings")
        keys = list(many)
    for key in keys:
        if key not in known_experiments:
            known = ", ".join(sorted(known_experiments))
            raise ServeError(
                f"unknown experiment {key!r}; known: {known}", status=404
            )
    return JobRequest(tuple(keys), canonical_config(payload.get("config")))
