"""`cedar-repro serve`: the asyncio HTTP/JSON front of the simulator.

A deliberately small HTTP/1.1 implementation on ``asyncio`` streams -- no
framework, stdlib only, one connection per request.  Routes:

============================  ==============================================
``POST /jobs``                submit an experiment or sweep (JSON body)
``GET  /jobs``                list all jobs (most recent state)
``GET  /jobs/<id>``           one job document
``GET  /jobs/<id>/result``    the result bytes (``X-Cedar-Cache`` header
                              says ``hit``/``miss``/``coalesced``)
``GET  /jobs/<id>/trace``     the run's columnar trace snapshot (binary
                              wire format; 404 for cache hits, which
                              never ran a simulation)
``GET  /jobs/<id>/events``    server-sent-events progress stream over a
                              chunked response (replays history, then
                              follows live until the job resolves)
``GET  /metrics``             Prometheus text exposition of the serve
                              counters (jobs, cache, queue, latency)
``GET  /healthz``             liveness + version fingerprint
============================  ==============================================

The request path holds the determinism line: submissions are parsed and
canonicalized by :mod:`repro.serve.schema`, resolved against the
content-addressed cache or coalesced onto an identical in-flight run by
:class:`repro.serve.jobs.JobRegistry` -- all on the single event loop --
and simulations execute on worker processes, never in the server process.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional, Tuple

from repro.errors import ServeError
from repro.experiments.registry import EXPERIMENTS
from repro.metrics import MetricsRegistry, prometheus_text
from repro.serve.cache import ResultCache
from repro.serve.jobs import DEFAULT_QUEUE_LIMIT, Job, JobRegistry
from repro.serve.schema import parse_job_request
from repro.version import version_fingerprint

#: Largest accepted request head or body, bytes.  Requests are tiny
#: (experiment key + a few booleans); anything bigger is not ours.
MAX_REQUEST_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: How a job's ``source`` shows up in the ``X-Cedar-Cache`` header.
_CACHE_HEADER = {"cache": "hit", "computed": "miss", "coalesced": "coalesced"}


class JobServer:
    """One serving instance: HTTP front, job registry, cache, metrics."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: int = 2,
        cache_dir: Optional[str] = None,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        registry: Optional[JobRegistry] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.metrics = registry.metrics if registry else MetricsRegistry()
        self.cache = registry.cache if registry else ResultCache(cache_dir)
        self.registry = registry or JobRegistry(
            self.cache, self.metrics, jobs=jobs, queue_limit=queue_limit
        )
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind, start worker tasks, begin accepting connections."""
        self.registry.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.registry.close()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # -- connection handling ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
            except ServeError as error:
                await self._send_json(
                    writer, error.status, {"error": str(error)}
                )
                return
            try:
                await self._route(method, path, body, writer)
            except ServeError as error:
                await self._send_json(
                    writer, error.status, {"error": str(error)}
                )
            except Exception as error:  # never leak a traceback as a hang
                await self._send_json(
                    writer, 500, {"error": f"internal error: {error!r}"}
                )
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, bytes]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise ServeError("request head too large", status=413) from None
        except asyncio.IncompleteReadError:
            raise ServeError("truncated request", status=400) from None
        request_line, _, header_block = head.partition(b"\r\n")
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise ServeError(f"malformed request line {request_line!r}")
        method, path, _version = parts
        headers: Dict[str, str] = {}
        for line in header_block.decode("latin-1").split("\r\n"):
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_REQUEST_BYTES:
            raise ServeError("request body too large", status=413)
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, body

    # -- routing ------------------------------------------------------------

    async def _route(
        self, method: str, path: str, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        path = path.split("?", 1)[0]
        if path == "/healthz" and method == "GET":
            document = {
                "status": "ok",
                "code_version": version_fingerprint(),
                "workers": self.registry.num_workers,
                "jobs": len(self.registry.all_jobs()),
                "cached_results": len(self.cache),
            }
            meta = self.registry.last_trace_meta
            if meta is not None:
                document["trace_overhead_ratio"] = meta.get("overhead_ratio")
                document["trace_buffer_bytes"] = meta.get("buffer_bytes")
            await self._send_json(writer, 200, document)
            return
        if path == "/metrics" and method == "GET":
            await self._send(
                writer, 200, prometheus_text(self.metrics).encode("utf-8"),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
            return
        if path == "/jobs":
            if method == "POST":
                await self._post_jobs(body, writer)
                return
            if method == "GET":
                await self._send_json(writer, 200, {
                    "jobs": [job.public() for job in self.registry.all_jobs()]
                })
                return
            raise ServeError("use GET or POST on /jobs", status=405)
        if path.startswith("/jobs/"):
            remainder = path[len("/jobs/"):]
            if method != "GET":
                raise ServeError("jobs are immutable; use GET", status=405)
            job_id, _, tail = remainder.partition("/")
            job = self.registry.get(job_id)
            if tail == "":
                await self._send_json(writer, 200, job.public())
                return
            if tail == "result":
                await self._get_result(job, writer)
                return
            if tail == "trace":
                await self._get_trace(job, writer)
                return
            if tail == "events":
                await self._stream_events(job, writer)
                return
        raise ServeError(f"no route for {method} {path}", status=404)

    async def _post_jobs(
        self, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError) as error:
            raise ServeError(f"request body is not valid JSON: {error}") from None
        request = parse_job_request(payload, EXPERIMENTS)
        jobs = self.registry.submit(request)
        document: Dict[str, object] = {
            "jobs": [job.public() for job in jobs],
        }
        headers = []
        if len(jobs) == 1:
            document["job"] = jobs[0].public()
            cache_state = _CACHE_HEADER.get(jobs[0].source or "", "miss")
            headers.append(("X-Cedar-Cache", cache_state))
        status = 200 if all(job.state == "done" for job in jobs) else 202
        await self._send_json(writer, status, document, extra_headers=headers)

    async def _get_result(self, job: Job, writer: asyncio.StreamWriter) -> None:
        if job.state in ("queued", "running"):
            raise ServeError(
                f"job {job.id} is {job.state}; result not ready", status=409
            )
        if job.state == "failed":
            await self._send_json(writer, 500, {
                "error": f"job {job.id} failed",
                "job": job.public(),
            })
            return
        assert job.result is not None
        await self._send(
            writer, 200, job.result,
            content_type="application/json",
            extra_headers=[
                ("X-Cedar-Cache", _CACHE_HEADER.get(job.source or "", "miss")),
                ("X-Cedar-Job", job.id),
            ],
        )

    async def _get_trace(self, job: Job, writer: asyncio.StreamWriter) -> None:
        """Stream the job's columnar trace snapshot (wire format)."""
        if job.state in ("queued", "running"):
            raise ServeError(
                f"job {job.id} is {job.state}; trace not ready", status=409
            )
        if job.trace is None:
            raise ServeError(
                f"job {job.id} has no trace buffer (cache hits never ran)",
                status=404,
            )
        await self._send(
            writer, 200, job.trace,
            content_type="application/octet-stream",
            extra_headers=[("X-Cedar-Job", job.id)],
        )

    async def _stream_events(self, job: Job, writer: asyncio.StreamWriter) -> None:
        """Server-sent events over a chunked response, one event per chunk."""
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-store\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1"))
        await writer.drain()
        async for event in job.stream():
            frame = (
                f"event: {event['event']}\n"
                f"id: {event['seq']}\n"
                f"data: {json.dumps(event['data'], sort_keys=True)}\n\n"
            ).encode("utf-8")
            writer.write(b"%x\r\n" % len(frame) + frame + b"\r\n")
            await writer.drain()
        closing = b"event: end\ndata: {}\n\n"
        writer.write(b"%x\r\n" % len(closing) + closing + b"\r\n")
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # -- response helpers ---------------------------------------------------

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        extra_headers: Optional[List[Tuple[str, str]]] = None,
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in extra_headers or []:
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        document: Dict[str, object],
        extra_headers: Optional[List[Tuple[str, str]]] = None,
    ) -> None:
        body = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
        await self._send(writer, status, body, extra_headers=extra_headers)


async def serve_forever(
    host: str,
    port: int,
    jobs: int,
    cache_dir: Optional[str],
    queue_limit: int = DEFAULT_QUEUE_LIMIT,
    ready=None,
) -> None:
    """Boot a :class:`JobServer` and run until cancelled (the CLI entry)."""
    server = JobServer(
        host=host, port=port, jobs=jobs,
        cache_dir=cache_dir, queue_limit=queue_limit,
    )
    await server.start()
    if ready is not None:
        ready(server)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
