"""Child-process side of a serve job: run one experiment, stream progress.

:func:`execute_job` is the function :func:`repro.parallel.run_in_process`
spawns per job.  It applies the job's config (fast-path engine selection,
sanitizer arming), runs the experiment with a progress-forwarding tracer
on the ambient trace bus, and returns the canonical result document bytes
the server caches and serves.

Progress comes off the trace bus, not a wall clock: every machine the
experiment driver builds attaches to the ambient tracer, and
:class:`ProgressTracer` forwards a throttled summary every
``PROGRESS_INTERVAL`` trace records (plus an event per epoch, i.e. per
machine/kernel the driver runs).  Record counts are deterministic, so two
runs of the same job emit the same progress stream -- the serving tier
adds no nondeterminism of its own.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.results import canonical_bytes, jsonable
from repro.trace import Tracer, tracing
from repro.version import version_fingerprint

#: Emit one progress event per this many trace records.  Cycle-level
#: experiments produce millions of records; this keeps the event stream
#: in the tens of events, cheap enough to forward over a pipe per job.
PROGRESS_INTERVAL = 250_000

Emit = Callable[[object], None]


class ProgressTracer(Tracer):
    """A trace bus that forwards throttled progress instead of recording.

    The record store stays empty (a serve job must not hold a 1M-record
    timeline per in-flight request); counter totals, busy-cycle and epoch
    aggregates still accumulate exactly as in a recording tracer, because
    components feed them before the store is consulted.
    """

    def __init__(self, emit: Emit) -> None:
        super().__init__(enabled=True)
        self._emit = emit
        self.records_seen = 0

    def set_clock(self, clock) -> None:
        super().set_clock(clock)
        self._emit({"type": "epoch", "epoch": self.epoch})

    def _record(self, record: object) -> None:
        self.records_seen += 1
        if self.records_seen % PROGRESS_INTERVAL == 0:
            cycle = self._elapsed.get(self.epoch, 0)
            self._emit(
                {
                    "type": "progress",
                    "records": self.records_seen,
                    "epoch": self.epoch,
                    "cycle": cycle,
                }
            )


def build_record(
    experiment_key: str,
    config: Dict[str, bool],
    emit: Optional[Emit] = None,
) -> Dict[str, object]:
    """Run one experiment under ``config`` and build its result record.

    The record is the ``run --json`` shape plus the job's canonical config
    and the code-version fingerprint, so a cached document is
    self-describing: it names the experiment, the exact knobs, and the
    code that produced it.
    """
    from repro.experiments.registry import get_experiment
    from repro.hardware import fastpath
    from repro.validate import run_experiment_sanitized

    if emit is None:
        emit = lambda data: None  # noqa: E731
    experiment = get_experiment(experiment_key)
    previous_fastpath = fastpath.set_enabled(config.get("fastpath", True))
    try:
        tracer = ProgressTracer(emit)
        emit({"type": "running", "experiment": experiment_key, "config": config})
        with tracing(tracer):
            if config.get("sanitize", False):
                rendered, result, summary = run_experiment_sanitized(
                    experiment_key
                )
            else:
                result = experiment.run()
                rendered = experiment.render(result)
                summary = None
    finally:
        fastpath.set_enabled(previous_fastpath)
    record: Dict[str, object] = {
        "experiment": experiment_key,
        "description": experiment.description,
        "config": dict(config),
        "code_version": version_fingerprint(),
        "result": jsonable(result),
        "rendered": rendered,
    }
    if summary is not None:
        record["sanitizer"] = summary
    emit(
        {
            "type": "finished",
            "experiment": experiment_key,
            "trace_records": tracer.records_seen,
        }
    )
    return record


def execute_job(payload: Dict[str, object], emit: Emit) -> bytes:
    """Worker-process entry point: payload -> canonical result bytes."""
    return canonical_bytes(
        build_record(str(payload["experiment"]), dict(payload["config"]), emit)
    )
