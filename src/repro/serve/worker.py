"""Child-process side of a serve job: run one experiment, stream progress.

:func:`execute_job` is the function :func:`repro.parallel.run_in_process`
spawns per job.  It applies the job's config (fast-path engine selection,
sanitizer arming), runs the experiment with a progress-forwarding tracer
on the ambient trace bus, and returns the canonical result document bytes
plus the job's columnar trace buffer and its telemetry (buffer bytes,
instrumentation overhead) for the server's gauges, ``/healthz``, and the
``GET /jobs/<id>/trace`` endpoint.

Progress comes off the trace bus, not a wall clock: every machine the
experiment driver builds attaches to the ambient tracer, and
:class:`ProgressTracer` forwards a throttled summary every
``PROGRESS_INTERVAL`` trace records (plus an event per epoch, i.e. per
machine/kernel the driver runs).  Record counts are deterministic, so two
runs of the same job emit the same progress stream -- the serving tier
adds no nondeterminism of its own.

The tracer records into a *bounded* columnar ring
(``CEDAR_SERVE_TRACE_RECORDS`` records, default 2**18): a serve job keeps
the most recent window of its timeline at a fixed memory ceiling instead
of a 1M-record store per in-flight request, while counter totals and
busy-cycle aggregates stay exact regardless of evictions.
"""

from __future__ import annotations

import os
import time
from contextlib import ExitStack
from typing import Callable, Dict, Optional

from repro.results import canonical_bytes, jsonable
from repro.trace import Tracer, tracing
from repro.version import version_fingerprint

#: Emit one progress event per this many trace records.  Cycle-level
#: experiments produce millions of records; this keeps the event stream
#: in the tens of events, cheap enough to forward over a pipe per job.
PROGRESS_INTERVAL = 250_000

#: Env var bounding the per-job columnar ring, in records.
TRACE_RECORDS_ENV = "CEDAR_SERVE_TRACE_RECORDS"

#: Default per-job ring bound: 2**18 records (~14 MiB of columns).
DEFAULT_TRACE_RECORDS = 1 << 18

Emit = Callable[[object], None]


def serve_trace_records() -> int:
    """The per-job trace-ring bound (``CEDAR_SERVE_TRACE_RECORDS``)."""
    raw = os.environ.get(TRACE_RECORDS_ENV, "")
    try:
        value = int(raw)
    except ValueError:
        value = 0
    return value if value > 0 else DEFAULT_TRACE_RECORDS


class _ProgressStore:
    """Record-store proxy: forwards appends, fires a per-record callback.

    Progress throttling keys off records *appended* (``total_appended``),
    not records retained, so ring evictions never change the progress
    stream a job emits.
    """

    columnar = True

    def __init__(self, inner, on_record: Callable[[], None]) -> None:
        self.inner = inner
        self._on_record = on_record

    def add_span(self, *args) -> None:
        self.inner.add_span(*args)
        self._on_record()

    def add_instant(self, *args) -> None:
        self.inner.add_instant(*args)
        self._on_record()

    def add_sample(self, *args) -> None:
        self.inner.add_sample(*args)
        self._on_record()

    @property
    def num_records(self) -> int:
        return self.inner.num_records

    @property
    def dropped(self) -> int:
        return self.inner.dropped

    @property
    def total_appended(self) -> int:
        return self.inner.total_appended

    @property
    def buffer_bytes(self) -> int:
        return self.inner.buffer_bytes

    @property
    def max_records(self) -> int:
        return self.inner.max_records

    def counts(self) -> Dict[str, int]:
        return self.inner.counts()

    def snapshot(self):
        return self.inner.snapshot()


class ProgressTracer(Tracer):
    """A trace bus that records into a bounded ring and streams progress.

    Counter totals, busy-cycle and epoch aggregates accumulate exactly as
    in any recording tracer; the record timeline is the most recent
    ``max_records`` window (oldest evicted), cheap enough to hold and ship
    per serve job.
    """

    def __init__(self, emit: Emit, max_records: Optional[int] = None) -> None:
        super().__init__(
            enabled=True,
            max_records=max_records or serve_trace_records(),
            columnar=True,
        )
        self._emit = emit
        self._store = _ProgressStore(self._store, self._progress)

    def set_clock(self, clock) -> None:
        super().set_clock(clock)
        self._emit({"type": "epoch", "epoch": self.epoch})

    def _progress(self) -> None:
        seen = self._store.total_appended
        if seen % PROGRESS_INTERVAL == 0:
            cycle = self._elapsed.get(self.epoch, 0)
            self._emit(
                {
                    "type": "progress",
                    "records": seen,
                    "epoch": self.epoch,
                    "cycle": cycle,
                }
            )


def build_record(
    experiment_key: str,
    config: Dict[str, object],
    emit: Optional[Emit] = None,
    tracer: Optional[ProgressTracer] = None,
) -> Dict[str, object]:
    """Run one experiment under ``config`` and build its result record.

    The record is the ``run --json`` shape plus the job's canonical config
    and the code-version fingerprint, so a cached document is
    self-describing: it names the experiment, the exact knobs, and the
    code that produced it.  Telemetry that varies run to run (wall time,
    overhead ratio) stays *out* of the record -- cached result bytes must
    be a pure function of (experiment, config, code version) -- and is
    returned separately by :func:`execute_job`.
    """
    from repro.experiments.registry import get_experiment
    from repro.hardware import fastpath
    from repro.validate import run_experiment_sanitized

    if emit is None:
        emit = lambda data: None  # noqa: E731
    experiment = get_experiment(experiment_key)
    partitions = int(config.get("partitions", 1))
    previous_fastpath = fastpath.set_enabled(config.get("fastpath", True))
    try:
        with ExitStack() as scope:
            spec_fields = config.get("spec")
            if spec_fields is not None:
                # Run the experiment on the machine this builder spec
                # elaborates to.  The override is ambient, so every
                # CedarMachine the driver builds -- including inside
                # partition worker processes, which fork while the
                # override is installed -- gets the spec's shape.
                from repro.builder import MachineSpec, build_config
                from repro.config import overriding

                spec = MachineSpec.from_dict(dict(spec_fields))
                scope.enter_context(overriding(build_config(spec)))
            if tracer is None:
                tracer = ProgressTracer(emit)
            emit(
                {
                    "type": "running",
                    "experiment": experiment_key,
                    "config": config,
                }
            )
            if partitions > 1:
                # Partitioned parallel simulation: units run in forked child
                # processes (they inherit the fastpath setting), each with its
                # own tracer/sanitizer; this worker must be non-daemonic.
                from repro.partition import run_partitioned

                partitioned = run_partitioned(
                    experiment_key,
                    partitions,
                    sanitized=bool(config.get("sanitize", False)),
                )
                result = partitioned.result
                rendered = partitioned.rendered
                summary = partitioned.sanitizer
                emit(
                    {
                        "type": "partitioned",
                        "partitions": partitions,
                        "events_per_sec": partitioned.telemetry[
                            "events_per_sec"
                        ],
                    }
                )
            else:
                with tracing(tracer):
                    if config.get("sanitize", False):
                        rendered, result, summary = run_experiment_sanitized(
                            experiment_key
                        )
                    else:
                        result = experiment.run()
                        rendered = experiment.render(result)
                        summary = None
    finally:
        fastpath.set_enabled(previous_fastpath)
    record: Dict[str, object] = {
        "experiment": experiment_key,
        "description": experiment.description,
        "config": dict(config),
        "code_version": version_fingerprint(),
        "result": jsonable(result),
        "rendered": rendered,
    }
    if summary is not None:
        record["sanitizer"] = summary
    emit(
        {
            "type": "finished",
            "experiment": experiment_key,
            "trace_records": tracer.records_seen,
        }
    )
    return record


def execute_job(payload: Dict[str, object], emit: Emit) -> Dict[str, object]:
    """Worker-process entry point: payload -> result + trace + telemetry.

    Returns ``{"result": canonical document bytes, "trace": columnar
    snapshot wire bytes, "trace_meta": telemetry dict}``.  Only ``result``
    is cached/byte-stable; the trace buffer and telemetry describe this
    particular execution.
    """
    tracer = ProgressTracer(emit)
    began = time.perf_counter()
    record = build_record(
        str(payload["experiment"]), dict(payload["config"]), emit, tracer=tracer
    )
    wall_seconds = time.perf_counter() - began
    overhead = tracer.overhead_estimate(wall_seconds)
    trace_meta: Dict[str, object] = {
        "records_seen": tracer.records_seen,
        "records_retained": tracer.num_records,
        "records_dropped": tracer.dropped,
        "buffer_bytes": tracer.buffer_bytes,
        "wall_seconds": wall_seconds,
        "overhead_ratio": overhead["ratio"],
        "overhead_per_record_ns": overhead["per_record_ns"],
    }
    return {
        "result": canonical_bytes(record),
        "trace": tracer.snapshot().to_bytes(),
        "trace_meta": trace_meta,
    }
