"""Simulation-as-a-service: the ``cedar-repro serve`` tier.

The simulator is byte-deterministic (tests/test_determinism.py), which
turns "serve heavy traffic" into a caching problem rather than a compute
problem: a result is fully identified by (experiment, canonical config,
code-version fingerprint), so identical requests can share one simulation
whether they arrive after it finished (content-addressed cache) or while
it is in flight (request coalescing).

* :mod:`repro.serve.schema` -- wire validation, config canonicalization,
  cache-key derivation;
* :mod:`repro.serve.cache` -- the content-addressed result cache with an
  optional on-disk spill directory;
* :mod:`repro.serve.coalesce` -- in-flight leaders and their followers;
* :mod:`repro.serve.jobs` -- job lifecycle, the bounded queue, worker
  tasks, and the serve metrics;
* :mod:`repro.serve.worker` -- the child-process job body (config
  application, trace-bus progress events, canonical result bytes);
* :mod:`repro.serve.server` -- the asyncio HTTP/1.1 front;
* :mod:`repro.serve.client` -- the stdlib client behind
  ``cedar-repro submit``, tests, and CI smoke.
"""

from repro.serve.cache import ResultCache
from repro.serve.client import DEFAULT_PORT, ServeClient
from repro.serve.coalesce import Coalescer
from repro.serve.jobs import DEFAULT_QUEUE_LIMIT, Job, JobRegistry
from repro.serve.schema import (
    DEFAULT_JOB_CONFIG,
    JobRequest,
    cache_key,
    canonical_config,
    canonical_config_json,
    parse_job_request,
)
from repro.serve.server import JobServer, serve_forever

__all__ = [
    "DEFAULT_JOB_CONFIG",
    "DEFAULT_PORT",
    "DEFAULT_QUEUE_LIMIT",
    "Coalescer",
    "Job",
    "JobRegistry",
    "JobRequest",
    "JobServer",
    "ResultCache",
    "ServeClient",
    "cache_key",
    "canonical_config",
    "canonical_config_json",
    "parse_job_request",
    "serve_forever",
]
