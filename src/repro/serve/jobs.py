"""Job lifecycle for the serving tier: registry, bounded queue, workers.

A job is one requested experiment run.  Its lifecycle:

``queued`` -> ``running`` -> ``done`` | ``failed``

with three ways to resolve (the job's ``source``):

* ``computed`` -- a cache miss that went through the bounded queue onto a
  worker process (one fresh process per job, the ``--jobs`` runner);
* ``cache`` -- resolved synchronously at submit time from the
  content-addressed result cache;
* ``coalesced`` -- attached to an identical in-flight job and resolved
  with the leader's bytes (success or failure) when it completes.

Everything here runs on the server's single asyncio event loop; the only
other threads are the executor threads that babysit worker processes, and
they re-enter the loop exclusively via ``call_soon_threadsafe``.  That
makes submit-time cache/coalesce decisions atomic without locks: N
identical requests arriving concurrently are serialized by the loop, the
first becomes the leader, the rest follow, exactly one simulation runs.

All serving counters flow through a :class:`repro.metrics.MetricsRegistry`
so ``GET /metrics`` is the same Prometheus text exposition the bench
harness already speaks.
"""

from __future__ import annotations

import asyncio
import functools
import time
from concurrent.futures import ThreadPoolExecutor
from typing import AsyncIterator, Callable, Dict, List, Optional

from repro.errors import ServeError, WorkerCrashError
from repro.metrics import MetricsRegistry
from repro.parallel import run_in_process
from repro.serve.cache import ResultCache
from repro.serve.coalesce import Coalescer
from repro.serve.schema import JobRequest, cache_key
from repro.serve.worker import execute_job
from repro.version import version_fingerprint

#: Default bound on jobs waiting for a worker (409 more would mean the
#: submitter is outrunning the machine; shed load instead of buffering it).
DEFAULT_QUEUE_LIMIT = 64

_STATES = ("queued", "running", "done", "failed")


class Job:
    """One requested experiment run and its observable history."""

    def __init__(
        self, job_id: str, experiment: str, config: Dict[str, object], key: str
    ) -> None:
        self.id = job_id
        self.experiment = experiment
        self.config = config
        self.cache_key = key
        self.state = "queued"
        self.source: Optional[str] = None
        self.error: Optional[Dict[str, object]] = None
        self.result: Optional[bytes] = None
        #: Columnar trace-snapshot wire bytes from the run that produced
        #: ``result`` (shared by coalesced followers; absent on pure
        #: cache hits, which never ran a simulation).
        self.trace: Optional[bytes] = None
        self.trace_meta: Optional[Dict[str, object]] = None
        self.events: List[Dict[str, object]] = []
        self.created = time.monotonic()
        self.finished_at: Optional[float] = None
        self.done = asyncio.Event()
        self._advanced = asyncio.Event()

    # -- observable history -------------------------------------------------

    def post(self, event: str, data: Optional[Dict[str, object]] = None) -> None:
        """Append one event to the job's history and wake stream readers."""
        self.events.append(
            {"seq": len(self.events), "event": event, "data": data or {}}
        )
        self._advanced.set()

    async def stream(self, start: int = 0) -> AsyncIterator[Dict[str, object]]:
        """Replay events from ``start``, then follow live until resolution."""
        index = start
        while True:
            while index < len(self.events):
                yield self.events[index]
                index += 1
            if self.state in ("done", "failed"):
                return
            self._advanced.clear()
            await self._advanced.wait()

    # -- transitions (loop-only) --------------------------------------------

    def mark_running(self) -> None:
        self.state = "running"
        self.post("running", {"experiment": self.experiment})

    def resolve(self, source: str, body: bytes) -> None:
        self.state = "done"
        self.source = source
        self.result = body
        self.finished_at = time.monotonic()
        self.post("done", {"source": source, "bytes": len(body)})
        self.done.set()

    def fail(self, source: str, error: Dict[str, object]) -> None:
        self.state = "failed"
        self.source = source
        self.error = error
        self.finished_at = time.monotonic()
        self.post("failed", dict(error))
        self.done.set()

    @property
    def latency_ms(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return (self.finished_at - self.created) * 1000.0

    def public(self) -> Dict[str, object]:
        """The job document ``GET /jobs/<id>`` serves."""
        document: Dict[str, object] = {
            "id": self.id,
            "experiment": self.experiment,
            "config": dict(self.config),
            "cache_key": self.cache_key,
            "state": self.state,
            "source": self.source,
            "events": len(self.events),
        }
        if self.error is not None:
            document["error"] = dict(self.error)
        if self.latency_ms is not None:
            document["latency_ms"] = round(self.latency_ms, 3)
        if self.trace_meta is not None:
            document["trace"] = dict(self.trace_meta)
        return document


#: Executes one job, posting progress events; returns either the result
#: bytes alone or the worker's ``{"result", "trace", "trace_meta"}`` dict.
Executor = Callable[[Job, Callable[[object], None]], "asyncio.Future"]


class JobRegistry:
    """All jobs of one server, the bounded queue, and the worker tasks."""

    def __init__(
        self,
        cache: ResultCache,
        metrics: MetricsRegistry,
        jobs: int = 2,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        execute: Optional[Executor] = None,
    ) -> None:
        if jobs < 1:
            raise ServeError(f"worker count must be >= 1, got {jobs}")
        self.cache = cache
        self.metrics = metrics
        self.num_workers = jobs
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._queue: "asyncio.Queue[Job]" = asyncio.Queue(maxsize=queue_limit)
        self._coalescer = Coalescer()
        self._execute = execute or self._execute_in_worker_process
        self._threads = ThreadPoolExecutor(
            max_workers=jobs, thread_name_prefix="cedar-serve-job"
        )
        self._workers: List["asyncio.Task"] = []
        self._sequence = 0
        self._fingerprint = version_fingerprint()
        self._depth_gauge = metrics.gauge(
            "serve_queue_depth", help="jobs waiting for a worker slot"
        )
        self._latency = metrics.histogram(
            "serve_job_latency_ms",
            help="submit-to-resolution latency per job, milliseconds",
        )
        self._trace_bytes = 0
        self._trace_gauge = metrics.gauge(
            "serve_trace_buffer_bytes",
            help="columnar trace-buffer bytes held across resolved jobs",
        )
        #: Telemetry of the most recently computed job (``/healthz``).
        self.last_trace_meta: Optional[Dict[str, object]] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker tasks (call from a running event loop)."""
        loop = asyncio.get_running_loop()
        for _ in range(self.num_workers):
            self._workers.append(loop.create_task(self._worker_loop()))

    async def close(self) -> None:
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._workers.clear()
        self._threads.shutdown(wait=False, cancel_futures=True)

    # -- submission (loop-only) ---------------------------------------------

    def _counter(self, name: str, experiment: str):
        return self.metrics.counter(
            name, {"experiment": experiment},
            help=None,
        )

    def submit(self, request: JobRequest) -> List[Job]:
        """Create one job per requested experiment; resolve or enqueue each."""
        created = []
        for experiment in request.experiments:
            created.append(self._submit_one(experiment, request.config))
        return created

    def _submit_one(self, experiment: str, config: Dict[str, object]) -> Job:
        self._sequence += 1
        job = Job(
            f"j{self._sequence}",
            experiment,
            config,
            cache_key(experiment, config, self._fingerprint),
        )
        self._counter("serve_jobs_submitted_total", experiment).inc()
        job.post("submitted", {"experiment": experiment, "config": config})

        body = self.cache.get(job.cache_key)
        if body is not None:
            self.metrics.counter(
                "serve_cache_hits_total",
                help="requests served from the content-addressed cache",
            ).inc()
            self._register(job)
            job.resolve("cache", body)
            self._counter("serve_jobs_completed_total", experiment).inc()
            self._observe_latency(job)
            return job

        if self._coalescer.leader(job.cache_key) is not None:
            self.metrics.counter(
                "serve_coalesced_requests_total",
                help="requests attached to an identical in-flight job",
            ).inc()
            leader = self._coalescer.follow(job.cache_key, job.id)
            self._register(job)
            job.post("coalesced", {"leader": leader})
            return job

        self.metrics.counter(
            "serve_cache_misses_total",
            help="requests that had to run a simulation",
        ).inc()
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            raise ServeError(
                f"job queue full ({self._queue.maxsize} queued); retry later",
                status=503,
            ) from None
        self._coalescer.lead(job.cache_key, job.id)
        self._register(job)
        self._depth_gauge.set(self._queue.qsize())
        job.post("queued", {"depth": self._queue.qsize()})
        return job

    def _register(self, job: Job) -> None:
        self._jobs[job.id] = job
        self._order.append(job.id)

    # -- lookup -------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise ServeError(f"unknown job {job_id!r}", status=404)
        return job

    def all_jobs(self) -> List[Job]:
        return [self._jobs[job_id] for job_id in self._order]

    # -- execution ----------------------------------------------------------

    async def _worker_loop(self) -> None:
        while True:
            job = await self._queue.get()
            self._depth_gauge.set(self._queue.qsize())
            job.mark_running()
            try:
                outcome = await self._execute(job, job.post)
            except WorkerCrashError as crash:
                self._settle_failure(job, {
                    "message": str(crash),
                    "experiment": crash.experiment,
                    "exitcode": crash.exitcode,
                    "traceback": crash.worker_traceback,
                })
            except asyncio.CancelledError:
                raise
            except Exception as error:  # defensive: never kill the worker loop
                self._settle_failure(job, {
                    "message": repr(error),
                    "experiment": job.experiment,
                })
            else:
                self._settle_success(job, *self._unpack(outcome))

    @staticmethod
    def _unpack(outcome: object):
        """Normalize an executor's return (dict from the real worker;
        bare result bytes from simplified test executors)."""
        if isinstance(outcome, dict):
            return (
                outcome["result"],
                outcome.get("trace"),
                outcome.get("trace_meta"),
            )
        return outcome, None, None

    def _settle_success(
        self,
        job: Job,
        body: bytes,
        trace: Optional[bytes] = None,
        trace_meta: Optional[Dict[str, object]] = None,
    ) -> None:
        self.cache.put(job.cache_key, body)
        followers = self._coalescer.settle(job.cache_key)
        if trace is not None:
            job.trace = trace
            job.trace_meta = trace_meta
            self.last_trace_meta = trace_meta
            self._trace_bytes += len(trace)
            self._trace_gauge.set(self._trace_bytes)
        job.resolve("computed", body)
        self._counter("serve_jobs_completed_total", job.experiment).inc()
        self._observe_latency(job)
        for follower_id in followers:
            follower = self._jobs[follower_id]
            follower.trace = trace
            follower.trace_meta = trace_meta
            follower.resolve("coalesced", body)
            self._counter(
                "serve_jobs_completed_total", follower.experiment
            ).inc()
            self._observe_latency(follower)

    def _settle_failure(self, job: Job, error: Dict[str, object]) -> None:
        followers = self._coalescer.settle(job.cache_key)
        job.fail("computed", error)
        self._counter("serve_jobs_failed_total", job.experiment).inc()
        self._observe_latency(job)
        for follower_id in followers:
            follower = self._jobs[follower_id]
            follower.fail("coalesced", error)
            self._counter("serve_jobs_failed_total", follower.experiment).inc()
            self._observe_latency(follower)

    def _observe_latency(self, job: Job) -> None:
        if job.latency_ms is not None:
            self._latency.observe(job.latency_ms)

    async def _execute_in_worker_process(
        self, job: Job, post: Callable[[str, Dict[str, object]], None]
    ) -> Dict[str, object]:
        """Default executor: one fresh worker process per job."""
        loop = asyncio.get_running_loop()

        def forward(data: object) -> None:
            # Called on the executor thread by the process babysitter;
            # re-enter the loop so all Job mutation stays single-threaded.
            name = "progress"
            if isinstance(data, dict) and "type" in data:
                name = str(data["type"])
            loop.call_soon_threadsafe(post, name, data)

        payload = {"experiment": job.experiment, "config": job.config}
        return await loop.run_in_executor(
            self._threads,
            functools.partial(
                run_in_process,
                execute_job,
                job.experiment,
                payload,
                forward,
                # Partitioned jobs fork their own shard processes, which a
                # daemonic worker is forbidden to do.
                daemon=False,
            ),
        )
