"""Stdlib client for a running ``cedar-repro serve`` instance.

Used by ``cedar-repro submit``, the test suite, and CI's serve smoke job,
so the server's wire behavior is exercised end to end through the same
code users script against.  One :class:`http.client.HTTPConnection` per
call (the server closes connections after each response), blocking, no
dependencies.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ServeError

#: Default port shared with the ``serve`` subcommand.
DEFAULT_PORT = 8737


class ServeClient:
    """Blocking JSON/SSE client for one server address."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
        timeout: float = 300.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing -----------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[int, Dict[str, str], bytes]:
        connection = self._connection()
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            payload = response.read()
            header_map = {
                name.lower(): value for name, value in response.getheaders()
            }
            return response.status, header_map, payload
        finally:
            connection.close()

    def _request_json(
        self, method: str, path: str, document: Optional[object] = None
    ) -> Tuple[int, Dict[str, str], Dict[str, object]]:
        body = (
            json.dumps(document).encode("utf-8") if document is not None else None
        )
        status, headers, payload = self._request(method, path, body)
        try:
            decoded = json.loads(payload.decode("utf-8")) if payload else {}
        except ValueError:
            raise ServeError(
                f"{method} {path}: server sent non-JSON ({payload[:80]!r})",
                status=502,
            ) from None
        if status >= 400:
            raise ServeError(
                str(decoded.get("error", f"{method} {path} -> {status}")),
                status=status,
            )
        return status, headers, decoded

    # -- endpoints ----------------------------------------------------------

    def healthz(self) -> Dict[str, object]:
        return self._request_json("GET", "/healthz")[2]

    def metrics_text(self) -> str:
        status, _, payload = self._request("GET", "/metrics")
        if status != 200:
            raise ServeError(f"GET /metrics -> {status}", status=status)
        return payload.decode("utf-8")

    def submit(
        self,
        experiment: Optional[str] = None,
        config: Optional[Dict[str, bool]] = None,
        experiments: Optional[List[str]] = None,
    ) -> Dict[str, object]:
        """POST /jobs; returns the response document plus ``cache_status``."""
        request: Dict[str, object] = {}
        if experiment is not None:
            request["experiment"] = experiment
        if experiments is not None:
            request["experiments"] = experiments
        if config is not None:
            request["config"] = config
        _, headers, document = self._request_json("POST", "/jobs", request)
        document["cache_status"] = headers.get("x-cedar-cache")
        return document

    def job(self, job_id: str) -> Dict[str, object]:
        return self._request_json("GET", f"/jobs/{job_id}")[2]

    def jobs(self) -> List[Dict[str, object]]:
        return self._request_json("GET", "/jobs")[2]["jobs"]

    def result(self, job_id: str) -> Tuple[bytes, Optional[str]]:
        """The result document bytes and the ``X-Cedar-Cache`` status."""
        status, headers, payload = self._request("GET", f"/jobs/{job_id}/result")
        if status != 200:
            try:
                message = json.loads(payload.decode("utf-8")).get("error")
            except ValueError:
                message = payload[:200].decode("utf-8", "replace")
            raise ServeError(str(message), status=status)
        return payload, headers.get("x-cedar-cache")

    def trace(self, job_id: str) -> bytes:
        """The job's columnar trace snapshot, as wire bytes.

        Feed the result to
        :meth:`repro.trace.TraceSnapshot.from_bytes` or a
        :class:`repro.trace.TraceMerger` to render or merge it.
        """
        status, _, payload = self._request("GET", f"/jobs/{job_id}/trace")
        if status != 200:
            try:
                message = json.loads(payload.decode("utf-8")).get("error")
            except ValueError:
                message = payload[:200].decode("utf-8", "replace")
            raise ServeError(str(message), status=status)
        return payload

    def events(self, job_id: str) -> Iterator[Tuple[str, Dict[str, object]]]:
        """Stream ``(event, data)`` pairs until the server ends the stream."""
        connection = self._connection()
        try:
            connection.request("GET", f"/jobs/{job_id}/events")
            response = connection.getresponse()
            if response.status != 200:
                raise ServeError(
                    f"GET /jobs/{job_id}/events -> {response.status}",
                    status=response.status,
                )
            event_name: Optional[str] = None
            data_text = ""
            while True:
                raw = response.readline()
                if not raw:
                    return
                line = raw.decode("utf-8").rstrip("\n")
                if line.startswith("event: "):
                    event_name = line[len("event: "):]
                elif line.startswith("data: "):
                    data_text = line[len("data: "):]
                elif line == "" and event_name is not None:
                    data = json.loads(data_text) if data_text else {}
                    yield event_name, data
                    if event_name == "end":
                        return
                    event_name, data_text = None, ""
        finally:
            connection.close()

    def wait(self, job_id: str, timeout: float = 300.0) -> Dict[str, object]:
        """Block until the job resolves; returns the final job document."""
        deadline = time.monotonic() + timeout
        while True:
            document = self.job(job_id)
            if document["state"] in ("done", "failed"):
                return document
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"job {job_id} still {document['state']} after "
                    f"{timeout:.0f}s",
                    status=504,
                )
            time.sleep(0.05)
