"""Canonical JSON forms of experiment results.

Shared by the CLI (``run --json``) and the serving tier, which must agree
on result bytes: the serve cache stores the exact document a job produced
and replays it on a hit, so serialization has to be deterministic -- keys
sorted, one canonical rendering -- and identical no matter which entry
point produced it.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from typing import Mapping


def json_key(key: object) -> str:
    if isinstance(key, str):
        return key
    if isinstance(key, (tuple, list)):
        return "/".join(str(part) for part in key)
    return str(key)


def jsonable(value: object) -> object:
    """Best-effort conversion of experiment results to JSON-safe data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return jsonable(value.value)
    if isinstance(value, dict):
        return {json_key(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def canonical_bytes(record: Mapping[str, object]) -> bytes:
    """The one serialized form of a result record (sorted keys, LF-ended)."""
    return (json.dumps(record, indent=2, sort_keys=True) + "\n").encode("utf-8")
