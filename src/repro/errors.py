"""Exception hierarchy for the Cedar reproduction library."""

from __future__ import annotations


class CedarError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(CedarError):
    """A machine or workload configuration is inconsistent."""


class SpecError(ConfigurationError):
    """A declarative :class:`~repro.builder.MachineSpec` is invalid.

    Structured so tooling (the sweep runner, the serve schema validator,
    tests) can triage without parsing the message: ``field`` names the
    spec field that failed validation -- a declared field
    (``memory_interleave_bytes``) or a derived quantity
    (``routing_tag_bits``) -- and ``value`` carries the offending value.
    """

    def __init__(self, field: str, message: str, value=None) -> None:
        self.field = field
        self.value = value
        text = f"spec field {field!r}: {message}"
        if value is not None:
            text += f" (got {value!r})"
        super().__init__(text)


class SimulationError(CedarError):
    """The discrete-event simulator reached an invalid state."""


class SanitizerError(SimulationError):
    """A hardware invariant checked by the runtime sanitizer was violated.

    Structured so tooling can triage without parsing the message: the
    invariant class (``network.conservation``, ``queue.capacity``, ...),
    the component that broke it, the simulation cycle when known, a
    free-form details dict, and the trace-bus span context (the names of
    the spans open on the machine when the violation fired).
    """

    def __init__(
        self,
        invariant: str,
        component: str,
        message: str,
        cycle=None,
        details=None,
        span_context=None,
    ) -> None:
        self.invariant = invariant
        self.component = component
        self.cycle = cycle
        self.details = dict(details or {})
        self.span_context = list(span_context or [])
        text = f"[{invariant}] {component}: {message}"
        if cycle is not None:
            text += f" (cycle {cycle})"
        if self.details:
            pairs = ", ".join(f"{k}={v!r}" for k, v in sorted(self.details.items()))
            text += f" [{pairs}]"
        if self.span_context:
            text += " in " + " > ".join(self.span_context)
        super().__init__(text)


class WorkerCrashError(SimulationError):
    """A parallel worker process raised or died mid-experiment.

    Structured so the serving tier can mark exactly one job failed instead
    of wedging its queue on a bare pool traceback: the experiment key the
    worker was running, the process exit code when the worker died without
    reporting (``None`` if it raised and reported), and the worker-side
    traceback text when one was captured.
    """

    def __init__(
        self,
        experiment: str,
        message: str,
        exitcode=None,
        worker_traceback=None,
    ) -> None:
        self.experiment = experiment
        self.exitcode = exitcode
        self.worker_traceback = worker_traceback
        text = f"experiment {experiment!r}: {message}"
        if exitcode is not None:
            text += f" (worker exit code {exitcode})"
        super().__init__(text)


class ServeError(CedarError):
    """A serving-tier request was malformed or cannot be satisfied.

    ``status`` is the HTTP status the server maps the error to (400 for
    malformed requests, 404 for unknown jobs/experiments, 503 when the job
    queue is full).
    """

    def __init__(self, message: str, status: int = 400) -> None:
        self.status = status
        super().__init__(message)


class ProgramError(CedarError):
    """A Cedar program (lang layer) is malformed."""


class CompilerError(CedarError):
    """The restructuring compiler was given an IR it cannot handle."""


class MonitorError(CedarError):
    """Performance-monitoring hardware was misused (capacity, bad signal)."""


class TraceError(CedarError):
    """The instrumentation/trace bus was misused (unbalanced spans, no clock)."""


class MetricsError(CedarError):
    """The metrics registry was misused (bad name, kind clash, bad value)."""


class BenchError(CedarError):
    """A benchmark snapshot is malformed or cannot be compared."""


class LintError(CedarError):
    """Unusable input to the static analyzer (unparseable file, bad baseline)."""
