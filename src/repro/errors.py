"""Exception hierarchy for the Cedar reproduction library."""

from __future__ import annotations


class CedarError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(CedarError):
    """A machine or workload configuration is inconsistent."""


class SimulationError(CedarError):
    """The discrete-event simulator reached an invalid state."""


class ProgramError(CedarError):
    """A Cedar program (lang layer) is malformed."""


class CompilerError(CedarError):
    """The restructuring compiler was given an IR it cannot handle."""


class MonitorError(CedarError):
    """Performance-monitoring hardware was misused (capacity, bad signal)."""


class TraceError(CedarError):
    """The instrumentation/trace bus was misused (unbalanced spans, no clock)."""


class MetricsError(CedarError):
    """The metrics registry was misused (bad name, kind clash, bad value)."""


class BenchError(CedarError):
    """A benchmark snapshot is malformed or cannot be compared."""
