"""Validation harness: experiments under the hardware invariant sanitizer.

Glue between :mod:`repro.hardware.sanitize` (the invariant checkers wired
into the hot components) and the rest of the repo:

* :func:`run_experiment_sanitized` -- run one registry experiment with a
  fresh armed sanitizer, finalize the end-of-run conservation checks, and
  return the rendered artifact plus the sanitizer's summary (what
  ``cedar-repro run --sanitize`` calls, per experiment and per worker);
* :mod:`repro.validate.faults` -- the fault drills proving each checker
  class actually fires.

A sanitized run is observationally identical to an unsanitized one (the
sanitizer only reads component state), so the rendered artifact here is
byte-identical to ``run_experiment``'s.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import SanitizerError
from repro.hardware.sanitize import Sanitizer, enabled, sanitizing
from repro.validate.faults import FAULT_DRILLS, run_fault_drills

__all__ = [
    "FAULT_DRILLS",
    "Sanitizer",
    "SanitizerError",
    "enabled",
    "run_experiment_sanitized",
    "run_fault_drills",
    "sanitizing",
]


def run_experiment_sanitized(key: str) -> Tuple[str, object, Dict[str, object]]:
    """Run one experiment with an armed sanitizer.

    Returns:
        ``(rendered, result, summary)`` -- the rendered artifact (identical
        to an unsanitized run), the raw result object, and
        :meth:`Sanitizer.summary`.  The end-of-run :meth:`Sanitizer.finalize`
        conservation checks run only after the experiment completed, so a
        failing simulation surfaces its own error rather than a cascade of
        balance violations.

    Raises:
        SanitizerError: the first invariant violation, aborting the run.
    """
    from repro.experiments.registry import get_experiment

    experiment = get_experiment(key)
    with sanitizing() as sanitizer:
        result = experiment.run()
    sanitizer.finalize()
    return experiment.render(result), result, sanitizer.summary()
