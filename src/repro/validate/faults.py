"""Deliberate invariant breakers ("fault drills") for the sanitizer.

A sanitizer that never fires is indistinguishable from one that checks
nothing, so each invariant class has a *drill*: a self-contained function
that builds real hardware components inside the ambient sanitizing
context, corrupts their state the way a hypothetical simulator bug would,
and performs the action whose check must then raise
:class:`~repro.errors.SanitizerError` with that invariant name.

``FAULT_DRILLS`` maps invariant class -> drill; :func:`run_fault_drills`
runs every drill under a fresh sanitizer and reports which fired.  The
test suite asserts all of them do, which is what makes a green
``--sanitize`` run meaningful.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict

from repro.config import DEFAULT_CONFIG
from repro.errors import SanitizerError
from repro.hardware import sanitize
from repro.hardware.cache import ClusterCache
from repro.hardware.ccb import IterationCounter
from repro.hardware.crossbar import CrossbarSwitch
from repro.hardware.engine import Engine
from repro.hardware.memory import MemoryModule
from repro.hardware.network import OmegaNetwork
from repro.hardware.packet import Packet, PacketKind
from repro.hardware.prefetch import PrefetchHandle
from repro.hardware.queueing import BoundedWordQueue
from repro.hardware.sync_processor import SyncProcessor


def _packet(destination: int, words: int = 1, kind=PacketKind.READ_REQUEST) -> Packet:
    return Packet(kind=kind, source=0, destination=destination, address=0, words=words)


def _drill_queue_capacity() -> None:
    """Word counter drifts away from the packets actually buffered."""
    queue = BoundedWordQueue(8, name="drill.capacity")
    queue.push(_packet(0, words=2))
    queue._used_words -= 1  # a lost word: counter no longer matches packets
    queue.push(_packet(0, words=1))


def _drill_flow_control_credit() -> None:
    """A packet materializes in a queue without passing through push()."""
    queue = BoundedWordQueue(8, name="drill.credit")
    queue.push(_packet(0, words=1))
    smuggled = _packet(0, words=2)
    queue._packets.append(smuggled)  # bypasses the credit ledger entirely
    queue._used_words += smuggled.words
    queue.push(_packet(0, words=1))


def _drill_queue_head() -> None:
    """The crossbar's derived head-route mask lies about a queue head."""
    engine = Engine()
    switch = CrossbarSwitch(
        engine, radix=2, route=lambda p: p.destination % 2,
        queue_words=8, name="drill.xbar",
    )
    switch.input_queues[0].push(_packet(destination=0))  # no sinks: no grant
    switch._head_route[0] = 1  # corrupt the mask behind the listener's back
    switch.wake_all()


def _drill_crossbar_arbiter() -> None:
    """A masked wake skips an output the reference arbiter would grant."""
    engine = Engine()
    switch = CrossbarSwitch(
        engine, radix=2, route=lambda p: p.destination % 2,
        queue_words=8, name="drill.arb",
    )
    switch.input_queues[0].push(_packet(destination=0))
    for arbiter in switch.arbiters:
        arbiter.attach(BoundedWordQueue(8, name="drill.arb.sink"))
        arbiter._fast = True  # force the masked path regardless of env
    switch._fast = True
    switch._heads_for[0] = 0  # lie: "no head routes to output 0"
    switch.arbiters[0].wake()


def _drill_network_conservation() -> None:
    """The same physical packet is injected twice."""
    engine = Engine()
    network = OmegaNetwork(
        engine, 8, DEFAULT_CONFIG.network, name="drill.net"
    )
    packet = _packet(destination=3)
    network.try_inject(0, packet)
    network.try_inject(1, packet)


def _drill_network_routing() -> None:
    """A packet emerges on a line other than its destination tag."""
    engine = Engine()
    network = OmegaNetwork(
        engine, 8, DEFAULT_CONFIG.network, name="drill.route"
    )
    packet = _packet(destination=3)
    network.try_inject(0, packet)
    network.delivery_queue(5).push(packet)  # teleported to the wrong exit line
    network.delivery_queue(5).pop()


def _drill_engine_monotonic() -> None:
    """A queued heap entry is dragged into the past."""
    engine = Engine()
    heapq.heappush(engine._queue, [-1, next(engine._sequence), lambda: None])
    engine.run()


def _drill_engine_schedule() -> None:
    """An unvalidated negative delay reaches the validation-free entry point."""
    engine = Engine()
    engine.schedule_after(-3, lambda: None)


def _drill_memory_balance() -> None:
    """A module pulls a request addressed to a different module."""
    engine = Engine()
    reverse = OmegaNetwork(engine, 8, DEFAULT_CONFIG.network, name="drill.rev")
    forward_queue = BoundedWordQueue(8, name="drill.fwd")
    module = MemoryModule(
        engine=engine,
        index=2,
        config=DEFAULT_CONFIG.global_memory,
        sync_config=DEFAULT_CONFIG.sync,
        forward_queue=forward_queue,
        reverse=reverse,
    )
    assert module.index == 2
    forward_queue.push(_packet(destination=5))  # steered to the wrong module


def _drill_fullempty_prefetch() -> None:
    """A buffer word arrives twice (write-while-full)."""
    handle = PrefetchHandle(length=4, stride=1, start_address=0, fire_cycle=0)
    handle.record_arrival(0, cycle=5)
    sanitizer = sanitize.current()
    assert sanitizer is not None
    sanitizer.check_fullempty_write("drill.prefetch", handle, 0)


def _drill_sync_shadow() -> None:
    """A synchronization word is mutated behind the processor's back."""
    sync = SyncProcessor()
    sync.test_and_set(0)  # shadow model now in lockstep
    sync._words[0] = 7  # non-indivisible interference
    sync.test_and_set(0)


def _drill_cache_balance() -> None:
    """The cache directory holds more lines than physically exist."""
    engine = Engine()
    cache = ClusterCache(
        engine, DEFAULT_CONFIG.cache, DEFAULT_CONFIG.cluster_memory,
        name="drill.cache",
    )
    for line in range(cache.num_lines + 2):  # bypass _touch's LRU eviction
        cache._lines[line] = False
    cache.access(0)


def _drill_ccb_iterations() -> None:
    """A self-scheduled loop iteration is dispensed twice."""
    counter = IterationCounter(4)
    sanitizer = sanitize.current()
    assert sanitizer is not None
    sanitizer.register_cdoall(counter, 4, 2)
    sanitizer.ccb_claimed(counter, 1)
    sanitizer.ccb_claimed(counter, 1)


def _drill_boundary_conservation() -> None:
    """A boundary packet is delivered twice across the partition cut."""
    from repro.partition.boundary import BoundaryChannel

    channel = BoundaryChannel("drill.bnd", num_ports=2, latency=2,
                              capacity_words=8)
    channel.attach_sink(0, lambda packet: None)
    channel.links[0].send(_packet(0, words=1), cycle=0)
    message = channel.drain_outboxes()[0]
    channel.deliver(message)
    channel.deliver(message)  # replayed: conserved-exactly-once breaks


#: Invariant class -> drill that must raise SanitizerError for it.
FAULT_DRILLS: Dict[str, Callable[[], None]] = {
    "queue.capacity": _drill_queue_capacity,
    "flow_control.credit": _drill_flow_control_credit,
    "queue.head": _drill_queue_head,
    "crossbar.arbiter": _drill_crossbar_arbiter,
    "network.conservation": _drill_network_conservation,
    "network.routing": _drill_network_routing,
    "engine.monotonic": _drill_engine_monotonic,
    "engine.schedule": _drill_engine_schedule,
    "memory.balance": _drill_memory_balance,
    "fullempty.prefetch": _drill_fullempty_prefetch,
    "sync.shadow": _drill_sync_shadow,
    "cache.balance": _drill_cache_balance,
    "ccb.iterations": _drill_ccb_iterations,
    "boundary.conservation": _drill_boundary_conservation,
}


def run_fault_drills() -> Dict[str, bool]:
    """Run every drill under a fresh sanitizer; True = the checker fired.

    Each drill runs in its own :func:`~repro.hardware.sanitize.sanitizing`
    block and counts as fired only when it raises a
    :class:`SanitizerError` naming its own invariant class.
    """
    results: Dict[str, bool] = {}
    for invariant, drill in FAULT_DRILLS.items():
        fired = False
        with sanitize.sanitizing():
            try:
                drill()
            except SanitizerError as error:
                fired = error.invariant == invariant
        results[invariant] = fired
    return results
