"""Cray Y-MP/8 baseline (8 processors, 6 ns clock).

The paper compares Cedar to the Y-MP/8 throughout Section 4.3: its
clock-speed ratio is quoted ("170ns/6ns = 28.33"), its compiled Perfect
ensemble is unstable (Table 5: In(13,0) = 75.3, In(13,2) = 29.0,
In(13,6) = 5.3 -- "the YMP needs six [exceptions], about half of the
Perfect codes"), its compiled band census is 0 high / 6 intermediate /
7 unacceptable (Table 6), and its manually-optimized codes sit "about half
high and half intermediate ... with one unacceptable" (Figure 3).

The per-code values below are reconstructed to satisfy those statements
simultaneously; see EXPERIMENTS.md for the verification.
"""

from __future__ import annotations

from repro.baselines.machine import BaselineMachine, CodeMeasurement


def _m(code, compiled_speedup, manual_speedup, compiled_mflops):
    return CodeMeasurement(
        code=code,
        compiled_speedup=compiled_speedup,
        manual_speedup=manual_speedup,
        compiled_mflops=compiled_mflops,
    )


#: Reconstructed Y-MP/8 Perfect measurements.
#: compiled_speedup: cf77 autotasking vs one Y-MP CPU.
#: manual_speedup: hand-tuned vs one Y-MP CPU.
#: compiled_mflops: 8-CPU delivered rate of the compiled version.
_MEASUREMENTS = {
    m.code: m
    for m in (
        _m("ADM", 1.25, 2.8, 9.5),
        _m("ARC3D", 3.90, 6.5, 90.4),
        _m("BDNA", 1.30, 3.2, 17.0),
        _m("DYFESM", 1.50, 4.2, 22.0),
        _m("FLO52", 3.40, 6.0, 58.0),
        _m("MDG", 1.20, 2.4, 10.9),
        _m("MG3D", 1.80, 4.4, 32.9),
        _m("OCEAN", 1.32, 2.0, 6.2),
        _m("QCD", 1.10, 1.8, 2.4),
        _m("SPEC77", 2.20, 4.8, 26.0),
        _m("SPICE", 1.00, 1.1, 1.2),
        _m("TRACK", 1.00, 1.5, 2.0),
        _m("TRFD", 2.80, 5.5, 53.0),
    )
}

CRAY_YMP8 = BaselineMachine(
    name="cray-ymp8",
    processors=8,
    clock_ns=6.0,
    measurements=_MEASUREMENTS,
)
