"""Thinking Machines CM-5 model for the PPT4 comparison (Section 4.3).

[FWPS92] measured banded matrix-vector products (bandwidths 3 and 11) on a
CM-5 *without* floating-point accelerators.  The paper's reading:

* 16K <= N <= 256K, P in {32, 256, 512}: "high performance was not
  achieved"; "the CM-5 exhibits scalable intermediate performance".
* Absolute rates at 32 processors: 28-32 MFLOPS for BW=3 and 58-67 MFLOPS
  for BW=11 as N ranges 16K..256K -- per-processor MFLOPS roughly
  equivalent to Cedar's CG.

The model: each SPARC node streams the band and x from memory (no vector
unit, so the node is memory-rate bound at ``node_word_rate``); the
communication structure of the data-parallel implementation costs a
per-element gather penalty (boundary x values and the layout's general
router traffic -- the "communication structure of the CM-5 [that] evidently
causes these performance difficulties") plus a per-matvec combine latency
through the control network.  Constants are calibrated to the quoted rate
ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.ppt import ScalabilityPoint
from repro.kernels.banded_matvec import BandedMatvec


@dataclass(frozen=True)
class CM5Model:
    """A CM-5 partition without floating-point accelerators."""

    processors: int = 32
    #: Sustained node memory rate in 64-bit words/second (scalar SPARC).
    node_word_rate: float = 2.37e6
    #: Fraction of the node rate surviving the data-parallel gather/layout
    #: overhead; lower for low arithmetic intensity (more router traffic
    #: per flop).
    gather_efficiency_low_bw: float = 0.34
    gather_efficiency_high_bw: float = 0.48
    #: Per-matvec combine/broadcast latency through the control network.
    combine_seconds: float = 150e-6
    #: Per-word network transfer time for halo exchange.
    network_word_seconds: float = 2e-6

    def _gather_efficiency(self, bandwidth: int) -> float:
        if bandwidth <= 5:
            return self.gather_efficiency_low_bw
        return self.gather_efficiency_high_bw

    def node_mflops_serial(self, workload: BandedMatvec) -> float:
        """One node running the whole (small) problem: no communication."""
        flops_per_word = workload.flops / workload.words_touched
        return self.node_word_rate * flops_per_word / 1e6

    def matvec_seconds(self, workload: BandedMatvec) -> float:
        """One banded matvec on the full partition."""
        per_node_flops = workload.flops / self.processors
        flops_per_word = workload.flops / workload.words_touched
        rate = (
            self.node_word_rate
            * flops_per_word
            * self._gather_efficiency(workload.bandwidth)
        )
        compute = per_node_flops / rate
        halo = workload.halo_words(self.processors) * self.network_word_seconds
        return compute + halo + self.combine_seconds

    def mflops(self, workload: BandedMatvec) -> float:
        return workload.flops / self.matvec_seconds(workload) / 1e6

    def efficiency(self, workload: BandedMatvec) -> float:
        """Delivered rate relative to P perfect serial nodes."""
        return self.mflops(workload) / (
            self.processors * self.node_mflops_serial(workload)
        )

    def scalability_points(
        self, bandwidth: int, problem_sizes: List[int]
    ) -> List[ScalabilityPoint]:
        """PPT4 observations across problem sizes at this partition size."""
        points = []
        for n in problem_sizes:
            workload = BandedMatvec(n=n, bandwidth=bandwidth)
            points.append(
                ScalabilityPoint(
                    processors=self.processors,
                    problem_size=n,
                    mflops=self.mflops(workload),
                    efficiency=self.efficiency(workload),
                )
            )
        return points
