"""Cray 1 baseline (single processor, 12.5 ns clock, "with modern compiler").

Table 5 gives the Cray 1's compiled Perfect instabilities as
In(13,0) = 10.9 and In(13,2) = 4.6: a single-processor vector machine is
far more *stable* across the suite than either parallel system -- the
observation the paper uses to argue that stability is what parallel
machines are missing.  Being a uniprocessor it has no speedup columns;
the manual/compiled speedups are identically 1.
"""

from __future__ import annotations

from repro.baselines.machine import BaselineMachine, CodeMeasurement


def _m(code, mflops):
    return CodeMeasurement(
        code=code, compiled_speedup=1.0, manual_speedup=1.0,
        compiled_mflops=mflops,
    )


#: Reconstructed Cray 1 compiled MFLOPS (modern-compiler column).
_MEASUREMENTS = {
    m.code: m
    for m in (
        _m("ADM", 4.5),
        _m("ARC3D", 21.5),
        _m("BDNA", 6.0),
        _m("DYFESM", 7.0),
        _m("FLO52", 11.96),
        _m("MDG", 5.0),
        _m("MG3D", 9.5),
        _m("OCEAN", 3.5),
        _m("QCD", 3.0),
        _m("SPEC77", 8.0),
        _m("SPICE", 1.97),
        _m("TRACK", 2.6),
        _m("TRFD", 11.0),
    )
}

CRAY_1 = BaselineMachine(
    name="cray-1",
    processors=1,
    clock_ns=12.5,
    measurements=_MEASUREMENTS,
)
