"""Comparison machines of Section 4.3: Cray Y-MP/8, Cray 1, TMC CM-5.

We have none of this hardware; each model reproduces the *published-
measurement shape* the paper compares against -- per-code MFLOPS/speedup
ensembles for the Perfect codes on the Crays (reconstructed to satisfy the
paper's Table 5 instabilities, Table 6 band census, and Figure 3 reading),
and a parametric communication/computation model of the CM-5 banded
matrix-vector product from [FWPS92].
"""

from repro.baselines.machine import BaselineMachine, CodeMeasurement
from repro.baselines.cray1 import CRAY_1
from repro.baselines.cray_ymp import CRAY_YMP8
from repro.baselines.cm5 import CM5Model

__all__ = [
    "BaselineMachine",
    "CodeMeasurement",
    "CRAY_YMP8",
    "CRAY_1",
    "CM5Model",
]
