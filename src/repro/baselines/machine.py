"""Common shape of a baseline machine: a name, a processor count, and
per-code measurements at the restructuring levels the paper compares."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.core.metrics import CodeResult, Ensemble


@dataclass(frozen=True)
class CodeMeasurement:
    """One Perfect code on a baseline machine.

    Attributes:
        code: Perfect code name.
        compiled_speedup: Speedup of the vendor-compiled (autotasked)
            version over one processor of the same machine.
        manual_speedup: Speedup of the manually optimized version.
        compiled_mflops: Delivered MFLOPS of the compiled version (the
            ensemble Table 5's instabilities are computed over).
    """

    code: str
    compiled_speedup: float
    manual_speedup: float
    compiled_mflops: float


@dataclass(frozen=True)
class BaselineMachine:
    """A machine we only know through published measurements."""

    name: str
    processors: int
    clock_ns: float
    measurements: Mapping[str, CodeMeasurement]

    def codes(self) -> List[str]:
        return sorted(self.measurements)

    def mflops_ensemble(self) -> Dict[str, float]:
        """Per-code compiled MFLOPS (Table 5's rate measure)."""
        return {c: m.compiled_mflops for c, m in self.measurements.items()}

    def speedups(self, manual: bool = False) -> Dict[str, float]:
        return {
            c: (m.manual_speedup if manual else m.compiled_speedup)
            for c, m in self.measurements.items()
        }

    def efficiencies(self, manual: bool = False) -> Dict[str, float]:
        return {
            c: s / self.processors for c, s in self.speedups(manual).items()
        }

    def ensemble(self, serial_seconds: Optional[Mapping[str, float]] = None,
                 manual: bool = False) -> Ensemble:
        """An :class:`Ensemble` view for the PPT evaluators.

        Uses a nominal 100s serial time per code unless real serial times
        are supplied; only ratios (speedup/efficiency) and the MFLOPS
        column matter to the methodology.
        """
        ensemble = Ensemble(machine=self.name, processors=self.processors)
        for code, m in sorted(self.measurements.items()):
            serial = (serial_seconds or {}).get(code, 100.0)
            speedup = m.manual_speedup if manual else m.compiled_speedup
            parallel = serial / speedup
            ensemble.add(
                CodeResult(
                    code=code,
                    machine=self.name,
                    processors=self.processors,
                    serial_seconds=serial,
                    parallel_seconds=parallel,
                    flop_count=m.compiled_mflops * parallel * 1e6,
                )
            )
        return ensemble
