"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    cedar-repro list                 # what can be regenerated
    cedar-repro run table1           # one artifact
    cedar-repro run all              # everything (slow: cycle simulations)
    cedar-repro run all --json --out results.json
                                     # one aggregate JSON document
    cedar-repro run table2 --sanitize
                                     # same artifact, with every hardware
                                     # invariant machine-checked en route
    cedar-repro run table1 table2 --jobs 2 --trace-out trace.json
                                     # several experiments at once, each on
                                     # its own columnar tracer; the buffers
                                     # merge into ONE Chrome trace that is
                                     # byte-identical for any --jobs N
    cedar-repro run table2 --partitions 4
                                     # ONE experiment split across 4 worker
                                     # processes (partitioned parallel
                                     # simulation); stdout, --trace-out and
                                     # sanitizer output are byte-identical
                                     # for any partition count
    cedar-repro sweep --axis memory_modules=16,32 --axis port_queue_words=2,4
                                     # design-space sweep: run the spec grid
                                     # through the probe workload, emit a
                                     # Pareto-annotated artifact that is
                                     # byte-identical for any --jobs N
    cedar-repro trace table2 --out trace.json --report
                                     # same artifact, plus machine-wide
                                     # instrumentation (Chrome trace JSON
                                     # and a utilization report)
    cedar-repro bench                # full suite -> BENCH_<n>.json snapshot
                                     # + regression report vs the previous one
    cedar-repro bench --quick        # sub-minute subset (CI gate)
    cedar-repro lint src            # static determinism/discipline
                                     # analysis; exit 1 on any finding
                                     # not in LINT_BASELINE.json
    cedar-repro lint --explain det.set-iter
                                     # the determinism argument one rule
                                     # protects, and its proof fixtures
    cedar-repro serve --jobs 4 --cache-dir .cedar-cache
                                     # simulation-as-a-service: HTTP/JSON job
                                     # server with a deterministic result
                                     # cache and request coalescing
    cedar-repro submit table2 --watch
                                     # run table2 on the server (progress
                                     # events on stderr, result on stdout)
"""

from __future__ import annotations

import argparse
import cProfile
import difflib
import json
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro import results as results_mod
from repro.errors import BenchError, LintError, WorkerCrashError
from repro.experiments.registry import (
    EXPERIMENTS,
    QUICK_EXPERIMENTS,
    run_experiment,
    run_experiment_traced,
)
from repro.hardware import sanitize
from repro.metrics import bench as bench_mod
from repro.parallel import parallel_map
from repro.partition import profile_top_from_stats, run_partitioned
from repro.trace import (
    TraceMerger,
    Tracer,
    tracing,
    utilization_report,
    write_chrome_trace,
)
from repro.validate import run_experiment_sanitized
from repro.version import version_fingerprint


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cedar-repro",
        description=(
            "Reproduction of 'The Cedar System and an Initial Performance "
            "Study' (ISCA 1993)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list regenerable tables/figures")
    run = sub.add_parser("run", help="run one or more experiments (or 'all')")
    run.add_argument(
        "experiments",
        nargs="+",
        metavar="EXPERIMENT",
        help="experiment key(s) from 'list', or 'all'",
    )
    run.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON results (for benchmarking scripts)",
    )
    run.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="write results to FILE instead of stdout (implies --json)",
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run independent experiments in N worker processes "
        "(output order stays deterministic)",
    )
    run.add_argument(
        "--partitions",
        type=int,
        default=None,
        metavar="N",
        help="partitioned parallel simulation: shard each experiment's "
        "independent machine-run units across N worker processes and "
        "recombine deterministically (stdout, sanitizer summaries and "
        "--trace-out are byte-identical for any N; per-partition "
        "events/s and barrier-stall telemetry goes to stderr); "
        "mutually exclusive with --jobs",
    )
    run.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="record every run on a columnar tracer and write one merged "
        "Chrome trace-event JSON (per-worker buffers are merged "
        "deterministically, so --jobs N output is byte-identical to "
        "--jobs 1); with --json, each record also gains a 'trace' "
        "telemetry section",
    )
    run.add_argument(
        "--sanitize",
        action="store_true",
        help="arm the hardware invariant sanitizer: every run is checked "
        "against the invariants in DESIGN.md and a violation aborts with "
        "a structured error (CEDAR_SANITIZE=1 implies this)",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="wrap each run in cProfile and print the hottest simulator "
        "functions; with --jobs or --partitions the per-worker stats "
        "are aggregated in the parent",
    )
    run.add_argument(
        "--top",
        type=int,
        default=15,
        metavar="N",
        help="how many functions --profile reports (default 15)",
    )
    sweep = sub.add_parser(
        "sweep",
        help="design-space sweep: run a grid of machine specs through the "
        "deterministic probe workload and extract the Pareto front "
        "(MFLOPS / speedup / network conflicts)",
    )
    sweep.add_argument(
        "--axis",
        action="append",
        default=None,
        metavar="FIELD=V1,V2,...",
        help="sweep one MachineSpec field over comma-separated values "
        "(repeatable; the grid is the cartesian product, first axis "
        "slowest); e.g. --axis memory_modules=16,32",
    )
    sweep.add_argument(
        "--points",
        metavar="FILE",
        default=None,
        help="JSON file holding a list of spec objects to run instead of "
        "(or in addition to) the --axis grid",
    )
    sweep.add_argument(
        "--blocks",
        type=int,
        default=None,
        metavar="N",
        help="prefetched blocks each CE streams per measurement "
        "(default: the workload's steady-state setting)",
    )
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run sweep points in N worker processes (the artifact is "
        "byte-identical for any N)",
    )
    sweep.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="write the sweep artifact JSON to FILE (default: stdout)",
    )
    sweep.add_argument(
        "--report",
        action="store_true",
        help="print the human-readable sweep table (replaces the JSON on "
        "stdout unless --out is given)",
    )
    trace = sub.add_parser(
        "trace", help="run one experiment with machine-wide instrumentation"
    )
    trace.add_argument("experiment", help="experiment key from 'list'")
    trace.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="write Chrome trace-event JSON (chrome://tracing, Perfetto)",
    )
    trace.add_argument(
        "--report",
        action="store_true",
        help="print the per-component utilization report",
    )
    bench = sub.add_parser(
        "bench",
        help="run the experiment suite into a BENCH_<n>.json snapshot and "
        "compare against the previous snapshot",
    )
    bench.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment keys to bench (default: the full suite)",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="bench only the sub-minute experiments (the CI gate)",
    )
    bench.add_argument(
        "--dir",
        default=".",
        metavar="DIR",
        help="directory holding BENCH_<n>.json snapshots (default: .)",
    )
    bench.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="snapshot output path (default: next BENCH_<n>.json in --dir)",
    )
    bench.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="baseline snapshot to diff against (default: latest BENCH_* "
        "in --dir; 'none' skips the comparison)",
    )
    bench.add_argument(
        "--no-trace",
        action="store_true",
        help="skip simulator self-profiling timelines (fidelity metrics "
        "are still recorded)",
    )
    bench.add_argument(
        "--fidelity-tolerance",
        type=float,
        default=None,
        metavar="REL",
        help="relative tolerance before fidelity drift hard-fails "
        f"(default {bench_mod.DEFAULT_TOLERANCES['fidelity']:g})",
    )
    bench.add_argument(
        "--machine-tolerance",
        type=float,
        default=None,
        metavar="REL",
        help="relative tolerance for simulated-machine metrics "
        f"(default {bench_mod.DEFAULT_TOLERANCES['machine']:g})",
    )
    bench.add_argument(
        "--profile-tolerance",
        type=float,
        default=None,
        metavar="REL",
        help="relative tolerance before throughput drift warns "
        f"(default {bench_mod.DEFAULT_TOLERANCES['self_profile']:g})",
    )
    bench.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings (throughput drift) too",
    )
    bench.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="bench experiments in N worker processes; the snapshot is "
        "byte-identical for any N (modulo self_profile wall-clock)",
    )
    bench.add_argument(
        "--partitions",
        type=int,
        default=None,
        metavar="N",
        help="additionally time each unit-decomposable experiment under "
        "partitioned execution with N partitions and record the "
        "partitioned events/s in self_profile (fidelity and machine "
        "sections still come from the normal run, so they cannot "
        "drift)",
    )
    lint = sub.add_parser(
        "lint",
        help="static determinism & simulation-discipline analysis "
        "(AST rules, noqa suppressions, committed baseline; see "
        "DESIGN.md §11)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        metavar="PATH",
        help="files or directories to analyze (default: src)",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable findings (schema version 1)",
    )
    lint.add_argument(
        "--explain",
        metavar="RULE",
        default=None,
        help="print a rule's determinism argument and exit ('all' for "
        "the whole catalogue)",
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="grandfather list of sanctioned findings (default: "
        "LINT_BASELINE.json when present; 'none' disables)",
    )
    lint.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="write the current non-baselined findings as a new baseline "
        "(entries get a TODO comment to replace with a justification)",
    )
    lint.add_argument(
        "--self-check",
        action="store_true",
        help="prove every registered rule against its fire/clean fixture "
        "pair instead of linting (the CI guard against silently-broken "
        "rules)",
    )
    lint.add_argument(
        "--fixtures",
        metavar="DIR",
        default="tests/lint/fixtures",
        help="fixture directory for --self-check "
        "(default: tests/lint/fixtures)",
    )
    serve = sub.add_parser(
        "serve",
        help="run the simulation-as-a-service HTTP/JSON job server "
        "(deterministic result cache + request coalescing)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8737,
        help="bind port (default 8737; 0 picks a free port)",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=2,
        metavar="N",
        help="run up to N simulations concurrently, one worker process "
        "each (default 2)",
    )
    serve.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="spill the content-addressed result cache to DIR so a "
        "restarted server keeps its warm set (default: memory only)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        metavar="N",
        help="shed submissions with 503 once N jobs are queued (default 64)",
    )
    submit = sub.add_parser(
        "submit",
        help="submit an experiment to a running `cedar-repro serve` and "
        "print the result document",
    )
    submit.add_argument(
        "experiment", help="experiment key from 'list', or 'all' (a sweep)"
    )
    submit.add_argument("--host", default="127.0.0.1", help="server address")
    submit.add_argument(
        "--port", type=int, default=8737, help="server port (default 8737)"
    )
    submit.add_argument(
        "--config",
        metavar="JSON",
        default=None,
        help="config overrides as a JSON object, e.g. "
        "'{\"sanitize\": true}'",
    )
    submit.add_argument(
        "--watch",
        action="store_true",
        help="stream the job's progress events to stderr while waiting",
    )
    submit.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="write the result document(s) to FILE instead of stdout",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="give up waiting for the job after this long (default 600)",
    )
    return parser


def _unknown_experiment(key: str) -> int:
    """Error message with near-miss suggestions; returns the exit status."""
    message = f"unknown experiment {key!r}"
    matches = difflib.get_close_matches(key, sorted(EXPERIMENTS), n=3, cutoff=0.4)
    if matches:
        message += "; did you mean: " + ", ".join(matches) + "?"
    else:
        message += "; try 'cedar-repro list'"
    print(message, file=sys.stderr)
    return 2


#: Kept under their historical private names; the canonical definitions
#: moved to :mod:`repro.results` so the serve tier shares them.
_json_key = results_mod.json_key
_jsonable = results_mod.jsonable


def _profile_top(profiler: cProfile.Profile, top: int) -> List[Dict[str, object]]:
    """The ``top`` hottest functions by total time, as JSON-safe records."""
    profiler.create_stats()
    return profile_top_from_stats(profiler.stats, top)


def _render_profile(rows: List[Dict[str, object]]) -> str:
    lines = [f"{'tottime':>10s} {'cumtime':>10s} {'ncalls':>12s}  function"]
    for row in rows:
        lines.append(
            f"{row['tottime']:10.3f} {row['cumtime']:10.3f} "
            f"{row['ncalls']:12d}  {row['function']}"
        )
    return "\n".join(lines)


def _sanitizer_line(summary: Dict[str, object]) -> str:
    """One-line human rendering of a sanitizer summary."""
    return (
        f"sanitizer: {summary['total_checks']:,} checks across "
        f"{len(summary['checks'])} invariant classes, "
        f"{summary['violations']} violation(s)"
    )


def _execute_run(
    key: str, sanitized: bool, traced: bool, profiled: bool = False
) -> Tuple[
    str, object, Optional[Dict], Optional[bytes], Optional[Dict], Optional[Dict]
]:
    """Run one experiment; optionally record it on a columnar tracer.

    Returns ``(rendered, jsonable result, sanitizer summary, trace
    snapshot wire bytes, trace telemetry, cProfile stats dict)`` -- the
    trace pair ``None`` unless ``traced``, the stats ``None`` unless
    ``profiled``.  The trace travels as wire bytes even in-process, so
    ``--jobs 1`` and ``--jobs N`` feed the merger byte-identical inputs;
    the raw stats dict (not a rendered top-N) travels likewise, so
    worker-process profiles aggregate in the parent.
    """
    tracer = Tracer(enabled=True) if traced else None
    profiler = cProfile.Profile() if profiled else None
    summary = None
    began = time.perf_counter()
    if profiler is not None:
        profiler.enable()
    try:
        if sanitized:
            if tracer is not None:
                with tracing(tracer):
                    text, result, summary = run_experiment_sanitized(key)
            else:
                text, result, summary = run_experiment_sanitized(key)
        else:
            experiment = EXPERIMENTS[key]
            if tracer is not None:
                with tracing(tracer):
                    result = experiment.run()
            else:
                result = experiment.run()
            text = experiment.render(result)
    finally:
        if profiler is not None:
            profiler.disable()
    trace_bytes: Optional[bytes] = None
    trace_meta: Optional[Dict[str, object]] = None
    if tracer is not None:
        wall_seconds = time.perf_counter() - began
        overhead = tracer.overhead_estimate(wall_seconds)
        trace_bytes = tracer.snapshot().to_bytes()
        trace_meta = {
            "records": tracer.num_records,
            "records_seen": tracer.records_seen,
            "dropped": tracer.dropped,
            "buffer_bytes": tracer.buffer_bytes,
            "overhead_ratio": overhead["ratio"],
            "overhead_per_record_ns": overhead["per_record_ns"],
        }
    profile_stats: Optional[Dict] = None
    if profiler is not None:
        profiler.create_stats()
        profile_stats = profiler.stats
    return text, _jsonable(result), summary, trace_bytes, trace_meta, profile_stats


def _run_worker(
    task: Tuple[str, bool, bool, bool]
) -> Tuple[
    str, str, object, Optional[Dict], Optional[bytes], Optional[Dict],
    Optional[Dict],
]:
    """Worker-process entry: run one experiment, return rendered + JSON data."""
    key, sanitized, traced, profiled = task
    return (key,) + _execute_run(key, sanitized, traced, profiled)


def _run_one(
    key: str, args: argparse.Namespace, sanitized: bool, traced: bool
) -> Tuple[Dict[str, object], Optional[bytes]]:
    """Run ``key`` in-process, honouring --profile/--sanitize/--trace-out."""
    rendered, data, summary, trace_bytes, trace_meta, stats = _execute_run(
        key, sanitized, traced, profiled=args.profile
    )
    record: Dict[str, object] = {
        "experiment": key,
        "description": EXPERIMENTS[key].description,
        "result": data,
        "rendered": rendered,
    }
    if summary is not None:
        record["sanitizer"] = summary
    if trace_meta is not None:
        record["trace"] = trace_meta
    if stats is not None:
        record["profile"] = profile_top_from_stats(stats, args.top)
    return record, trace_bytes


def _write_merged_trace(
    keys: List[str], traces: Dict[str, Optional[bytes]], path: str
) -> None:
    """Merge per-experiment buffers in key order; write one Chrome trace."""
    merger = TraceMerger()
    for key in keys:
        buffer = traces.get(key)
        if buffer is not None:
            merger.add(buffer)
    merged = merger.merge()
    write_chrome_trace(merged, path)
    print(
        f"wrote merged trace ({merged.num_records} records from "
        f"{len(merger)} experiment(s)) to {path}",
        file=sys.stderr,
    )


def _partition_telemetry_lines(key: str, telemetry: Dict[str, object]) -> List[str]:
    """Human rendering of a partitioned run's throughput accounting."""
    lines = [
        f"{key}: {telemetry['events_dispatched']:,.0f} events in "
        f"{telemetry['wall_seconds']:.2f}s across "
        f"{telemetry['partitions']} partition(s) "
        f"({telemetry['events_per_sec']:,.0f} events/s)"
    ]
    for stat in telemetry["partition_stats"]:
        lines.append(
            f"  partition {stat['partition']}: {stat['units']} unit(s), "
            f"{stat['events_dispatched']:,.0f} events, "
            f"{stat['events_per_sec']:,.0f} events/s, "
            f"barrier stall {stat['barrier_stall_seconds']:.2f}s"
        )
    return lines


def _cmd_run_partitioned(
    args: argparse.Namespace, keys: List[str], sanitized: bool, traced: bool
) -> int:
    """The ``run --partitions N`` path: unit-sharded partitioned execution.

    stdout (rendered artifacts, sanitizer lines) and ``--trace-out`` are
    byte-identical for any partition count; the per-partition events/s
    and barrier-stall telemetry goes to stderr.
    """
    json_mode = args.json or bool(args.out)
    traces: Dict[str, Optional[bytes]] = {}
    results: List[Dict[str, object]] = []
    for key in keys:
        if args.out:
            print(f"running {key} ...", file=sys.stderr)
        run = run_partitioned(
            key,
            args.partitions,
            sanitized=sanitized,
            traced=traced,
            profiled=args.profile,
        )
        traces[key] = run.trace_bytes
        for line in _partition_telemetry_lines(key, run.telemetry):
            print(line, file=sys.stderr)
        record: Dict[str, object] = {
            "experiment": key,
            "description": EXPERIMENTS[key].description,
            "result": _jsonable(run.result),
            "rendered": run.rendered,
            "partition": run.telemetry,
        }
        if run.sanitizer is not None:
            record["sanitizer"] = run.sanitizer
        if run.trace_meta is not None:
            record["trace"] = run.trace_meta
        if run.profile_stats is not None:
            record["profile"] = profile_top_from_stats(
                run.profile_stats, args.top
            )
        results.append(record)
    if traced:
        _write_merged_trace(keys, traces, args.trace_out)
    if not json_mode:
        for record in results:
            print(record["rendered"])
            if "sanitizer" in record:
                print(_sanitizer_line(record["sanitizer"]))
            print()
            if args.profile:
                print(f"-- hottest functions ({record['experiment']}) --")
                print(_render_profile(record["profile"]))
                print()
        return 0
    for record in results:
        record["code_version"] = version_fingerprint()
    document = json.dumps(results, indent=2)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as stream:
            stream.write(document + "\n")
        print(f"wrote {len(results)} result(s) to {args.out}", file=sys.stderr)
    else:
        print(document)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if "all" in args.experiments:
        keys = sorted(EXPERIMENTS)
    else:
        keys = list(dict.fromkeys(args.experiments))  # dedupe, keep order
    for key in keys:
        if key not in EXPERIMENTS:
            return _unknown_experiment(key)
    if args.partitions is not None:
        if args.partitions < 1:
            print("--partitions must be >= 1", file=sys.stderr)
            return 2
        if args.jobs > 1:
            print(
                "--partitions and --jobs are mutually exclusive "
                "(partitioned runs already use worker processes)",
                file=sys.stderr,
            )
            return 2
    for path in (args.out, args.trace_out):
        if not path:
            continue
        try:  # fail on an unwritable path before the minutes-long runs
            open(path, "w", encoding="utf-8").close()
        except OSError as error:
            print(f"cannot write {path}: {error}", file=sys.stderr)
            return 2

    # --sanitize arms per-run invariant checking; CEDAR_SANITIZE=1 in the
    # environment implies it (and additionally arms components built by
    # anything else in the process, e.g. the bench harness).
    sanitized = args.sanitize or sanitize.enabled()
    traced = args.trace_out is not None
    if args.partitions is not None:
        return _cmd_run_partitioned(args, keys, sanitized, traced)
    tasks = [(key, sanitized, traced, args.profile) for key in keys]
    parallel = args.jobs > 1 and len(keys) > 1
    traces: Dict[str, Optional[bytes]] = {}
    if not args.json and not args.out and not args.profile:
        if parallel:
            # Collect everything, then print in key order: stdout is
            # byte-identical to the sequential run.
            rendered: Dict[str, str] = {}
            summaries: Dict[str, Optional[Dict]] = {}
            for _, (key, text, _, summary, trace_bytes, _meta, _stats) in parallel_map(
                _run_worker, list(zip(keys, tasks)),
                jobs=min(args.jobs, len(keys)),
            ):
                rendered[key] = text
                summaries[key] = summary
                traces[key] = trace_bytes
            for key in keys:
                print(rendered[key])
                if summaries[key] is not None:
                    print(_sanitizer_line(summaries[key]))
                print()
        else:
            for key in keys:
                if traced or sanitized:
                    text, _, summary, trace_bytes, _meta, _stats = _execute_run(
                        key, sanitized, traced
                    )
                    traces[key] = trace_bytes
                    print(text)
                    if summary is not None:
                        print(_sanitizer_line(summary))
                else:
                    print(run_experiment(key))
                print()
        if traced:
            _write_merged_trace(keys, traces, args.trace_out)
        return 0

    results = []
    if parallel:
        records: Dict[str, Dict[str, object]] = {}
        for _, (
            key, text, data, summary, trace_bytes, trace_meta, stats
        ) in parallel_map(
            _run_worker, list(zip(keys, tasks)),
            jobs=min(args.jobs, len(keys)),
        ):
            if args.out:
                print(f"finished {key}", file=sys.stderr)
            records[key] = {
                "experiment": key,
                "description": EXPERIMENTS[key].description,
                "result": data,
                "rendered": text,
            }
            if summary is not None:
                records[key]["sanitizer"] = summary
            if trace_meta is not None:
                records[key]["trace"] = trace_meta
            if stats is not None:
                # Each experiment profiled in its own worker; the raw
                # stats dict crossed the process boundary, the top-N is
                # rendered here in the parent.
                records[key]["profile"] = profile_top_from_stats(
                    stats, args.top
                )
            traces[key] = trace_bytes
        results = [records[key] for key in keys]
    else:
        for key in keys:
            if args.out:
                print(f"running {key} ...", file=sys.stderr)
            record, trace_bytes = _run_one(key, args, sanitized, traced)
            results.append(record)
            traces[key] = trace_bytes
    for record in results:
        record["code_version"] = version_fingerprint()
    if traced:
        _write_merged_trace(keys, traces, args.trace_out)

    if args.profile and not args.json and not args.out:
        for record in results:
            print(record["rendered"])
            if "sanitizer" in record:
                print(_sanitizer_line(record["sanitizer"]))
            print()
            print(f"-- hottest functions ({record['experiment']}) --")
            print(_render_profile(record["profile"]))
            print()
        return 0

    document = json.dumps(results, indent=2)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as stream:
            stream.write(document + "\n")
        print(f"wrote {len(results)} result(s) to {args.out}", file=sys.stderr)
    else:
        print(document)
    return 0


def _parse_axis(text: str) -> Tuple[str, List[object]]:
    """``FIELD=V1,V2,...`` -> (field, values); values parse as JSON scalars
    (so ``null`` means None and bare words stay strings for the spec
    validator to reject with a structured error)."""
    field, separator, values_text = text.partition("=")
    if not separator or not field or not values_text:
        raise ValueError(
            f"--axis wants FIELD=V1,V2,... (got {text!r})"
        )
    values: List[object] = []
    for item in values_text.split(","):
        try:
            values.append(json.loads(item))
        except json.JSONDecodeError:
            values.append(item)
    return field, values


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.builder import expand_grid, render_report, run_sweep
    from repro.builder.sweep import canonical_json
    from repro.builder.workload import DEFAULT_BLOCKS

    axes: Dict[str, List[object]] = {}
    for text in args.axis or []:
        try:
            field, values = _parse_axis(text)
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
        axes[field] = values
    candidates: List[Dict[str, object]] = expand_grid(axes)
    if args.points:
        try:
            with open(args.points, "r", encoding="utf-8") as stream:
                listed = json.load(stream)
        except (OSError, json.JSONDecodeError) as error:
            print(f"cannot read {args.points}: {error}", file=sys.stderr)
            return 2
        if not isinstance(listed, list):
            print(
                f"{args.points} must hold a JSON list of spec objects",
                file=sys.stderr,
            )
            return 2
        candidates.extend(listed)
    if not candidates:
        print(
            "nothing to sweep: give at least one --axis FIELD=V1,V2,... "
            "or a --points file",
            file=sys.stderr,
        )
        return 2
    blocks = args.blocks if args.blocks is not None else DEFAULT_BLOCKS
    started = time.time()
    artifact = run_sweep(candidates, jobs=args.jobs, blocks=blocks)
    elapsed = time.time() - started
    # Wall-clock telemetry never enters the canonical artifact.
    print(
        f"swept {len(candidates)} point(s) in {elapsed:.1f}s "
        f"(--jobs {args.jobs})",
        file=sys.stderr,
    )
    document = canonical_json(artifact)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as stream:
            stream.write(document)
        print(f"wrote sweep artifact to {args.out}", file=sys.stderr)
    if args.report:
        print(render_report(artifact))
    elif not args.out:
        sys.stdout.write(document)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.experiment not in EXPERIMENTS:
        return _unknown_experiment(args.experiment)
    if args.out:
        # Fail on an unwritable path now, not after a minutes-long run.
        try:
            open(args.out, "w", encoding="utf-8").close()
        except OSError as error:
            print(f"cannot write {args.out}: {error}", file=sys.stderr)
            return 2
    tracer = Tracer(enabled=True)
    print(run_experiment_traced(args.experiment, tracer))
    print()
    if args.out:
        write_chrome_trace(tracer, args.out)
        print(
            f"wrote {tracer.num_records} trace records"
            f" ({tracer.dropped} dropped) to {args.out}",
            file=sys.stderr,
        )
    if args.report or not args.out:
        print(utilization_report(tracer))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.experiments and args.quick:
        print("give either experiment keys or --quick, not both", file=sys.stderr)
        return 2
    if args.quick:
        keys = list(QUICK_EXPERIMENTS)
    elif args.experiments:
        keys = list(args.experiments)
    else:
        keys = sorted(EXPERIMENTS)
    for key in keys:
        if key not in EXPERIMENTS:
            return _unknown_experiment(key)

    tolerances = {}
    if args.fidelity_tolerance is not None:
        tolerances["fidelity"] = args.fidelity_tolerance
    if args.machine_tolerance is not None:
        tolerances["machine"] = args.machine_tolerance
    if args.profile_tolerance is not None:
        tolerances["self_profile"] = args.profile_tolerance

    try:
        baseline = None
        if args.baseline != "none":
            baseline_path = args.baseline or bench_mod.latest_snapshot_path(
                args.dir
            )
            if baseline_path is not None:
                baseline = bench_mod.load_snapshot(baseline_path)
                print(f"baseline: {baseline_path}", file=sys.stderr)
            else:
                print(
                    f"no baseline snapshot in {args.dir}; recording only",
                    file=sys.stderr,
                )
        index = bench_mod.next_snapshot_index(args.dir)
        out_path = args.out or f"{args.dir.rstrip('/')}/BENCH_{index}.json"

        def progress(key: str) -> None:
            print(f"benching {key} ...", file=sys.stderr)

        snapshot = bench_mod.build_snapshot(
            keys,
            index,
            trace=not args.no_trace,
            progress=progress,
            jobs=max(1, args.jobs),
            partitions=args.partitions,
        )
        bench_mod.save_snapshot(snapshot, out_path)
    except (BenchError, OSError) as error:
        print(str(error), file=sys.stderr)
        return 2
    print(f"wrote snapshot {index} ({len(keys)} experiment(s)) to {out_path}")
    for key in keys:  # the simulator-throughput headline, per experiment
        profile = snapshot["experiments"][key].get("self_profile", {})
        rate = profile.get("events_per_sec")
        if rate:
            print(
                f"  {key}: {rate:,.0f} events/s "
                f"({profile['wall_seconds']:.1f}s wall)"
            )
    if baseline is None:
        return 0
    report = bench_mod.compare_snapshots(baseline, snapshot, tolerances)
    print(report.render())
    return report.exit_code(strict=args.strict)


def _cmd_lint(args: argparse.Namespace) -> int:
    import os

    from repro import lint

    if args.explain is not None:
        rules = (
            lint.all_rules()
            if args.explain == "all"
            else [lint.get_rule(args.explain)]
        )
        blocks = []
        for rule in rules:
            lines = [
                f"{rule.id} -- {rule.title}",
                f"  scope:  repro/{{{', '.join(rule.scope)}}}",
            ]
            if rule.exempt:
                lines.append(f"  exempt: {', '.join(rule.exempt)}")
            lines.append(
                "  fixtures: tests/lint/fixtures/"
                f"{rule.id}/{{fire,clean}}.py"
            )
            lines.append("")
            lines.extend(f"  {line}" for line in rule.rationale.splitlines())
            blocks.append("\n".join(lines))
        print("\n\n".join(blocks))
        return 0

    if args.self_check:
        failures = lint.self_check(args.fixtures)
        for failure in failures:
            print(failure, file=sys.stderr)
        checked = len(lint.all_rules())
        if failures:
            print(
                f"self-check: {len(failures)} failure(s) across "
                f"{checked} rules",
                file=sys.stderr,
            )
            return 1
        print(f"self-check: all {checked} rules fire and stay clean")
        return 0

    report = lint.analyze_paths(args.paths)

    baseline = lint.Baseline()
    baseline_path = args.baseline
    if baseline_path != "none":
        if baseline_path is None and os.path.exists(lint.DEFAULT_BASELINE):
            baseline_path = lint.DEFAULT_BASELINE
        if baseline_path is not None:
            baseline = lint.Baseline.load(baseline_path)
    new, grandfathered, stale = baseline.partition(report.findings)

    if args.write_baseline:
        merged = lint.Baseline(
            list(baseline.entries)
            + list(
                lint.Baseline.from_findings(
                    new, "TODO: justify why this finding is safe, or fix it"
                ).entries
            )
        )
        merged.save(args.write_baseline)
        print(
            f"wrote {len(merged.entries)} baseline entr(y/ies) to "
            f"{args.write_baseline}",
            file=sys.stderr,
        )

    if args.json:
        document = {
            "version": 1,
            "files_checked": report.files_checked,
            "rules": [rule.id for rule in lint.all_rules()],
            "findings": [f.to_json(baselined=False) for f in new]
            + [f.to_json(baselined=True) for f in grandfathered],
            "summary": {
                "total": len(report.findings),
                "new": len(new),
                "baselined": len(grandfathered),
                "suppressed": len(report.suppressed),
                "stale_baseline": [entry.to_json() for entry in stale],
            },
        }
        print(json.dumps(document, indent=2))
        return 1 if new else 0

    for finding in new:
        print(finding.render())
    summary = (
        f"lint: {report.files_checked} file(s), {len(new)} finding(s) "
        f"({len(grandfathered)} baselined, {len(report.suppressed)} "
        "suppressed)"
    )
    print(summary, file=sys.stderr)
    for entry in stale:
        print(
            f"stale baseline entry (nothing matches): {entry.rule} in "
            f"{entry.file} -- remove it",
            file=sys.stderr,
        )
    return 1 if new else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import serve_forever

    def announce(server) -> None:
        print(
            f"cedar-repro serving on http://{server.host}:{server.port} "
            f"({args.jobs} worker(s), cache "
            f"{args.cache_dir or 'in-memory'})",
            file=sys.stderr,
        )

    try:
        asyncio.run(
            serve_forever(
                host=args.host,
                port=args.port,
                jobs=args.jobs,
                cache_dir=args.cache_dir,
                queue_limit=args.queue_limit,
                ready=announce,
            )
        )
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    except OSError as error:
        print(f"cannot serve on {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return 2
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.errors import ServeError
    from repro.serve import ServeClient

    config = None
    if args.config is not None:
        try:
            config = json.loads(args.config)
        except ValueError as error:
            print(f"--config is not valid JSON: {error}", file=sys.stderr)
            return 2
    client = ServeClient(args.host, args.port, timeout=args.timeout)
    try:
        response = client.submit(args.experiment, config=config)
        documents: List[bytes] = []
        for submitted in response["jobs"]:
            job_id = submitted["id"]
            if args.watch:
                for event, data in client.events(job_id):
                    print(f"[{job_id}] {event}: {json.dumps(data, sort_keys=True)}",
                          file=sys.stderr)
            final = client.wait(job_id, timeout=args.timeout)
            if final["state"] == "failed":
                error = final.get("error", {})
                print(
                    f"job {job_id} ({final['experiment']}) failed: "
                    f"{error.get('message', 'unknown error')}",
                    file=sys.stderr,
                )
                return 1
            body, cache_status = client.result(job_id)
            print(
                f"job {job_id} ({final['experiment']}): {final['state']} "
                f"[{cache_status}] in {final.get('latency_ms', 0):.0f} ms",
                file=sys.stderr,
            )
            documents.append(body)
    except ServeError as error:
        print(str(error), file=sys.stderr)
        return 1
    except ConnectionError as error:
        print(
            f"cannot reach cedar-repro serve at {args.host}:{args.port}: "
            f"{error}",
            file=sys.stderr,
        )
        return 2
    output = b"".join(documents)
    if args.out:
        with open(args.out, "wb") as stream:
            stream.write(output)
        print(f"wrote {len(documents)} result(s) to {args.out}",
              file=sys.stderr)
    else:
        sys.stdout.write(output.decode("utf-8"))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for key in sorted(EXPERIMENTS):
            print(f"{key:18s} {EXPERIMENTS[key].description}")
        return 0
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "lint":
            return _cmd_lint(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "submit":
            return _cmd_submit(args)
    except LintError as error:
        print(str(error), file=sys.stderr)
        return 2
    except WorkerCrashError as error:
        print(str(error), file=sys.stderr)
        if error.worker_traceback:
            print(error.worker_traceback, file=sys.stderr)
        return 1
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
